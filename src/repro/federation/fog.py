"""The fog tier: super-peers bridging edge clusters.

Super-peers are the federation's backhaul (ElfStore's fog layer): each
edge cluster *homes* to one super-peer, which periodically distills the
cluster's public state into a :class:`ClusterSummary` and anti-entropy
gossips its directory replica to a seeded-random partner.  Cross-cluster
traffic rides the directory:

* **lookup** — a cluster that cannot resolve a data id locally asks its
  home super-peer; the peer shortlists candidate clusters by bloom and
  verifies against each candidate's reference chain (false positives
  cost a probe, not a wrong answer).
* **migration** — a successful lookup may pull the item *into* the
  requesting cluster: the origin's gateway node re-signs the metadata
  under its local identity (:meth:`EdgeNode.adopt_foreign_metadata`),
  after which the target cluster's own miner places it through UFL
  allocation and normal dissemination replicates the payload.

The tier does not trust its own peers (DESIGN.md §16).  Every summary is
**attested**: the home cluster's gateway signs the canonical summary body
(:meth:`ClusterSummary.attestation_payload`), receivers verify the
signature against the known gateway address before merging, and lookups
cross-check a served entry's checkpoint digest against the candidate's
actual chain.  Misbehavior — bad attestations, digest mismatches on
probe, home entries left stale beyond the freshness horizon, rejected
migration pushes — charges the responsible super-peer on a shared
:class:`FogAdmission` ledger; past the threshold the peer is
**quarantined** and its home clusters **re-home** to a deterministic
sibling that rebuilds their directory entries from scratch.

All scheduling uses the shared engine with bound methods of these
module-level classes, so a federated runtime snapshots/resumes exactly
like a single-cluster one.  Gossip partners come from each peer's own
seeded ``random.Random``, keeping replay deterministic; on honest runs
none of the defenses draws randomness or schedules events, so honest
digests stay bit-identical to a defense-free tier.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.account import derive_address
from repro.core.admission import FOREIGN_METADATA
from repro.core.metadata import MetadataItem
from repro.crypto.keys import PublicKey
from repro.crypto.signature import Signature, verify
from repro.federation.directory import BloomFilter, ClusterSummary, DirectoryReplica
from repro.federation.spec import FederationSpec, derived_seed
from repro.obs import runtime as _obs
from repro.simnet.engine import EventEngine, PeriodicTask

#: A lookup that races ahead of directory refresh retries this often...
LOOKUP_RETRY_SECONDS = 45.0

#: ...at most this many times before counting as failed.
LOOKUP_MAX_RETRIES = 6

#: After the primary peer's retries exhaust, a secondary super-peer is
#: probed at most this many more times (jittered) before giving up.
LOOKUP_FALLBACK_RETRIES = 3

# -- fog misbehavior reasons ------------------------------------------------------

#: A gossiped summary failed gateway-attestation verification.
FOG_BAD_ATTESTATION = "bad_attestation"
#: A served directory entry contradicts the candidate's actual chain.
FOG_DIGEST_MISMATCH = "digest_mismatch"
#: A peer's home-cluster entry aged past the freshness horizon.
FOG_STALE_HOME = "stale_home"
#: A pushed migration was rejected by the target gateway's admission.
FOG_BAD_MIGRATION = "bad_migration"

#: Forged content is unambiguous and weighs heavily; staleness accrues —
#: one slow round never quarantines a peer, a sustained blackout does.
FOG_REASON_WEIGHTS: Dict[str, float] = {
    FOG_BAD_ATTESTATION: 4.0,
    FOG_DIGEST_MISMATCH: 4.0,
    FOG_STALE_HOME: 2.0,
    FOG_BAD_MIGRATION: 4.0,
}

#: Accumulated misbehavior score past which a super-peer is quarantined.
FOG_QUARANTINE_THRESHOLD = 8.0

#: A home entry older than this multiple of one full publication cycle
#: (refresh + worst-case gossip walk) charges the responsible home peer.
FOG_STALE_CHARGE_FACTOR = 3.0


@dataclass
class FogCounters:
    """Cumulative fog-tier statistics (feed the federation monitors)."""

    refreshes: int = 0
    gossip_rounds: int = 0
    gossip_entries_adopted: int = 0
    lookups_ok: int = 0
    lookups_failed: int = 0
    migrations: int = 0
    #: Candidate probes where the bloom shortlisted a cluster that did
    #: not hold the item (honest ~1 % false positives, or a poisoned bloom).
    bloom_fp_probes: int = 0
    #: Served entries rejected at lookup time: checkpoint digest
    #: contradicted the candidate's actual chain.
    verify_rejected: int = 0
    #: Gossiped summaries rejected for a bad gateway attestation.
    attestation_rejected: int = 0
    #: Migrations the target gateway's admission refused.
    migrations_rejected: int = 0
    #: Lookups that fell back to a secondary super-peer.
    lookup_fallbacks: int = 0
    #: Super-peers quarantined / clusters re-homed over the run.
    quarantines: int = 0
    rehomed_clusters: int = 0


@dataclass
class FogAdmission:
    """Shared misbehavior ledger over the fog tier's super-peers.

    The fog analogue of :class:`repro.core.admission.AdmissionControl`:
    every detected violation charges the responsible peer a weighted
    score; past ``quarantine_threshold`` the peer is quarantined —
    excluded from gossip, lookups, and homing.  Deterministic and
    side-effect-free: charges draw no randomness and schedule nothing.
    """

    quarantine_threshold: float = FOG_QUARANTINE_THRESHOLD
    rejections: Dict[str, int] = field(default_factory=dict)
    scores: Dict[int, float] = field(default_factory=dict)
    quarantined: Set[int] = field(default_factory=set)
    quarantined_at: Dict[int, float] = field(default_factory=dict)

    def charge(self, peer_id: int, reason: str, now: float) -> bool:
        """Charge ``peer_id``; True when this newly quarantines it."""
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        _obs.add("fog.charges")
        _obs.add(f"fog.charges.{reason}")
        score = self.scores.get(peer_id, 0.0) + FOG_REASON_WEIGHTS.get(reason, 4.0)
        self.scores[peer_id] = score
        if (
            peer_id not in self.quarantined
            and score >= self.quarantine_threshold
        ):
            self.quarantined.add(peer_id)
            self.quarantined_at[peer_id] = now
            return True
        return False

    def is_quarantined(self, peer_id: int) -> bool:
        return peer_id in self.quarantined

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary for verdicts and reports."""
        return {
            "rejections": dict(sorted(self.rejections.items())),
            "scores": {str(k): v for k, v in sorted(self.scores.items())},
            "quarantined": sorted(self.quarantined),
            "quarantined_at": {
                str(k): v for k, v in sorted(self.quarantined_at.items())
            },
        }


class SuperPeer:
    """One fog node: a directory replica plus its home clusters."""

    def __init__(self, peer_id: int, fog: "FogTier", rng: random.Random):
        self.peer_id = peer_id
        self.fog = fog
        self.rng = rng
        self.replica = DirectoryReplica()
        self.home_clusters: List[int] = []
        self._versions: Dict[int, int] = {}

    def start(self) -> None:
        """Hook armed at fog start (adversary subclasses schedule here)."""

    def refresh_home(self) -> None:
        """Re-summarise every home cluster into the local replica."""
        if self.fog.admission.is_quarantined(self.peer_id):
            return
        now = self.fog.engine.now
        for cluster_id in list(self.home_clusters):
            version = self._versions.get(cluster_id, 0) + 1
            self._versions[cluster_id] = version
            summary = self.fog.build_summary(cluster_id, version, now)
            self.replica.merge(summary)
            self.fog.counters.refreshes += 1
        self._flag_stale_homes(now)

    def _flag_stale_homes(self, now: float) -> None:
        """Charge home peers whose entries here aged past the horizon.

        The only signal a withholding peer leaves is silence: its home
        clusters' entries in *other* replicas stop updating.  A never-
        heard-of cluster ages from fog start.  On honest runs every
        entry is refreshed and gossiped well inside the horizon, so no
        charge is ever recorded (the determinism tests pin that).
        """
        fog = self.fog
        if fog.started_at is None:
            return
        horizon = fog.stale_entry_after()
        for cluster_id in range(fog.spec.cluster_count):
            home = fog.home_of[cluster_id]
            if home == self.peer_id or fog.admission.is_quarantined(home):
                continue
            entry = self.replica.entries.get(cluster_id)
            freshest = fog.started_at if entry is None else entry.updated_at
            if now - freshest > horizon:
                fog.charge(home, FOG_STALE_HOME)

    def gossip(self) -> None:
        """Push the replica to one seeded-random partner (anti-entropy)."""
        fog = self.fog
        if fog.admission.is_quarantined(self.peer_id):
            return
        others = [
            p
            for p in fog.peers
            if p.peer_id != self.peer_id
            and not fog.admission.is_quarantined(p.peer_id)
        ]
        if not others or not self.replica.entries:
            return
        partner = others[self.rng.randrange(len(others))]
        payload = list(self.replica.entries.values())
        fog.engine.schedule(
            fog.spec.fog_latency_seconds,
            partner.receive_directory,
            payload,
            self.peer_id,
        )
        fog.counters.gossip_rounds += 1

    def receive_directory(
        self, summaries: List[ClusterSummary], sender: Optional[int] = None
    ) -> None:
        fog = self.fog
        if sender is not None and fog.admission.is_quarantined(sender):
            return
        accepted: List[ClusterSummary] = []
        for summary in summaries:
            if fog.summary_attested(summary):
                accepted.append(summary)
                continue
            fog.counters.attestation_rejected += 1
            _obs.add("fog.attestation_rejected")
            if sender is not None:
                fog.charge(sender, FOG_BAD_ATTESTATION)
        fog.counters.gossip_entries_adopted += self.replica.merge_all(accepted)


class FogTier:
    """All super-peers plus the cross-cluster routing they provide."""

    def __init__(self, engine: EventEngine, spec: FederationSpec, domains: List[Any]):
        self.engine = engine
        self.spec = spec
        self.domains = domains  # List[ClusterDomain]; duck-typed to avoid a cycle
        self.counters = FogCounters()
        self.admission = FogAdmission()
        self.peers: List[SuperPeer] = []
        for peer_id in range(spec.super_peer_count):
            peer_seed = derived_seed(spec.seed, "fog-peer", peer_id)
            peer_class = SuperPeer
            if spec.fog_peer_classes:
                peer_class = spec.fog_peer_classes.get(peer_id, SuperPeer)
            self.peers.append(peer_class(peer_id, self, random.Random(peer_seed)))
        #: Dynamic cluster → home-peer map; starts at the spec's static
        #: assignment and moves when a quarantined peer's clusters fail over.
        self.home_of: Dict[int, int] = {
            cluster_id: spec.home_peer_of(cluster_id)
            for cluster_id in range(spec.cluster_count)
        }
        for cluster_id in range(spec.cluster_count):
            self.peers[self.home_of[cluster_id]].home_clusters.append(cluster_id)
        #: Clusters that failed over, cluster id → new home peer.
        self.rehomed: Dict[int, int] = {}
        #: Gateway accounts attest summaries; the address roster is what
        #: receivers verify attestor keys against.
        self._gateway_accounts = {
            domain.cluster_id: domain.cluster.accounts[
                min(domain.cluster.node_ids)
            ]
            for domain in domains
        }
        #: Pure-Python ECDSA is expensive and entries are re-gossiped many
        #: times; verification is memoised on (body, key, signature).
        self._attestation_cache: Dict[Tuple[bytes, str, str], bool] = {}
        self.started_at: Optional[float] = None
        self._tasks: List[PeriodicTask] = []
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Arm refresh + gossip schedules (called at formation time)."""
        if self._started:
            return
        self._started = True
        self.started_at = self.engine.now
        for peer in self.peers:
            # Staggered deterministic start offsets keep peers from
            # refreshing/gossiping in lockstep on the same tick.
            peer.refresh_home()
            self._tasks.append(
                PeriodicTask(
                    self.engine,
                    self.spec.directory_refresh_seconds,
                    peer.refresh_home,
                    start_delay=self.spec.directory_refresh_seconds
                    + 0.1 * peer.peer_id,
                )
            )
            self._tasks.append(
                PeriodicTask(
                    self.engine,
                    self.spec.gossip_period_seconds,
                    peer.gossip,
                    start_delay=self.spec.gossip_period_seconds * 0.5
                    + 0.1 * peer.peer_id,
                )
            )
        for peer in self.peers:
            peer.start()

    def stop(self) -> None:
        for task in self._tasks:
            task.stop()

    # -- summaries ---------------------------------------------------------------

    def build_summary(
        self, cluster_id: int, version: int, now: float
    ) -> ClusterSummary:
        """Distill one cluster's public state into an attested entry."""
        domain = self.domains[cluster_id]
        cluster = domain.cluster
        chain = cluster.longest_chain_node().chain
        data_ids = [
            item.data_id for block in chain.blocks for item in block.metadata_items
        ]
        if chain.first_retained_index:
            # Pruned prefix: cold bodies can't be walked, but the state's
            # metadata index still names every unexpired item wherever it
            # was packed — those must stay advertised for lookups.
            hot = set(data_ids)
            data_ids.extend(
                data_id
                for data_id in chain.state.metadata_index
                if data_id not in hot
            )
        bloom = BloomFilter.sized_for(max(len(data_ids), 64))
        for data_id in data_ids:
            bloom.add(data_id)
        checkpoint_index = chain.last_checkpoint()
        capacity = float(cluster.config.storage_capacity)
        used = [cluster.nodes[n].storage.used_slots() for n in cluster.node_ids]
        total_capacity = capacity * len(used)
        fairness_max = 0.0
        for slots in used:
            clamped = min(float(slots), capacity)
            margin = capacity - clamped
            fairness_max = max(
                fairness_max, math.inf if margin <= 0 else clamped / margin
            )
        state = chain.state
        tokens = sorted((state.tokens(node) for node in state.node_ids), reverse=True)
        total_tokens = sum(tokens)
        leader = None
        term = 0
        if domain.raft is not None:
            leader_node = domain.raft.leader()
            if leader_node is not None:
                leader = leader_node.node_id
                term = leader_node.current_term
        # The retention horizon never passes the newest checkpoint, so the
        # body is normally retained; the pinned record covers a chain that
        # just pruned flush to its checkpoint.
        if chain.has_block(checkpoint_index):
            checkpoint_digest = chain.block_at(checkpoint_index).current_hash
        else:
            pinned = chain.checkpoints.get(checkpoint_index)
            checkpoint_digest = pinned.block_hash if pinned is not None else ""
        unsigned = ClusterSummary(
            cluster_id=cluster_id,
            version=version,
            updated_at=now,
            height=chain.height,
            chain_digest=chain.chain_digest(),
            checkpoint_height=checkpoint_index,
            checkpoint_digest=checkpoint_digest,
            item_count=len(data_ids),
            bloom=bloom,
            stake_top_share=(
                sum(tokens[:3]) / total_tokens if total_tokens > 0 else 0.0
            ),
            storage_used_fraction=(
                sum(used) / total_capacity if total_capacity > 0 else 0.0
            ),
            free_slots=max(0, int(total_capacity) - sum(used)),
            fairness_max=fairness_max,
            raft_leader=leader,
            raft_term=term,
        )
        gateway = self._gateway_accounts[cluster_id]
        signature = gateway.sign(unsigned.attestation_payload())
        from dataclasses import replace as _replace

        return _replace(
            unsigned,
            attestor_public_key_hex=gateway.public_key.hex(),
            attestation_hex=signature.hex(),
        )

    def summary_attested(self, summary: ClusterSummary) -> bool:
        """Verify a summary's gateway attestation.

        The attestor key must derive to the known gateway address of the
        summary's cluster — a forger cannot substitute its own key — and
        the signature must verify over the canonical body.  Pure
        computation: no randomness, no scheduling (digest-neutral).
        """
        gateway = self._gateway_accounts.get(summary.cluster_id)
        if gateway is None:
            return False
        payload = summary.attestation_payload()
        key = (payload, summary.attestor_public_key_hex, summary.attestation_hex)
        cached = self._attestation_cache.get(key)
        if cached is not None:
            return cached
        try:
            public = PublicKey.from_hex(summary.attestor_public_key_hex)
            signature = Signature.from_hex(summary.attestation_hex)
        except ValueError:
            self._attestation_cache[key] = False
            return False
        valid = derive_address(public) == gateway.address and verify(
            public, payload, signature
        )
        self._attestation_cache[key] = valid
        return valid

    def _entry_matches_chain(self, entry: ClusterSummary, chain: Any) -> bool:
        """Cross-check a directory entry against the chain it summarises.

        Chains are append-only below their checkpoints, so an honest
        entry's checkpoint digest always matches — however stale the
        entry is.  A claimed checkpoint past the chain's actual height is
        a forgery outright; a pruned, unpinned height is unverifiable and
        passes (the shortlist probe still decides the lookup).
        """
        if not entry.checkpoint_digest:
            return True
        height = entry.checkpoint_height
        if height > chain.height:
            return False
        if chain.has_block(height):
            return chain.block_at(height).current_hash == entry.checkpoint_digest
        pinned = chain.checkpoints.get(height)
        if pinned is None:
            return True
        return pinned.block_hash == entry.checkpoint_digest

    # -- misbehavior + failover ---------------------------------------------------

    def stale_entry_after(self) -> float:
        """Freshness horizon: one full publication cycle, with margin.

        A fresh entry reaches every replica within one refresh period
        plus a worst-case gossip walk across the other peers; anything
        older than :data:`FOG_STALE_CHARGE_FACTOR` cycles means the home
        peer stopped publishing.
        """
        walk = self.spec.gossip_period_seconds * max(
            1, self.spec.super_peer_count - 1
        )
        return FOG_STALE_CHARGE_FACTOR * (
            self.spec.directory_refresh_seconds + walk
        )

    def charge(self, peer_id: int, reason: str) -> None:
        """Charge a super-peer; quarantine + re-home past the threshold."""
        if self.admission.is_quarantined(peer_id):
            return
        if self.admission.charge(peer_id, reason, self.engine.now):
            self._quarantine(peer_id)

    def _quarantine(self, peer_id: int) -> None:
        """Cut a peer out of the tier and fail its home clusters over.

        Each orphaned cluster re-homes to the first non-quarantined
        sibling in ``(home + 1) % P`` order — deterministic, so every
        replay agrees — and the new home rebuilds its directory entry
        from scratch at a version past anything it has seen, so the
        fresh honest entry wins the monotone merge everywhere.
        """
        self.counters.quarantines += 1
        _obs.add("fog.quarantined")
        peer = self.peers[peer_id]
        rebuilt: Set[int] = set()
        for cluster_id in list(peer.home_clusters):
            target = self.failover_peer_for(cluster_id)
            if target is None:
                continue  # no honest peer left; entries stay orphaned
            peer.home_clusters.remove(cluster_id)
            target.home_clusters.append(cluster_id)
            self.home_of[cluster_id] = target.peer_id
            self.rehomed[cluster_id] = target.peer_id
            seen = target.replica.entries.get(cluster_id)
            floor = max(
                target._versions.get(cluster_id, 0),
                0 if seen is None else seen.version,
            )
            target._versions[cluster_id] = floor
            self.counters.rehomed_clusters += 1
            _obs.add("fog.rehomed")
            rebuilt.add(target.peer_id)
        for target_id in sorted(rebuilt):
            self.peers[target_id].refresh_home()

    def failover_peer_for(self, cluster_id: int) -> Optional[SuperPeer]:
        """The deterministic sibling a cluster fails over to (or None)."""
        current = self.home_of[cluster_id]
        count = self.spec.super_peer_count
        for offset in range(1, count):
            candidate = (current + offset) % count
            if not self.admission.is_quarantined(candidate):
                return self.peers[candidate]
        return None

    def fallback_peer_for(self, origin_cluster: int) -> Optional[SuperPeer]:
        """A secondary super-peer for lookups the home peer can't serve."""
        primary = self.home_of[origin_cluster]
        count = self.spec.super_peer_count
        for offset in range(1, count):
            candidate = (primary + offset) % count
            if not self.admission.is_quarantined(candidate):
                return self.peers[candidate]
        return None

    # -- cross-cluster routing ----------------------------------------------------

    def directory_staleness(self, now: float) -> float:
        """Worst entry age across non-quarantined replicas (monitor input).

        Quarantined peers are cut off by design — their frozen replicas
        age without bound and must not page the operator.  ``default=0``
        keeps a tier with no (active) peers from crashing the probe.
        """
        return max(
            (
                peer.replica.staleness(now, self.spec.cluster_count)
                for peer in self.peers
                if not self.admission.is_quarantined(peer.peer_id)
            ),
            default=0.0,
        )

    def directory_divergence(self, exclude_clusters: Iterable[int] = ()) -> int:
        """Entries in active replicas that contradict their cluster's chain.

        Counts ``(peer, cluster)`` pairs whose entry fails the checkpoint
        cross-check — the directory claiming something the summarised
        chain denies.  Zero on honest runs (entries are only ever built
        from the chains themselves); positive while a poisoned or
        inflated entry survives in an active replica.
        ``exclude_clusters`` skips clusters whose chains cannot be held
        to the append-only promise (sacrificed byzantine clusters).
        """
        skip = set(exclude_clusters)
        divergent = 0
        for peer in self.peers:
            if self.admission.is_quarantined(peer.peer_id):
                continue
            for cluster_id, entry in peer.replica.entries.items():
                if cluster_id in skip:
                    continue
                chain = (
                    self.domains[cluster_id].cluster.longest_chain_node().chain
                )
                if not self._entry_matches_chain(entry, chain):
                    divergent += 1
        return divergent

    def directory_digest(self) -> str:
        """Deterministic digest over all replicas (determinism checks)."""
        from repro.crypto.hashing import hash_items

        return hash_items(
            "fog-directory", *(peer.replica.digest() for peer in self.peers)
        ).hex()[:32]

    def lookup(
        self,
        origin_cluster: int,
        data_id: str,
        via_peer: Optional[SuperPeer] = None,
    ) -> Optional[Tuple[int, MetadataItem]]:
        """Resolve a data id outside its origin cluster via the directory.

        Consults the origin's home super-peer (or ``via_peer`` on the
        fallback path), blooms a candidate shortlist, cross-checks each
        served entry against the candidate's chain, then verifies the
        item on the candidate's reference chain.  Returns
        ``(cluster_id, item)`` or ``None``; counting success/failure is
        the caller's job (the driver retries first).
        """
        peer = (
            via_peer
            if via_peer is not None
            else self.peers[self.home_of[origin_cluster]]
        )
        for candidate in peer.replica.candidates_for(data_id, exclude=origin_cluster):
            entry = peer.replica.entries[candidate]
            chain = self.domains[candidate].cluster.longest_chain_node().chain
            if not self._entry_matches_chain(entry, chain):
                self.counters.verify_rejected += 1
                _obs.add("fog.verify_rejected")
                # Only attributable mismatches score: an entry the serving
                # peer itself homes is one it built (or forged), so serving
                # a contradicted one is on it.  A *relayed* entry can go
                # stale-wrong through the candidate cluster's own byzantine
                # reorg — skip it, but charge nobody.
                if self.home_of.get(candidate) == peer.peer_id:
                    self.charge(peer.peer_id, FOG_DIGEST_MISMATCH)
                continue
            item = chain.metadata_of(data_id)
            if item is not None:
                return candidate, item
            self.counters.bloom_fp_probes += 1
            _obs.add("fog.bloom_fp_probes")
        return None

    def migrate(self, origin_cluster: int, item: MetadataItem) -> None:
        """Pull a foreign item into ``origin_cluster`` via its gateway.

        Models the fetch as one fog round-trip; the gateway then re-signs
        and announces the item so the target cluster's UFL allocation
        places it like home-grown data.
        """
        self.engine.schedule(
            2.0 * self.spec.fog_latency_seconds,
            self._deliver_migration,
            origin_cluster,
            item,
        )

    def push_migration(
        self, target_cluster: int, item: MetadataItem, pushed_by: int
    ) -> None:
        """An unsolicited migration pushed at a sibling's gateway.

        Nothing stops a super-peer from *sending* one — that is the
        gateway-tamperer's attack surface — but the gateway's structural
        admission decides whether it lands, and a rejected push charges
        the pusher.
        """
        self.engine.schedule(
            2.0 * self.spec.fog_latency_seconds,
            self._deliver_migration,
            target_cluster,
            item,
            pushed_by,
        )

    def _deliver_migration(
        self,
        origin_cluster: int,
        item: MetadataItem,
        pushed_by: Optional[int] = None,
    ) -> None:
        cluster = self.domains[origin_cluster].cluster
        gateway = cluster.nodes[min(cluster.node_ids)]
        if not gateway.online:
            return
        before = gateway.admission.rejections.get(FOREIGN_METADATA, 0)
        if gateway.adopt_foreign_metadata(item) is not None:
            self.counters.migrations += 1
            return
        if gateway.admission.rejections.get(FOREIGN_METADATA, 0) > before:
            self.counters.migrations_rejected += 1
            _obs.add("fog.migrations_rejected")
            if pushed_by is not None:
                self.charge(pushed_by, FOG_BAD_MIGRATION)


class CrossLookupDriver:
    """Fires scheduled cross-cluster lookups, retrying through directory lag.

    A freshly produced item is invisible to the fog until its cluster's
    next refresh gossips out, so a lookup that comes up empty retries a
    few refresh-scale intervals before counting as failed — mirroring the
    single-cluster request driver's race with block packing.  When the
    primary home peer's retry budget exhausts — a poisoned replica, a
    quarantine mid-flight — the driver falls back to a deterministic
    secondary super-peer with a few capped, jittered retries instead of
    giving up.  The jitter comes from the driver's own seeded stream and
    is only drawn on the fallback path, which honest runs never reach.
    """

    def __init__(self, fog: FogTier, rng: Optional[random.Random] = None):
        self.fog = fog
        self.rng = rng if rng is not None else random.Random(0)

    def schedule(
        self, origin_cluster: int, data_id: str, when: float, migrate: bool
    ) -> None:
        self.fog.engine.call_at(when, self._fire, origin_cluster, data_id, migrate, 0)

    def _resolved(self, origin_cluster: int, item: MetadataItem, migrate: bool) -> None:
        self.fog.counters.lookups_ok += 1
        if migrate:
            self.fog.migrate(origin_cluster, item)

    def _fire(
        self, origin_cluster: int, data_id: str, migrate: bool, attempt: int
    ) -> None:
        result = self.fog.lookup(origin_cluster, data_id)
        if result is None:
            if attempt < LOOKUP_MAX_RETRIES:
                self.fog.engine.schedule(
                    LOOKUP_RETRY_SECONDS,
                    self._fire,
                    origin_cluster,
                    data_id,
                    migrate,
                    attempt + 1,
                )
                return
            fallback = self.fog.fallback_peer_for(origin_cluster)
            if fallback is None:
                self.fog.counters.lookups_failed += 1
                return
            self.fog.counters.lookup_fallbacks += 1
            _obs.add("fog.lookup_fallbacks")
            self._fire_fallback(
                origin_cluster, data_id, migrate, fallback.peer_id, 0
            )
            return
        _source_cluster, item = result
        self._resolved(origin_cluster, item, migrate)

    def _fire_fallback(
        self,
        origin_cluster: int,
        data_id: str,
        migrate: bool,
        peer_id: int,
        attempt: int,
    ) -> None:
        result = self.fog.lookup(
            origin_cluster, data_id, via_peer=self.fog.peers[peer_id]
        )
        if result is None:
            if attempt < LOOKUP_FALLBACK_RETRIES:
                delay = LOOKUP_RETRY_SECONDS * (0.5 + self.rng.random())
                self.fog.engine.schedule(
                    delay,
                    self._fire_fallback,
                    origin_cluster,
                    data_id,
                    migrate,
                    peer_id,
                    attempt + 1,
                )
            else:
                self.fog.counters.lookups_failed += 1
            return
        _source_cluster, item = result
        self._resolved(origin_cluster, item, migrate)
