"""The fog tier: super-peers bridging edge clusters.

Super-peers are the federation's backhaul (ElfStore's fog layer): each
edge cluster *homes* to one super-peer, which periodically distills the
cluster's public state into a :class:`ClusterSummary` and anti-entropy
gossips its directory replica to a seeded-random partner.  Cross-cluster
traffic rides the directory:

* **lookup** — a cluster that cannot resolve a data id locally asks its
  home super-peer; the peer shortlists candidate clusters by bloom and
  verifies against each candidate's reference chain (false positives
  cost a probe, not a wrong answer).
* **migration** — a successful lookup may pull the item *into* the
  requesting cluster: the origin's gateway node re-signs the metadata
  under its local identity (:meth:`EdgeNode.adopt_foreign_metadata`),
  after which the target cluster's own miner places it through UFL
  allocation and normal dissemination replicates the payload.

All scheduling uses the shared engine with bound methods of these
module-level classes, so a federated runtime snapshots/resumes exactly
like a single-cluster one.  Gossip partners come from each peer's own
seeded ``random.Random``, keeping replay deterministic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.metadata import MetadataItem
from repro.federation.directory import BloomFilter, ClusterSummary, DirectoryReplica
from repro.federation.spec import FederationSpec, derived_seed
from repro.simnet.engine import EventEngine, PeriodicTask

#: A lookup that races ahead of directory refresh retries this often...
LOOKUP_RETRY_SECONDS = 45.0

#: ...at most this many times before counting as failed.
LOOKUP_MAX_RETRIES = 6


@dataclass
class FogCounters:
    """Cumulative fog-tier statistics (feed the federation monitors)."""

    refreshes: int = 0
    gossip_rounds: int = 0
    gossip_entries_adopted: int = 0
    lookups_ok: int = 0
    lookups_failed: int = 0
    migrations: int = 0


class SuperPeer:
    """One fog node: a directory replica plus its home clusters."""

    def __init__(self, peer_id: int, fog: "FogTier", rng: random.Random):
        self.peer_id = peer_id
        self.fog = fog
        self.rng = rng
        self.replica = DirectoryReplica()
        self.home_clusters: List[int] = []
        self._versions: Dict[int, int] = {}

    def refresh_home(self) -> None:
        """Re-summarise every home cluster into the local replica."""
        now = self.fog.engine.now
        for cluster_id in self.home_clusters:
            version = self._versions.get(cluster_id, 0) + 1
            self._versions[cluster_id] = version
            summary = self.fog.build_summary(cluster_id, version, now)
            self.replica.merge(summary)
            self.fog.counters.refreshes += 1

    def gossip(self) -> None:
        """Push the replica to one seeded-random partner (anti-entropy)."""
        others = [p for p in self.fog.peers if p.peer_id != self.peer_id]
        if not others or not self.replica.entries:
            return
        partner = others[self.rng.randrange(len(others))]
        payload = list(self.replica.entries.values())
        self.fog.engine.schedule(
            self.fog.spec.fog_latency_seconds, partner.receive_directory, payload
        )
        self.fog.counters.gossip_rounds += 1

    def receive_directory(self, summaries: List[ClusterSummary]) -> None:
        self.fog.counters.gossip_entries_adopted += self.replica.merge_all(summaries)


class FogTier:
    """All super-peers plus the cross-cluster routing they provide."""

    def __init__(self, engine: EventEngine, spec: FederationSpec, domains: List[Any]):
        self.engine = engine
        self.spec = spec
        self.domains = domains  # List[ClusterDomain]; duck-typed to avoid a cycle
        self.counters = FogCounters()
        self.peers: List[SuperPeer] = []
        for peer_id in range(spec.super_peer_count):
            peer_seed = derived_seed(spec.seed, "fog-peer", peer_id)
            self.peers.append(SuperPeer(peer_id, self, random.Random(peer_seed)))
        for cluster_id in range(spec.cluster_count):
            self.peers[spec.home_peer_of(cluster_id)].home_clusters.append(cluster_id)
        self._tasks: List[PeriodicTask] = []
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Arm refresh + gossip schedules (called at formation time)."""
        if self._started:
            return
        self._started = True
        for peer in self.peers:
            # Staggered deterministic start offsets keep peers from
            # refreshing/gossiping in lockstep on the same tick.
            peer.refresh_home()
            self._tasks.append(
                PeriodicTask(
                    self.engine,
                    self.spec.directory_refresh_seconds,
                    peer.refresh_home,
                    start_delay=self.spec.directory_refresh_seconds
                    + 0.1 * peer.peer_id,
                )
            )
            self._tasks.append(
                PeriodicTask(
                    self.engine,
                    self.spec.gossip_period_seconds,
                    peer.gossip,
                    start_delay=self.spec.gossip_period_seconds * 0.5
                    + 0.1 * peer.peer_id,
                )
            )

    def stop(self) -> None:
        for task in self._tasks:
            task.stop()

    # -- summaries ---------------------------------------------------------------

    def build_summary(
        self, cluster_id: int, version: int, now: float
    ) -> ClusterSummary:
        """Distill one cluster's public state into a directory entry."""
        domain = self.domains[cluster_id]
        cluster = domain.cluster
        chain = cluster.longest_chain_node().chain
        data_ids = [
            item.data_id for block in chain.blocks for item in block.metadata_items
        ]
        if chain.first_retained_index:
            # Pruned prefix: cold bodies can't be walked, but the state's
            # metadata index still names every unexpired item wherever it
            # was packed — those must stay advertised for lookups.
            hot = set(data_ids)
            data_ids.extend(
                data_id
                for data_id in chain.state.metadata_index
                if data_id not in hot
            )
        bloom = BloomFilter.sized_for(max(len(data_ids), 64))
        for data_id in data_ids:
            bloom.add(data_id)
        checkpoint_index = chain.last_checkpoint()
        capacity = float(cluster.config.storage_capacity)
        used = [cluster.nodes[n].storage.used_slots() for n in cluster.node_ids]
        total_capacity = capacity * len(used)
        fairness_max = 0.0
        for slots in used:
            clamped = min(float(slots), capacity)
            margin = capacity - clamped
            fairness_max = max(
                fairness_max, math.inf if margin <= 0 else clamped / margin
            )
        state = chain.state
        tokens = sorted((state.tokens(node) for node in state.node_ids), reverse=True)
        total_tokens = sum(tokens)
        leader = None
        term = 0
        if domain.raft is not None:
            leader_node = domain.raft.leader()
            if leader_node is not None:
                leader = leader_node.node_id
                term = leader_node.current_term
        # The retention horizon never passes the newest checkpoint, so the
        # body is normally retained; the pinned record covers a chain that
        # just pruned flush to its checkpoint.
        if chain.has_block(checkpoint_index):
            checkpoint_digest = chain.block_at(checkpoint_index).current_hash
        else:
            pinned = chain.checkpoints.get(checkpoint_index)
            checkpoint_digest = pinned.block_hash if pinned is not None else ""
        return ClusterSummary(
            cluster_id=cluster_id,
            version=version,
            updated_at=now,
            height=chain.height,
            chain_digest=chain.chain_digest(),
            checkpoint_height=checkpoint_index,
            checkpoint_digest=checkpoint_digest,
            item_count=len(data_ids),
            bloom=bloom,
            stake_top_share=(
                sum(tokens[:3]) / total_tokens if total_tokens > 0 else 0.0
            ),
            storage_used_fraction=(
                sum(used) / total_capacity if total_capacity > 0 else 0.0
            ),
            free_slots=max(0, int(total_capacity) - sum(used)),
            fairness_max=fairness_max,
            raft_leader=leader,
            raft_term=term,
        )

    # -- cross-cluster routing ----------------------------------------------------

    def directory_staleness(self, now: float) -> float:
        """Worst entry age across every peer's replica (monitor input)."""
        return max(
            peer.replica.staleness(now, self.spec.cluster_count)
            for peer in self.peers
        )

    def directory_digest(self) -> str:
        """Deterministic digest over all replicas (determinism checks)."""
        from repro.crypto.hashing import hash_items

        return hash_items(
            "fog-directory", *(peer.replica.digest() for peer in self.peers)
        ).hex()[:32]

    def lookup(
        self, origin_cluster: int, data_id: str
    ) -> Optional[Tuple[int, MetadataItem]]:
        """Resolve a data id outside its origin cluster via the directory.

        Consults the origin's home super-peer, blooms a candidate
        shortlist, then verifies against each candidate's reference
        chain.  Returns ``(cluster_id, item)`` or ``None``; counting
        success/failure is the caller's job (the driver retries first).
        """
        peer = self.peers[self.spec.home_peer_of(origin_cluster)]
        for candidate in peer.replica.candidates_for(data_id, exclude=origin_cluster):
            chain = self.domains[candidate].cluster.longest_chain_node().chain
            item = chain.metadata_of(data_id)
            if item is not None:
                return candidate, item
        return None

    def migrate(self, origin_cluster: int, item: MetadataItem) -> None:
        """Pull a foreign item into ``origin_cluster`` via its gateway.

        Models the fetch as one fog round-trip; the gateway then re-signs
        and announces the item so the target cluster's UFL allocation
        places it like home-grown data.
        """
        self.engine.schedule(
            2.0 * self.spec.fog_latency_seconds,
            self._deliver_migration,
            origin_cluster,
            item,
        )

    def _deliver_migration(self, origin_cluster: int, item: MetadataItem) -> None:
        cluster = self.domains[origin_cluster].cluster
        gateway = cluster.nodes[min(cluster.node_ids)]
        if not gateway.online:
            return
        if gateway.adopt_foreign_metadata(item) is not None:
            self.counters.migrations += 1


class CrossLookupDriver:
    """Fires scheduled cross-cluster lookups, retrying through directory lag.

    A freshly produced item is invisible to the fog until its cluster's
    next refresh gossips out, so a lookup that comes up empty retries a
    few refresh-scale intervals before counting as failed — mirroring the
    single-cluster request driver's race with block packing.
    """

    def __init__(self, fog: FogTier):
        self.fog = fog

    def schedule(
        self, origin_cluster: int, data_id: str, when: float, migrate: bool
    ) -> None:
        self.fog.engine.call_at(when, self._fire, origin_cluster, data_id, migrate, 0)

    def _fire(
        self, origin_cluster: int, data_id: str, migrate: bool, attempt: int
    ) -> None:
        result = self.fog.lookup(origin_cluster, data_id)
        if result is None:
            if attempt < LOOKUP_MAX_RETRIES:
                self.fog.engine.schedule(
                    LOOKUP_RETRY_SECONDS,
                    self._fire,
                    origin_cluster,
                    data_id,
                    migrate,
                    attempt + 1,
                )
            else:
                self.fog.counters.lookups_failed += 1
            return
        _source_cluster, item = result
        self.fog.counters.lookups_ok += 1
        if migrate:
            self.fog.migrate(origin_cluster, item)
