"""Hierarchical edge federation: sharded clusters under a fog tier.

The paper's deployment story is *pervasive* — far more devices than one
flat cluster can absorb.  This package scales the reproduction the way
ElfStore/EdgeLake scale edge storage (PAPERS.md): K independent edge
clusters, each a full instance of the existing machinery (SWIM
formation, a Raft general-information group, the PoS metadata chain and
its UFL allocation domain), bridged by fog **super-peers** that replicate
a bloom-summarized cross-cluster metadata directory and route lookups
and migrations between clusters.  Aggregate throughput grows with K
while per-cluster load stays bounded — the federation bench pins that.

The fog tier itself is byzantine-tolerant (DESIGN.md §16): directory
entries are gateway-attested, super-peers are misbehavior-scored and
quarantined, and a quarantined peer's home clusters fail over to a
deterministic sibling.  :mod:`repro.federation.adversaries` holds the
fog-tier adversary catalogue the chaos harness runs against it.

Entry points: ``repro fed run`` / ``repro fed resume`` / ``repro fed
chaos`` on the CLI, :func:`run_federation` and friends here.
"""

from repro.federation.adversaries import (
    FOG_ADVERSARY_TYPES,
    FogAdversaryPeer,
    GatewayTampererPeer,
    GossipSuppressorPeer,
    SummaryPoisonerPeer,
    VersionInflatorPeer,
    windowed_fog_class,
)
from repro.federation.chaos import (
    FOG_LOOKUP_SUCCESS_FLOOR,
    FederatedChaosResult,
    FederatedChaosSpec,
    compute_federated_verdict,
    compute_fog_section,
    run_federated_chaos,
)
from repro.federation.directory import BloomFilter, ClusterSummary, DirectoryReplica
from repro.federation.fog import (
    CrossLookupDriver,
    FogAdmission,
    FogCounters,
    FogTier,
    SuperPeer,
)
from repro.federation.runner import (
    FederationResult,
    advance_federation,
    collect_federation_metrics,
    resume_federation,
    run_federation,
)
from repro.federation.runtime import (
    ClusterDomain,
    FederationRuntime,
    build_federation_runtime,
)
from repro.federation.spec import (
    FederationSpec,
    FederationSpecError,
    cluster_seed,
    derived_seed,
)

__all__ = [
    "BloomFilter",
    "ClusterSummary",
    "DirectoryReplica",
    "ClusterDomain",
    "CrossLookupDriver",
    "FOG_ADVERSARY_TYPES",
    "FOG_LOOKUP_SUCCESS_FLOOR",
    "FederatedChaosResult",
    "FederatedChaosSpec",
    "FederationResult",
    "FederationRuntime",
    "FederationSpec",
    "FederationSpecError",
    "FogAdmission",
    "FogAdversaryPeer",
    "FogCounters",
    "FogTier",
    "GatewayTampererPeer",
    "GossipSuppressorPeer",
    "SummaryPoisonerPeer",
    "SuperPeer",
    "VersionInflatorPeer",
    "advance_federation",
    "build_federation_runtime",
    "cluster_seed",
    "collect_federation_metrics",
    "compute_federated_verdict",
    "compute_fog_section",
    "derived_seed",
    "resume_federation",
    "run_federated_chaos",
    "run_federation",
    "windowed_fog_class",
]
