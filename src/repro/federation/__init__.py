"""Hierarchical edge federation: sharded clusters under a fog tier.

The paper's deployment story is *pervasive* — far more devices than one
flat cluster can absorb.  This package scales the reproduction the way
ElfStore/EdgeLake scale edge storage (PAPERS.md): K independent edge
clusters, each a full instance of the existing machinery (SWIM
formation, a Raft general-information group, the PoS metadata chain and
its UFL allocation domain), bridged by fog **super-peers** that replicate
a bloom-summarized cross-cluster metadata directory and route lookups
and migrations between clusters.  Aggregate throughput grows with K
while per-cluster load stays bounded — the federation bench pins that.

Entry points: ``repro fed run`` / ``repro fed resume`` / ``repro fed
chaos`` on the CLI, :func:`run_federation` and friends here.
"""

from repro.federation.chaos import (
    FederatedChaosResult,
    FederatedChaosSpec,
    compute_federated_verdict,
    run_federated_chaos,
)
from repro.federation.directory import BloomFilter, ClusterSummary, DirectoryReplica
from repro.federation.fog import CrossLookupDriver, FogCounters, FogTier, SuperPeer
from repro.federation.runner import (
    FederationResult,
    advance_federation,
    collect_federation_metrics,
    resume_federation,
    run_federation,
)
from repro.federation.runtime import (
    ClusterDomain,
    FederationRuntime,
    build_federation_runtime,
)
from repro.federation.spec import FederationSpec, cluster_seed, derived_seed

__all__ = [
    "BloomFilter",
    "ClusterSummary",
    "DirectoryReplica",
    "ClusterDomain",
    "CrossLookupDriver",
    "FederatedChaosResult",
    "FederatedChaosSpec",
    "FederationResult",
    "FederationRuntime",
    "FederationSpec",
    "FogCounters",
    "FogTier",
    "SuperPeer",
    "advance_federation",
    "build_federation_runtime",
    "cluster_seed",
    "collect_federation_metrics",
    "compute_federated_verdict",
    "derived_seed",
    "resume_federation",
    "run_federated_chaos",
    "run_federation",
]
