"""Federated runtime: K cluster domains on one engine, bridged by fog.

Composition, not reimplementation: every cluster domain is the existing
single-cluster machinery — SWIM formation (:mod:`repro.membership`), a
Raft general-information group (:mod:`repro.raft`), the PoS chain + UFL
allocation cluster (:mod:`repro.sim.cluster`), and the Poisson workload
(:func:`repro.sim.runner.attach_workload`) — instantiated K times on one
shared :class:`EventEngine`.  Isolation comes from two mechanisms:

* **one network plane per protocol per cluster** — ``Network.register``
  allows one handler per node id, and cluster-local ids are reused
  across clusters, so each domain gets its own data / SWIM / Raft
  :class:`Network` over its own topology.  Cross-cluster traffic only
  flows through the fog tier (:mod:`repro.federation.fog`).
* **derived per-cluster random streams** — layout, mobility, allocation,
  membership, and workload randomness all come from generators seeded by
  ``derived_seed(root, label, k)``, so no cluster's draws can perturb a
  sibling's through the engine's shared stream.

The run has two phases: SWIM-only formation until
``membership_window_seconds``, then a :class:`_FormationGate` event
verifies each cluster's membership view converged, stops SWIM, and arms
chains, Raft, the fog directory, and (implicitly, by schedule offset)
the workload.  The whole object graph is picklable, so
:mod:`repro.persist.snapshot` checkpoints a federation exactly like a
single cluster.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.metadata import data_id_for
from repro.core.serialization import storage_to_dict
from repro.crypto.hashing import hash_items
from repro.federation.fog import CrossLookupDriver, FogTier
from repro.federation.spec import (
    FED_RAFT_ELECTION_TIMEOUT,
    FED_RAFT_HEARTBEAT_SECONDS,
    FederationSpec,
    derived_seed,
)
from repro.membership.cluster import SwimCluster
from repro.membership.messages import MemberStatus
from repro.obs import runtime as _obs
from repro.raft.cluster import RaftCluster
from repro.sim.cluster import EdgeCluster, build_cluster
from repro.sim.runner import (
    SimRuntime,
    _MobilityDriver,
    _ReconnectHook,
    attach_workload,
)
from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.faults import ChurnInjector
from repro.simnet.transport import Network


@dataclass
class ClusterDomain:
    """One edge cluster with all three of its protocol planes."""

    cluster_id: int
    seed: int
    cluster: EdgeCluster
    #: Per-cluster :class:`SimRuntime` facade — lets the single-cluster
    #: metrics collector run unchanged against this domain.
    runtime: SimRuntime
    swim: SwimCluster
    swim_network: Network
    raft: Optional[RaftCluster] = None
    raft_network: Optional[Network] = None
    #: Set by the formation gate when the membership window closes.
    formation_converged: Optional[bool] = None
    formation_time: Optional[float] = None

    def membership_converged(self) -> bool:
        """True when every member sees every member ALIVE."""
        return all(
            status is MemberStatus.ALIVE
            for observer in self.swim.nodes
            for status in self.swim.view_of(observer).values()
        )


class _FormationGate:
    """Closes the membership window (a picklable scheduled callback).

    At ``membership_window_seconds`` it records each domain's SWIM
    convergence, stops the failure detectors, and only then arms mining,
    Raft, and the fog directory — the paper's cluster-formation-then-
    operation split, K times over.
    """

    def __init__(self, runtime: "FederationRuntime"):
        self.runtime = runtime

    def fire(self) -> None:
        now = self.runtime.engine.now
        for domain in self.runtime.domains:
            domain.formation_converged = domain.membership_converged()
            domain.formation_time = now
            domain.swim.stop()
            domain.cluster.start()
            if domain.raft is not None:
                domain.raft.start()
        self.runtime.fog.start()


@dataclass
class FederationRuntime:
    """The whole federation, ready to run (and picklable for persist)."""

    spec: FederationSpec
    engine: EventEngine
    domains: List[ClusterDomain]
    fog: FogTier
    lookups: CrossLookupDriver
    persist_task: Optional[object] = None

    @property
    def clusters(self) -> List[EdgeCluster]:
        return [domain.cluster for domain in self.domains]

    @property
    def finished(self) -> bool:
        return self.engine.now >= self.spec.duration_seconds

    def cluster_digests(self) -> List[str]:
        """Per-cluster reference chain digests, in cluster order."""
        return [
            domain.cluster.longest_chain_node().chain.chain_digest()
            for domain in self.domains
        ]

    def directory_digest(self) -> str:
        return self.fog.directory_digest()

    # -- snapshot card interface (duck-called by repro.persist.snapshot) --------

    def snapshot_height(self) -> int:
        return max(
            domain.cluster.longest_chain_node().chain.height
            for domain in self.domains
        )

    def snapshot_digest(self) -> str:
        """One digest over all cluster chains (the state-card identity)."""
        return hash_items("federation-chains", *self.cluster_digests()).hex()

    def snapshot_storages(self) -> Dict[str, Any]:
        return {
            f"c{domain.cluster_id}:n{node_id}": storage_to_dict(
                domain.cluster.nodes[node_id].storage
            )
            for domain in self.domains
            for node_id in domain.cluster.node_ids
        }


def _plan_cross_lookups(
    runtime: FederationRuntime, rng: np.random.Generator
) -> None:
    """Schedule the cross-cluster lookup/migration workload.

    Data ids are precomputable (:func:`data_id_for` needs only the
    producer account and its sequence counter), so the planner walks each
    cluster's retained production schedule, samples which items attract a
    foreign lookup, and schedules the fog query from a random *other*
    cluster a directory-refresh-scale delay after production.
    """
    spec = runtime.spec
    if spec.cluster_count < 2 or spec.cross_lookup_fraction <= 0.0:
        return
    start_at = spec.membership_window_seconds
    for domain in runtime.domains:
        sequences: Dict[int, int] = {}
        for event in domain.runtime.production.schedule:
            sequence = sequences.get(event.producer, 0)
            sequences[event.producer] = sequence + 1
            if rng.random() >= spec.cross_lookup_fraction:
                continue
            data_id = data_id_for(
                domain.cluster.accounts[event.producer], sequence
            )
            origin = int(
                (domain.cluster_id + 1 + rng.integers(spec.cluster_count - 1))
                % spec.cluster_count
            )
            when = (
                start_at
                + event.time
                + float(rng.uniform(spec.lookup_min_delay, spec.lookup_max_delay))
            )
            if when >= spec.duration_seconds:
                continue
            migrate = bool(rng.random() < spec.migrate_fraction)
            runtime.lookups.schedule(origin, data_id, when, migrate)


def _build_domain(
    spec: FederationSpec, cluster_id: int, engine: EventEngine
) -> ClusterDomain:
    cluster_spec = spec.cluster_spec(cluster_id)
    layout_rng = np.random.default_rng(
        derived_seed(spec.seed, "layout", cluster_id)
    )
    cluster = build_cluster(
        cluster_spec.node_count,
        spec.config,
        seed=cluster_spec.seed,
        node_classes=cluster_spec.node_classes,
        engine=engine,
        rng=layout_rng,
    )
    config = spec.config

    # Membership plane: SWIM gets its own Network over the same topology
    # (one handler per node id per network), with an explicitly seeded
    # per-cluster protocol RNG — K clusters form deterministically from
    # the root seed no matter how their events interleave.
    swim_network = Network(
        engine,
        cluster.topology,
        ChannelModel(hop_delay=config.hop_delay, bandwidth=config.bandwidth),
    )
    swim = SwimCluster(
        cluster.node_ids,
        swim_network,
        engine,
        rng=random.Random(derived_seed(spec.seed, "swim", cluster_id)),
    )
    swim.start()

    # General-information plane: one Raft group per cluster, paced for
    # federation scale (K clusters share the engine's wall clock).
    raft: Optional[RaftCluster] = None
    raft_network: Optional[Network] = None
    if spec.with_raft:
        raft_network = Network(engine, cluster.topology, ChannelModel(bandwidth=None))
        raft = RaftCluster(
            cluster.node_ids,
            raft_network,
            engine,
            election_timeout=FED_RAFT_ELECTION_TIMEOUT,
            heartbeat_interval=FED_RAFT_HEARTBEAT_SECONDS,
        )

    # Workload: held back until the formation window closes, sourced from
    # a cluster-private generator.
    workload_rng = np.random.default_rng(
        derived_seed(spec.seed, "workload", cluster_id)
    )
    production, requests = attach_workload(
        cluster,
        cluster_spec,
        rng=workload_rng,
        start_at=spec.membership_window_seconds,
    )

    mobility: Optional[_MobilityDriver] = None
    if cluster_spec.mobility_epoch_minutes > 0:
        mobility = _MobilityDriver(
            cluster,
            cluster_spec.mobility_epoch_minutes * 60.0,
            spec.duration_seconds,
        )
        mobility.start()

    injector: Optional[ChurnInjector] = None
    if cluster_spec.churn is not None:
        churn_rng = np.random.default_rng(
            derived_seed(spec.seed, "churn", cluster_id)
        )
        churned_count = int(
            round(cluster_spec.churn.node_fraction * cluster_spec.node_count)
        )
        churned_nodes = list(
            churn_rng.choice(
                cluster_spec.node_count, size=churned_count, replace=False
            )
        )
        injector = ChurnInjector(
            engine, cluster.network, on_up=_ReconnectHook(cluster)
        )
        injector.plan_random(
            node_ids=[int(n) for n in churned_nodes],
            horizon=spec.duration_seconds * 0.9,
            mean_downtime=cluster_spec.churn.mean_downtime_seconds,
            events_per_node=cluster_spec.churn.events_per_node,
        )

    runtime = SimRuntime(
        spec=cluster_spec,
        cluster=cluster,
        production=production,
        requests=requests,
        mobility=mobility,
        churn=injector,
    )
    return ClusterDomain(
        cluster_id=cluster_id,
        seed=cluster_spec.seed,
        cluster=cluster,
        runtime=runtime,
        swim=swim,
        swim_network=swim_network,
        raft=raft,
        raft_network=raft_network,
    )


def build_federation_runtime(spec: FederationSpec) -> FederationRuntime:
    """Wire K domains + fog tier, schedule everything, return the runtime.

    Mirrors :func:`repro.sim.runner.build_runtime`: the returned object
    is fully scheduled (formation gate, workload, lookups, directory) and
    advancing ``runtime.engine`` is all that remains.
    """
    with _obs.span(
        "fed.build",
        "fed",
        clusters=spec.cluster_count,
        nodes=spec.total_nodes,
        seed=spec.seed,
    ):
        engine = EventEngine(seed=spec.seed)
        domains = [
            _build_domain(spec, cluster_id, engine)
            for cluster_id in range(spec.cluster_count)
        ]
        fog = FogTier(engine, spec, domains)
        lookups = CrossLookupDriver(
            fog,
            rng=random.Random(derived_seed(spec.seed, "lookup-fallback", 0)),
        )
        runtime = FederationRuntime(
            spec=spec, engine=engine, domains=domains, fog=fog, lookups=lookups
        )
        _plan_cross_lookups(
            runtime, np.random.default_rng(derived_seed(spec.seed, "lookups", 0))
        )
        engine.call_at(
            spec.membership_window_seconds, _FormationGate(runtime).fire
        )
    _obs.set_sim_clock(engine.clock_reader())
    _obs.attach_runtime(runtime)
    return runtime
