"""The cross-cluster metadata directory replicated across super-peers.

ElfStore-style federation (PAPERS.md): each edge cluster keeps its full
metadata on its own chain, while the fog tier carries only a compact
*summary* per cluster — a bloom filter over the data ids the cluster's
reference chain has packed, the checkpoint digest, and coarse stake /
storage / fairness aggregates.  Super-peers exchange these summaries by
gossip; a cross-cluster lookup consults the blooms to shortlist candidate
clusters and then verifies against the candidate's actual chain, so bloom
false positives cost one extra probe, never a wrong answer.

Everything here is deterministic and picklable: the bloom hashes with
salted SHA-256 (no Python ``hash()`` randomisation), and replicas merge
by ``(version, cluster_id)`` order so any gossip delivery order converges
to the same state — the property the federated determinism test pins.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.crypto.hashing import hash_items

#: Bits per expected item; 10 bits/item ≈ 1 % false-positive rate at the
#: optimal hash count, plenty for a shortlist-then-verify directory.
BLOOM_BITS_PER_ITEM = 10

#: Minimum filter size so tiny clusters don't degenerate to all-ones.
BLOOM_MIN_BITS = 256


class BloomFilter:
    """A deterministic bloom filter over string keys.

    Hashing is salted SHA-256 — independent of interpreter hash
    randomisation — so two runs (or two super-peers) building a filter
    over the same key set produce bit-identical filters.
    """

    def __init__(self, size_bits: int, hash_count: int):
        if size_bits < 8:
            raise ValueError("bloom filter needs at least 8 bits")
        if hash_count < 1:
            raise ValueError("bloom filter needs at least one hash")
        self.size_bits = size_bits
        self.hash_count = hash_count
        self._bits = bytearray((size_bits + 7) // 8)
        self._count = 0

    @classmethod
    def sized_for(cls, expected_items: int) -> "BloomFilter":
        """A filter sized for ``expected_items`` at ~1 % false positives."""
        bits = max(BLOOM_MIN_BITS, expected_items * BLOOM_BITS_PER_ITEM)
        hashes = max(1, round(bits / max(1, expected_items) * math.log(2)))
        return cls(size_bits=bits, hash_count=min(hashes, 16))

    def _positions(self, key: str) -> Iterable[int]:
        for salt in range(self.hash_count):
            digest = hashlib.sha256(f"bloom:{salt}:{key}".encode("utf-8")).digest()
            yield int.from_bytes(digest[:8], "big") % self.size_bits

    def add(self, key: str) -> None:
        for position in self._positions(key):
            self._bits[position // 8] |= 1 << (position % 8)
        self._count += 1

    def might_contain(self, key: str) -> bool:
        return all(
            self._bits[position // 8] & (1 << (position % 8))
            for position in self._positions(key)
        )

    __contains__ = might_contain

    @property
    def count(self) -> int:
        """Keys added (not deduplicated)."""
        return self._count

    def fill_ratio(self) -> float:
        """Fraction of bits set — a saturation warning light."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.size_bits

    def digest(self) -> str:
        """Content digest used in summary/replica digests."""
        return hash_items(
            "bloom", self.size_bits, self.hash_count, bytes(self._bits).hex()
        ).hex()[:16]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BloomFilter)
            and self.size_bits == other.size_bits
            and self.hash_count == other.hash_count
            and self._bits == other._bits
        )


@dataclass(frozen=True)
class ClusterSummary:
    """One cluster's entry in the federation directory.

    ``version`` increases with every refresh by the cluster's home
    super-peer; replicas keep the highest version they have seen, so the
    entry converges regardless of gossip order.
    """

    cluster_id: int
    version: int
    updated_at: float  # simulation time of the home-peer refresh
    height: int
    chain_digest: str
    checkpoint_height: int
    checkpoint_digest: str
    item_count: int  # metadata items on the reference chain
    bloom: BloomFilter
    stake_top_share: float
    storage_used_fraction: float
    free_slots: int
    fairness_max: float
    #: The cluster's general-information consensus head, if Raft runs.
    raft_leader: Optional[int] = None
    raft_term: int = 0
    #: Gateway attestation: the home cluster's gateway signs the canonical
    #: summary body (:meth:`attestation_payload`) so no super-peer can
    #: forge an entry for a cluster it does not gate.
    attestor_public_key_hex: str = ""
    attestation_hex: str = ""

    def attestation_payload(self) -> bytes:
        """The canonical summary body the gateway key signs.

        Covers every content field — the attestation fields themselves
        excluded — with the same fixed float formatting as
        :meth:`digest`, so signer and verifier hash identical bytes.
        """
        return hash_items(
            "cluster-summary-body",
            self.cluster_id,
            self.version,
            f"{self.updated_at:.6f}",
            self.height,
            self.chain_digest,
            self.checkpoint_height,
            self.checkpoint_digest,
            self.item_count,
            self.bloom.digest(),
            f"{self.stake_top_share:.9f}",
            f"{self.storage_used_fraction:.9f}",
            self.free_slots,
            f"{self.fairness_max:.9f}" if math.isfinite(self.fairness_max) else "inf",
            -1 if self.raft_leader is None else self.raft_leader,
            self.raft_term,
        )

    def digest(self) -> str:
        """Deterministic content digest of the whole entry."""
        return hash_items(
            "cluster-summary",
            self.attestation_payload().hex(),
            self.attestor_public_key_hex,
            self.attestation_hex,
        ).hex()[:32]


class DirectoryReplica:
    """One super-peer's copy of the directory: cluster id → summary."""

    def __init__(self) -> None:
        self.entries: Dict[int, ClusterSummary] = {}

    def merge(self, summary: ClusterSummary) -> bool:
        """Adopt ``summary`` if it is newer; returns True when adopted."""
        current = self.entries.get(summary.cluster_id)
        if current is not None and current.version >= summary.version:
            return False
        self.entries[summary.cluster_id] = summary
        return True

    def merge_all(self, summaries: Iterable[ClusterSummary]) -> int:
        return sum(1 for summary in summaries if self.merge(summary))

    def staleness(self, now: float, cluster_count: int) -> float:
        """Age of the most out-of-date entry (clusters never heard of age
        from time zero)."""
        worst = 0.0
        for cluster_id in range(cluster_count):
            entry = self.entries.get(cluster_id)
            age = now if entry is None else now - entry.updated_at
            worst = max(worst, age)
        return worst

    def candidates_for(self, data_id: str, exclude: Optional[int] = None) -> List[int]:
        """Clusters whose bloom might hold ``data_id``, in cluster-id order."""
        return [
            cluster_id
            for cluster_id in sorted(self.entries)
            if cluster_id != exclude and data_id in self.entries[cluster_id].bloom
        ]

    def digest(self) -> str:
        """Deterministic digest over the replica (for determinism checks)."""
        fields: List[object] = ["directory"]
        for cluster_id in sorted(self.entries):
            fields.append(self.entries[cluster_id].digest())
        return hash_items(*fields).hex()[:32]
