"""The paper's two cost functions: FDC (Eq. 1) and RDC (Eq. 2).

* **Fairness Degree Cost** — ``f_i = W(i) / (W_tol(i) − W(i))`` measures how
  loaded a node already is; a full node costs ∞ and is never chosen.
* **Range-Distance Cost** — ``c_ij = d(i,j) + range(i) + range(j)`` for
  ``i ≠ j`` (0 on the diagonal), with hop-count distance, penalising mobile
  endpoints whose actual position is uncertain.

:func:`build_storage_ufl` combines them into the weighted UFL objective with
the paper's scaling factor ``A = 1000`` ("After some tests, we set A = 1000
for better performance", Section IV-A-3).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.facility.problem import UFLProblem
from repro.simnet.topology import UNREACHABLE

#: Paper's FDC:RDC weighting (Section IV-A-3).
DEFAULT_FDC_WEIGHT = 1000.0


def fairness_degree_cost(used: float, total: float) -> float:
    """FDC of a single node (Eq. 1).  ``inf`` when the node is full."""
    if total <= 0:
        raise ValueError("total storage must be positive")
    if used < 0:
        raise ValueError("used storage cannot be negative")
    if used > total:
        raise ValueError("used storage cannot exceed total storage")
    remaining = total - used
    if remaining == 0:
        return math.inf
    return used / remaining


def fairness_degree_costs(
    used: Sequence[float], total: Sequence[float]
) -> np.ndarray:
    """Vectorised FDC over all nodes."""
    used_arr = np.asarray(used, dtype=float)
    total_arr = np.asarray(total, dtype=float)
    if used_arr.shape != total_arr.shape:
        raise ValueError("used and total must have the same shape")
    return np.array(
        [fairness_degree_cost(u, t) for u, t in zip(used_arr, total_arr)],
        dtype=float,
    )


def range_distance_costs(
    hop_matrix: np.ndarray, ranges: Sequence[float], hop_scale: float = 1.0
) -> np.ndarray:
    """RDC matrix over all node pairs (Eq. 2).

    Parameters
    ----------
    hop_matrix:
        Square matrix of hop counts; ``UNREACHABLE`` (−1) entries become
        ``inf`` (a client cannot be served across a partition).
    ranges:
        Per-node mobility range ``range(i)``.  The paper's RDC mixes metres
        (ranges) with hops (distance); ``hop_scale`` converts hops into the
        range unit.  With the paper's numbers (70 m radio range, 30 m
        mobility) one hop covers up to ~70 m, so the natural scale is the
        radio range; callers can pass 1.0 to use raw hops as the paper's
        formula literally does.
    """
    hops = np.asarray(hop_matrix, dtype=float)
    if hops.ndim != 2 or hops.shape[0] != hops.shape[1]:
        raise ValueError("hop matrix must be square")
    n = hops.shape[0]
    range_arr = np.asarray(ranges, dtype=float)
    if range_arr.shape != (n,):
        raise ValueError("ranges length must match hop matrix size")
    if np.any(range_arr < 0):
        raise ValueError("ranges must be non-negative")

    cost = hops * hop_scale
    cost[hops == UNREACHABLE] = math.inf
    cost = cost + range_arr[:, None] + range_arr[None, :]
    np.fill_diagonal(cost, 0.0)  # c_ii = 0 (Eq. 2 second case)
    return cost


def build_storage_ufl(
    used_storage: Sequence[float],
    total_storage: Sequence[float],
    hop_matrix: np.ndarray,
    ranges: Sequence[float],
    fdc_weight: float = DEFAULT_FDC_WEIGHT,
    hop_scale: float = 1.0,
    exclude_nodes: Optional[Sequence[int]] = None,
) -> UFLProblem:
    """Build the per-item UFL instance of Eq. 3 for the current network state.

    Every node is both a candidate facility (storage site) and a client
    (potential accessor).  ``exclude_nodes`` marks nodes that must not store
    the item (e.g. offline nodes): their facility cost becomes ``inf``.
    """
    if fdc_weight < 0:
        raise ValueError("FDC weight must be non-negative")
    facility = fdc_weight * fairness_degree_costs(used_storage, total_storage)
    connection = range_distance_costs(hop_matrix, ranges, hop_scale=hop_scale)
    if facility.shape[0] != connection.shape[0]:
        raise ValueError("storage vectors must match hop matrix size")
    if exclude_nodes:
        facility = facility.copy()
        for node in exclude_nodes:
            facility[node] = math.inf
    return UFLProblem(facility_costs=facility, connection_costs=connection)
