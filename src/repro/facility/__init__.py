"""Facility-location solver suite for the storage-allocation problem.

The paper maps per-item storage placement to Uncapacitated Facility
Location (Section IV-A-3).  This package provides the instance model, the
paper's FDC/RDC cost builders, and four solvers:

* :func:`solve_greedy` — dual-fitting greedy (the production default),
* :func:`solve_local_search` — add/drop/swap refinement,
* :func:`solve_lp_rounding` — LP relaxation + deterministic rounding (also
  yields a certified lower bound via :func:`solve_lp_relaxation`),
* :func:`solve_milp` — exact optimum on small instances,
* :func:`solve_random` — the paper's replica-matched random baseline.
"""

from repro.facility.costs import (
    DEFAULT_FDC_WEIGHT,
    build_storage_ufl,
    fairness_degree_cost,
    fairness_degree_costs,
    range_distance_costs,
)
from repro.facility.greedy import solve_greedy
from repro.facility.local_search import solve_local_search
from repro.facility.lp_rounding import LPResult, solve_lp_relaxation, solve_lp_rounding
from repro.facility.mip import solve_milp
from repro.facility.problem import (
    UFLProblem,
    UFLSolution,
    assign_to_open,
    solution_cost_of_open_set,
)
from repro.facility.random_baseline import solve_random

__all__ = [
    "UFLProblem",
    "UFLSolution",
    "assign_to_open",
    "solution_cost_of_open_set",
    "fairness_degree_cost",
    "fairness_degree_costs",
    "range_distance_costs",
    "build_storage_ufl",
    "DEFAULT_FDC_WEIGHT",
    "solve_greedy",
    "solve_local_search",
    "solve_lp_relaxation",
    "solve_lp_rounding",
    "LPResult",
    "solve_milp",
    "solve_random",
]
