"""Greedy (dual-fitting) UFL solver.

The classic Jain–Mahdian–Saberi style greedy: repeatedly open the
facility/client-star with the lowest average cost until every client is
served, then reassign clients to their cheapest open facility.  This is the
production solver for the per-item placement problem — near-optimal in
practice (the paper cites Li's 1.488-approximation as state of the art; the
greedy achieves ≤1.861 in theory and is typically within a few percent of
the MILP optimum on these geometric instances, which the test-suite checks).

Complexity is O(rounds · F · C log C) — instantaneous at edge-network sizes
(≤ tens of nodes per the paper's evaluation).
"""

from __future__ import annotations

import math
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.facility.problem import UFLProblem, UFLSolution, assign_to_open
from repro.obs.runtime import traced_solver


@traced_solver("greedy")
def solve_greedy(problem: UFLProblem) -> UFLSolution:
    """Solve a UFL instance greedily.

    Raises
    ------
    ValueError
        If the instance is infeasible (some client cannot reach any
        openable facility with finite cost).
    """
    if not problem.is_feasible():
        raise ValueError("infeasible UFL instance: a client has no reachable facility")

    num_facilities = problem.num_facilities
    num_clients = problem.num_clients
    facility_costs = problem.facility_costs.copy()
    connection = problem.connection_costs

    unassigned: Set[int] = set(range(num_clients))
    open_set: List[int] = []
    opened = np.zeros(num_facilities, dtype=bool)

    while unassigned:
        best_ratio = math.inf
        best_choice: Optional[Tuple[int, List[int]]] = None
        unassigned_list = sorted(unassigned)
        for facility in range(num_facilities):
            opening_cost = 0.0 if opened[facility] else facility_costs[facility]
            if not math.isfinite(opening_cost):
                continue
            costs = connection[facility, unassigned_list]
            finite_mask = np.isfinite(costs)
            if not finite_mask.any():
                continue
            finite_clients = [
                unassigned_list[idx] for idx in np.flatnonzero(finite_mask)
            ]
            finite_costs = costs[finite_mask]
            order = np.argsort(finite_costs, kind="stable")
            sorted_costs = finite_costs[order]
            prefix = np.cumsum(sorted_costs)
            counts = np.arange(1, len(sorted_costs) + 1)
            ratios = (opening_cost + prefix) / counts
            k = int(np.argmin(ratios))
            ratio = float(ratios[k])
            if ratio < best_ratio - 1e-12:
                star_clients = [finite_clients[idx] for idx in order[: k + 1]]
                best_ratio = ratio
                best_choice = (facility, star_clients)
        if best_choice is None:
            raise ValueError("greedy could not serve all clients (infeasible)")
        facility, star_clients = best_choice
        opened[facility] = True
        if facility not in open_set:
            open_set.append(facility)
        unassigned.difference_update(star_clients)

    # Final improvement: every client connects to its cheapest open facility.
    return assign_to_open(problem, open_set)
