"""Uncapacitated Facility Location (UFL) problem model.

The paper casts per-item storage placement as UFL (Section IV-A-3): the
Fairness Degree Cost plays the facility-opening cost and the Range-Distance
Cost plays the client-connection cost:

    min  A·Σ_i f_i y_ik  +  Σ_i Σ_j c_ij x_ijk        (Eq. 3)
    s.t. Σ_i x_ijk ≥ 1   ∀j                            (Eq. 4)
         y_ik ≥ x_ijk    ∀i,j                          (Eq. 5)
         x, y ∈ {0,1}                                  (Eq. 6)

This module defines the instance (:class:`UFLProblem`) and solution
(:class:`UFLSolution`) types shared by every solver, plus validation and
cost evaluation.  Facilities with no remaining storage have infinite opening
cost (Eq. 1 at W = W_tol) and must never be opened.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class UFLProblem:
    """One UFL instance.

    Attributes
    ----------
    facility_costs:
        Shape ``(num_facilities,)``; opening cost of each facility.  May
        contain ``inf`` for facilities that cannot be opened (full nodes).
    connection_costs:
        Shape ``(num_facilities, num_clients)``; cost for client ``j`` to
        connect to facility ``i``.  May contain ``inf`` for unreachable
        pairs (partitioned topology).
    """

    facility_costs: np.ndarray
    connection_costs: np.ndarray

    def __post_init__(self) -> None:
        facility = np.asarray(self.facility_costs, dtype=float)
        connection = np.asarray(self.connection_costs, dtype=float)
        object.__setattr__(self, "facility_costs", facility)
        object.__setattr__(self, "connection_costs", connection)
        if facility.ndim != 1:
            raise ValueError("facility_costs must be 1-D")
        if connection.ndim != 2:
            raise ValueError("connection_costs must be 2-D")
        if connection.shape[0] != facility.shape[0]:
            raise ValueError(
                "connection_costs rows must match the number of facilities"
            )
        if facility.shape[0] == 0:
            raise ValueError("need at least one facility")
        if connection.shape[1] == 0:
            raise ValueError("need at least one client")
        if np.any(facility < 0) or np.any(connection < 0):
            raise ValueError("costs must be non-negative")

    @property
    def num_facilities(self) -> int:
        return int(self.facility_costs.shape[0])

    @property
    def num_clients(self) -> int:
        return int(self.connection_costs.shape[1])

    def openable_facilities(self) -> np.ndarray:
        """Indices of facilities with finite opening cost."""
        return np.flatnonzero(np.isfinite(self.facility_costs))

    def is_feasible(self) -> bool:
        """True iff every client can reach some openable facility finitely."""
        openable = self.openable_facilities()
        if openable.size == 0:
            return False
        reachable = np.isfinite(self.connection_costs[openable, :])
        return bool(np.all(reachable.any(axis=0)))


@dataclass(frozen=True)
class UFLSolution:
    """A feasible solution: the open set and each client's serving facility."""

    open_facilities: Tuple[int, ...]
    assignment: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "open_facilities", tuple(sorted(set(self.open_facilities))))
        object.__setattr__(self, "assignment", tuple(self.assignment))

    @property
    def replica_count(self) -> int:
        """Number of open facilities — the item's storage replica count."""
        return len(self.open_facilities)

    def facility_cost(self, problem: UFLProblem) -> float:
        return float(sum(problem.facility_costs[i] for i in self.open_facilities))

    def connection_cost(self, problem: UFLProblem) -> float:
        return float(
            sum(
                problem.connection_costs[facility, client]
                for client, facility in enumerate(self.assignment)
            )
        )

    def total_cost(self, problem: UFLProblem) -> float:
        return self.facility_cost(problem) + self.connection_cost(problem)

    def validate(self, problem: UFLProblem) -> None:
        """Raise ``ValueError`` on any constraint violation."""
        if len(self.assignment) != problem.num_clients:
            raise ValueError("assignment must cover every client")
        open_set = set(self.open_facilities)
        if not open_set:
            raise ValueError("at least one facility must be open")
        for facility in open_set:
            if not (0 <= facility < problem.num_facilities):
                raise ValueError(f"facility index {facility} out of range")
            if not math.isfinite(problem.facility_costs[facility]):
                raise ValueError(f"facility {facility} has infinite opening cost")
        for client, facility in enumerate(self.assignment):
            if facility not in open_set:
                raise ValueError(
                    f"client {client} assigned to closed facility {facility}"
                )
            if not math.isfinite(problem.connection_costs[facility, client]):
                raise ValueError(
                    f"client {client} unreachable from facility {facility}"
                )


def assign_to_open(problem: UFLProblem, open_facilities: Sequence[int]) -> UFLSolution:
    """Optimal assignment given a fixed open set (each client → cheapest).

    Raises ``ValueError`` if some client cannot finitely reach any open
    facility.
    """
    open_list = sorted(set(open_facilities))
    if not open_list:
        raise ValueError("open set must be non-empty")
    submatrix = problem.connection_costs[open_list, :]
    best_rows = np.argmin(submatrix, axis=0)
    best_costs = submatrix[best_rows, np.arange(problem.num_clients)]
    if not np.all(np.isfinite(best_costs)):
        unreachable = np.flatnonzero(~np.isfinite(best_costs)).tolist()
        raise ValueError(f"clients {unreachable} cannot reach the open set")
    assignment = tuple(int(open_list[row]) for row in best_rows)
    return UFLSolution(open_facilities=tuple(open_list), assignment=assignment)


def solution_cost_of_open_set(
    problem: UFLProblem, open_facilities: Sequence[int]
) -> float:
    """Total cost of the best solution with exactly this open set.

    Returns ``inf`` when the set is empty, contains an unopenable facility,
    or leaves a client unreachable — convenient for search loops.
    """
    open_list = sorted(set(open_facilities))
    if not open_list:
        return math.inf
    facility_cost = float(problem.facility_costs[open_list].sum())
    if not math.isfinite(facility_cost):
        return math.inf
    submatrix = problem.connection_costs[open_list, :]
    best = submatrix.min(axis=0)
    if not np.all(np.isfinite(best)):
        return math.inf
    return facility_cost + float(best.sum())
