"""Local-search UFL solver (add / drop / swap moves).

Starting from a feasible open set (the greedy solution by default), the
search applies first-improvement moves until no move helps:

* **add** — open one more facility,
* **drop** — close an open facility (if clients can still be served),
* **swap** — close one open facility and open a closed one.

Add/drop/swap local search is a classical (3+ε)-approximation for metric
UFL; combined with the greedy warm start it closes most of the remaining
gap to optimal on the geometric instances this system produces.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Set

import numpy as np

from repro.facility.greedy import solve_greedy
from repro.facility.problem import (
    UFLProblem,
    UFLSolution,
    assign_to_open,
    solution_cost_of_open_set,
)
from repro.obs.runtime import traced_solver

#: Relative improvement below which a move is not worth taking (stops
#: floating-point ping-pong).
_MIN_IMPROVEMENT = 1e-9


def _initial_open_set(problem: UFLProblem, initial: Optional[Iterable[int]]) -> Set[int]:
    if initial is not None:
        open_set = set(initial)
        if math.isinf(solution_cost_of_open_set(problem, open_set)):
            raise ValueError("initial open set is infeasible")
        return open_set
    return set(solve_greedy(problem).open_facilities)


@traced_solver("local_search")
def solve_local_search(
    problem: UFLProblem,
    initial: Optional[Iterable[int]] = None,
    max_rounds: int = 100,
) -> UFLSolution:
    """Improve an open set by add/drop/swap until a local optimum.

    Parameters
    ----------
    initial:
        Optional starting open set; defaults to the greedy solution.
    max_rounds:
        Safety cap on full passes over the move neighbourhood.
    """
    if not problem.is_feasible():
        raise ValueError("infeasible UFL instance")
    open_set = _initial_open_set(problem, initial)
    current_cost = solution_cost_of_open_set(problem, open_set)
    openable = [
        int(i) for i in problem.openable_facilities()
    ]

    for _ in range(max_rounds):
        improved = False

        # Drop moves first: they reduce facility cost, the dominant term
        # under the paper's A=1000 weighting.
        for facility in sorted(open_set):
            if len(open_set) == 1:
                break
            candidate = open_set - {facility}
            cost = solution_cost_of_open_set(problem, candidate)
            if cost < current_cost * (1 - _MIN_IMPROVEMENT):
                open_set = candidate
                current_cost = cost
                improved = True
                break
        if improved:
            continue

        # Add moves.
        for facility in openable:
            if facility in open_set:
                continue
            candidate = open_set | {facility}
            cost = solution_cost_of_open_set(problem, candidate)
            if cost < current_cost * (1 - _MIN_IMPROVEMENT):
                open_set = candidate
                current_cost = cost
                improved = True
                break
        if improved:
            continue

        # Swap moves.
        for out_facility in sorted(open_set):
            for in_facility in openable:
                if in_facility in open_set:
                    continue
                candidate = (open_set - {out_facility}) | {in_facility}
                cost = solution_cost_of_open_set(problem, candidate)
                if cost < current_cost * (1 - _MIN_IMPROVEMENT):
                    open_set = candidate
                    current_cost = cost
                    improved = True
                    break
            if improved:
                break

        if not improved:
            break

    return assign_to_open(problem, sorted(open_set))
