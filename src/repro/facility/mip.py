"""Exact UFL solver via mixed-integer programming (HiGHS).

Used as the ground-truth oracle in tests and the solver-quality ablation:
on small instances (the default guard is 4 000 variables) it certifies the
optimum that the greedy / local-search / LP-rounding heuristics are compared
against.  Not intended for the simulation hot path.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.facility.problem import UFLProblem, UFLSolution, assign_to_open
from repro.obs.runtime import traced_solver

#: Refuse instances whose variable count exceeds this (keeps tests fast).
DEFAULT_MAX_VARIABLES = 4000


@traced_solver("milp")
def solve_milp(problem: UFLProblem, max_variables: int = DEFAULT_MAX_VARIABLES) -> UFLSolution:
    """Solve the UFL instance to optimality.

    Raises
    ------
    ValueError
        If the instance is infeasible or exceeds ``max_variables``.
    RuntimeError
        If HiGHS fails unexpectedly.
    """
    if not problem.is_feasible():
        raise ValueError("infeasible UFL instance")
    num_f = problem.num_facilities
    num_c = problem.num_clients

    facility_finite = np.isfinite(problem.facility_costs)
    pair_finite = np.isfinite(problem.connection_costs) & facility_finite[:, None]

    y_index = {int(i): idx for idx, i in enumerate(np.flatnonzero(facility_finite))}
    pair_list: List[Tuple[int, int]] = [
        (int(i), int(j)) for i, j in zip(*np.nonzero(pair_finite))
    ]
    x_index = {pair: len(y_index) + idx for idx, pair in enumerate(pair_list)}
    num_vars = len(y_index) + len(pair_list)
    if num_vars > max_variables:
        raise ValueError(
            f"instance too large for exact MILP: {num_vars} > {max_variables} variables"
        )

    cost = np.zeros(num_vars)
    for i, idx in y_index.items():
        cost[idx] = problem.facility_costs[i]
    for (i, j), idx in x_index.items():
        cost[idx] = problem.connection_costs[i, j]

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    row_count = 0
    for j in range(num_c):
        for i in range(num_f):
            if (i, j) in x_index:
                rows.append(row_count)
                cols.append(x_index[(i, j)])
                vals.append(1.0)
        row_count += 1
    coverage_rows = row_count
    for (i, j), idx in x_index.items():
        rows.append(row_count)
        cols.append(idx)
        vals.append(1.0)
        rows.append(row_count)
        cols.append(y_index[i])
        vals.append(-1.0)
        row_count += 1

    matrix = sparse.coo_matrix((vals, (rows, cols)), shape=(row_count, num_vars)).tocsc()
    lower = np.concatenate([np.ones(coverage_rows), -np.inf * np.ones(row_count - coverage_rows)])
    upper = np.concatenate([np.inf * np.ones(coverage_rows), np.zeros(row_count - coverage_rows)])
    constraints = LinearConstraint(matrix, lower, upper)

    result = milp(
        c=cost,
        constraints=constraints,
        integrality=np.ones(num_vars),
        bounds=Bounds(0.0, 1.0),
    )
    if not result.success:
        raise RuntimeError(f"MILP solve failed: {result.message}")

    open_facilities = sorted(
        i for i, idx in y_index.items() if result.x[idx] > 0.5
    )
    return assign_to_open(problem, open_facilities)
