"""LP-relaxation + deterministic filtering/rounding UFL solver.

Solves the linear relaxation of Eq. 3–6 with HiGHS (via
:func:`scipy.optimize.linprog`), then rounds with the classic
Shmoys–Tardos–Aardal clustering:

1. Compute each client's fractional connection cost ``C*_j = Σ_i c_ij x*_ij``.
2. Process clients in increasing ``C*_j``; an unclustered client ``j``
   becomes a cluster centre, opens the cheapest facility in its fractional
   neighbourhood ``N(j) = {i : x*_ij > 0}``, and absorbs every unclustered
   client whose neighbourhood intersects ``N(j)``.
3. Reassign all clients to their cheapest open facility.

The LP optimum also serves as a certified lower bound, which the ablation
benchmark uses to report per-solver optimality gaps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.facility.problem import UFLProblem, UFLSolution, assign_to_open
from repro.obs.runtime import traced_solver

#: Fractional values below this are treated as zero when forming N(j).
_FRACTIONAL_TOL = 1e-6


@dataclass(frozen=True)
class LPResult:
    """The relaxation outcome: optimum value and fractional variables."""

    lower_bound: float
    y: np.ndarray
    x: np.ndarray  # shape (num_facilities, num_clients)


def solve_lp_relaxation(problem: UFLProblem) -> LPResult:
    """Solve the LP relaxation of the UFL instance.

    Variables with infinite cost coefficients are fixed to zero rather than
    passed to the solver.
    """
    if not problem.is_feasible():
        raise ValueError("infeasible UFL instance")
    num_f = problem.num_facilities
    num_c = problem.num_clients

    facility_finite = np.isfinite(problem.facility_costs)
    pair_finite = np.isfinite(problem.connection_costs) & facility_finite[:, None]

    # Variable layout: y_i for openable facilities, then x_ij for finite pairs.
    y_index = {int(i): idx for idx, i in enumerate(np.flatnonzero(facility_finite))}
    pair_list: List[Tuple[int, int]] = [
        (int(i), int(j)) for i, j in zip(*np.nonzero(pair_finite))
    ]
    x_index = {pair: len(y_index) + idx for idx, pair in enumerate(pair_list)}
    num_vars = len(y_index) + len(pair_list)

    cost = np.zeros(num_vars)
    for i, idx in y_index.items():
        cost[idx] = problem.facility_costs[i]
    for (i, j), idx in x_index.items():
        cost[idx] = problem.connection_costs[i, j]

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    row_count = 0
    # Coverage: -Σ_i x_ij ≤ -1 for each client.
    for j in range(num_c):
        for i in range(num_f):
            if (i, j) in x_index:
                rows.append(row_count)
                cols.append(x_index[(i, j)])
                vals.append(-1.0)
        row_count += 1
    # Linking: x_ij − y_i ≤ 0.
    for (i, j), idx in x_index.items():
        rows.append(row_count)
        cols.append(idx)
        vals.append(1.0)
        rows.append(row_count)
        cols.append(y_index[i])
        vals.append(-1.0)
        row_count += 1

    a_ub = sparse.coo_matrix((vals, (rows, cols)), shape=(row_count, num_vars)).tocsr()
    b_ub = np.concatenate([-np.ones(num_c), np.zeros(len(pair_list))])

    result = linprog(
        c=cost,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP relaxation failed: {result.message}")

    y = np.zeros(num_f)
    for i, idx in y_index.items():
        y[i] = result.x[idx]
    x = np.zeros((num_f, num_c))
    for (i, j), idx in x_index.items():
        x[i, j] = result.x[idx]
    return LPResult(lower_bound=float(result.fun), y=y, x=x)


@traced_solver("lp_rounding")
def solve_lp_rounding(problem: UFLProblem) -> UFLSolution:
    """LP relaxation followed by deterministic clustering/rounding."""
    lp = solve_lp_relaxation(problem)
    num_c = problem.num_clients

    # Fractional connection cost per client (treat inf·0 as 0).
    connection = np.where(lp.x > _FRACTIONAL_TOL, problem.connection_costs, 0.0)
    fractional_cost = (connection * lp.x).sum(axis=0)
    neighbourhoods: List[Set[int]] = [
        set(np.flatnonzero(lp.x[:, j] > _FRACTIONAL_TOL).tolist()) for j in range(num_c)
    ]

    unclustered = set(range(num_c))
    open_set: Set[int] = set()
    for center in np.argsort(fractional_cost, kind="stable"):
        center = int(center)
        if center not in unclustered:
            continue
        neighbourhood = neighbourhoods[center]
        if not neighbourhood:
            continue
        cheapest = min(
            neighbourhood, key=lambda i: (problem.facility_costs[i], i)
        )
        open_set.add(int(cheapest))
        absorbed = {
            client
            for client in unclustered
            if neighbourhoods[client] & neighbourhood
        }
        unclustered -= absorbed
    if unclustered:
        # Numerically degenerate LP (all-zero rows); fall back to opening the
        # cheapest facility each straggler can reach.
        for client in sorted(unclustered):
            reachable = np.flatnonzero(
                np.isfinite(problem.connection_costs[:, client])
                & np.isfinite(problem.facility_costs)
            )
            if reachable.size == 0:
                raise ValueError("infeasible UFL instance")
            open_set.add(int(reachable[np.argmin(problem.facility_costs[reachable])]))

    return assign_to_open(problem, sorted(open_set))
