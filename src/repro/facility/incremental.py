"""Incremental / warm-started UFL solver for per-item replays.

The simulation solves one UFL instance per placed item, and consecutive
instances are nearly identical: the connection matrix (RDC, Eq. 2) only
changes at mobility epochs or churn events, while the facility costs
(FDC, Eq. 1) change at a handful of nodes — exactly the facilities the
previous solve opened.  :class:`IncrementalUFLSolver` exploits that
structure while staying **bit-identical** to the from-scratch greedy
(:func:`repro.facility.greedy.solve_greedy`), which is what lets a run
with ``placement_solver="incremental"`` produce the same chain and
ledger digests as a ``"greedy"`` run (proven by
``tests/property/test_fastpath_equivalence.py``).

Three reuse layers, all exact:

1. **Solution memo** — instances are fingerprinted (connection-matrix
   token + facility-cost bytes); an exact repeat (validators re-deriving
   a miner's placements, repeated steady states) returns the cached
   solution without solving at all.
2. **Sorted-row reuse** — while the connection matrix is unchanged, each
   facility's stable cost ordering, sorted finite costs, and their
   prefix sums are computed once instead of once per solve per round.
   The greedy's first round (``unassigned`` = all clients, the dominant
   cost) reduces to a cached ``(ratio, star)`` per facility.
3. **Warm candidate cache** — between solves, only facilities whose
   opening cost changed have their first-round candidate recomputed;
   untouched facilities reuse the previous candidate verbatim (the
   ratio depends only on the opening cost and the — unchanged — sorted
   connection row).

A **structural change** (connection matrix shape or contents changed:
mobility epoch, node offline/online, different cluster) drops every
cache and rebuilds it for the epoch that follows.  With the default
greedy base the rebuilt caches immediately serve the solve through the
same exact warm path (it is bit-identical from a cold cache too); a
``local_search`` base delegates fresh solves to
:func:`solve_local_search` instead.
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.facility.greedy import solve_greedy
from repro.facility.local_search import solve_local_search
from repro.facility.problem import UFLProblem, UFLSolution, assign_to_open
from repro.obs import runtime as _obs

#: Bound on memoised solutions; evicting only costs a re-solve.
_MEMO_LIMIT = 4096

#: Base solvers the incremental fast path can fall back to.
_BASE_SOLVERS = {
    "greedy": solve_greedy,
    "local_search": solve_local_search,
}


def _matrix_token(matrix: np.ndarray) -> bytes:
    """Cheap identity token for a float matrix (shape + content hash)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(matrix.shape).encode())
    digest.update(np.ascontiguousarray(matrix).tobytes())
    return digest.digest()


class IncrementalUFLSolver:
    """Warm-started greedy UFL, digest-identical to the base solver.

    One instance is shared by a whole cluster (the allocator owns it):
    every cached artefact is a pure function of the problem instance, so
    sharing across miner and validators only increases the hit rate —
    it can never make two nodes disagree.
    """

    def __init__(self, base: str = "greedy"):
        if base not in _BASE_SOLVERS:
            raise ValueError(f"unknown incremental base solver: {base}")
        self.base = base
        self._base_solve = _BASE_SOLVERS[base]
        # -- per-connection-matrix state (layer 2) -------------------------
        self._conn_token: Optional[bytes] = None
        self._conn: Optional[np.ndarray] = None
        self._orders: List[np.ndarray] = []  # stable cost order per facility
        self._sorted_costs: List[np.ndarray] = []  # finite costs, sorted
        self._prefix: List[np.ndarray] = []  # cumsum of sorted finite costs
        self._finite_counts: List[int] = []
        # -- warm first-round candidates (layer 3) -------------------------
        #: facility → (opening_cost, ratio, star_k) valid for the current
        #: connection matrix; ``None`` marks "no finite star".
        self._round1: Dict[int, Optional[Tuple[float, float, int]]] = {}
        self._last_facility_costs: Optional[np.ndarray] = None
        # -- exact-instance memo (layer 1) ---------------------------------
        self._memo: "OrderedDict[bytes, UFLSolution]" = OrderedDict()
        # -- statistics ----------------------------------------------------
        self.reuse_hits = 0  # memo hits + warm candidates reused
        self.fast_solves = 0  # solves served by the warm greedy path
        self.fallbacks = 0  # structural changes → cache rebuilds

    # ------------------------------------------------------------------ cache plumbing

    def _reset_epoch(self, problem: UFLProblem, token: bytes) -> None:
        """Rebuild the per-connection-matrix caches (structural change)."""
        self._conn_token = token
        self._conn = problem.connection_costs
        self._orders = []
        self._sorted_costs = []
        self._prefix = []
        self._finite_counts = []
        self._round1 = {}
        self._last_facility_costs = None
        self._memo.clear()
        for facility in range(problem.num_facilities):
            row = problem.connection_costs[facility]
            # Stable argsort of the full row: finite costs first in
            # (cost, client-id) order — the exact order the greedy's
            # filter-then-stable-argsort produces for a full client set.
            order = np.argsort(row, kind="stable")
            finite = int(np.isfinite(row).sum())
            sorted_costs = row[order[:finite]]
            self._orders.append(order)
            self._sorted_costs.append(sorted_costs)
            self._prefix.append(np.cumsum(sorted_costs))
            self._finite_counts.append(finite)

    def _memo_get(self, key: bytes) -> Optional[UFLSolution]:
        solution = self._memo.get(key)
        if solution is not None:
            self._memo.move_to_end(key)
        return solution

    def _memo_put(self, key: bytes, solution: UFLSolution) -> None:
        self._memo[key] = solution
        if len(self._memo) > _MEMO_LIMIT:
            self._memo.popitem(last=False)

    # ------------------------------------------------------------------ candidates

    def _first_round_candidate(
        self, facility: int, opening_cost: float
    ) -> Optional[Tuple[float, float, int]]:
        """The greedy's round-1 star for ``facility`` (all clients open).

        Returns ``(opening_cost, ratio, k)`` where the star is the first
        ``k + 1`` clients of the facility's sorted order, or ``None``
        when the row has no finite cost.  Bitwise identical to the ratio
        :func:`solve_greedy` computes: same sorted costs, same prefix
        sums, same element-wise arithmetic.
        """
        finite = self._finite_counts[facility]
        if finite == 0:
            return None
        prefix = self._prefix[facility]
        counts = np.arange(1, finite + 1)
        ratios = (opening_cost + prefix) / counts
        k = int(np.argmin(ratios))
        return (opening_cost, float(ratios[k]), k)

    def _refresh_round1(self, facility_costs: np.ndarray) -> None:
        """Recompute candidates only for facilities whose FDC changed."""
        previous = self._last_facility_costs
        for facility in range(facility_costs.shape[0]):
            cost = facility_costs[facility]
            if not math.isfinite(cost):
                self._round1[facility] = None
                continue
            cached = self._round1.get(facility)
            if (
                previous is not None
                and cached is not None
                and cached[0] == cost
            ):
                self.reuse_hits += 1
                if _obs.is_enabled():
                    _obs.add("facility.incremental_reuse")
                continue
            self._round1[facility] = self._first_round_candidate(
                facility, float(cost)
            )
        self._last_facility_costs = facility_costs.copy()

    # ------------------------------------------------------------------ solving

    def solve(self, problem: UFLProblem) -> UFLSolution:
        """Solve ``problem``; the result always equals the base solver's."""
        token = _matrix_token(problem.connection_costs)
        if token != self._conn_token:
            # Structural change: topology moved under us.  Rebuild the
            # per-matrix caches; with a greedy base the warm path is exact
            # from a cold cache too (the vectorised rounds mirror the
            # reference move for move), so only a non-greedy base needs
            # the from-scratch solver.
            self.fallbacks += 1
            if _obs.is_enabled():
                _obs.add("facility.incremental_fallback")
            self._reset_epoch(problem, token)
            if self.base == "greedy":
                solution = self._fast_greedy(problem)
                self.fast_solves += 1
            else:
                solution = self._base_solve(problem)
            self._memo_put(self._fingerprint(problem), solution)
            return solution

        key = self._fingerprint(problem)
        cached = self._memo_get(key)
        if cached is not None:
            self.reuse_hits += 1
            if _obs.is_enabled():
                _obs.add("facility.incremental_reuse")
            return cached

        if self.base != "greedy":
            # Local-search moves are not incrementally replayable; keep
            # the exact-instance memo but delegate fresh solves.
            solution = self._base_solve(problem)
        else:
            solution = self._fast_greedy(problem)
            self.fast_solves += 1
        self._memo_put(key, solution)
        return solution

    def _fingerprint(self, problem: UFLProblem) -> bytes:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self._conn_token or b"")
        digest.update(np.ascontiguousarray(problem.facility_costs).tobytes())
        return digest.digest()

    def _fast_greedy(self, problem: UFLProblem) -> UFLSolution:
        """The greedy of :func:`solve_greedy`, replayed over warm caches.

        The control flow, ratio arithmetic, and tie-breaking mirror the
        reference implementation move for move; only redundant work
        (re-sorting unchanged rows, recomputing unchanged round-1 stars)
        is skipped.
        """
        if not problem.is_feasible():
            raise ValueError(
                "infeasible UFL instance: a client has no reachable facility"
            )
        num_facilities = problem.num_facilities
        num_clients = problem.num_clients
        facility_costs = problem.facility_costs
        connection = problem.connection_costs
        self._refresh_round1(facility_costs)

        unassigned: Set[int] = set(range(num_clients))
        open_set: List[int] = []
        opened = np.zeros(num_facilities, dtype=bool)
        first_round = True

        while unassigned:
            best_ratio = math.inf
            best_choice: Optional[Tuple[int, List[int]]] = None
            if first_round:
                # Round 1: every client unassigned → the cached stars
                # are exactly what the reference greedy would derive.
                best_facility = -1
                best_k = -1
                for facility in range(num_facilities):
                    candidate = self._round1.get(facility)
                    if candidate is None:
                        continue
                    _, ratio, k = candidate
                    if ratio < best_ratio - 1e-12:
                        best_ratio = ratio
                        best_facility = facility
                        best_k = k
                if best_facility >= 0:
                    order = self._orders[best_facility]
                    star = [int(c) for c in order[: best_k + 1]]
                    best_choice = (best_facility, star)
            else:
                # Later rounds: one vectorised pass over ALL facilities.
                # Row f of ``sub`` is exactly the cost vector the reference
                # greedy builds for facility f; the row-wise stable argsort,
                # cumulative sums, and ratio divisions perform the identical
                # float operations, just batched — so every ratio (and the
                # first-minimum argmin) is bitwise what the reference sees.
                unassigned_list = sorted(unassigned)
                sub = connection[:, unassigned_list]
                order = np.argsort(sub, kind="stable", axis=1)
                sorted_costs = np.take_along_axis(sub, order, axis=1)
                finite_counts = np.isfinite(sub).sum(axis=1)
                opening = np.where(opened, 0.0, facility_costs)
                prefix = np.cumsum(sorted_costs, axis=1)
                counts = np.arange(1, len(unassigned_list) + 1)
                ratios = (opening[:, None] + prefix) / counts[None, :]
                k_per_facility = np.argmin(ratios, axis=1)
                for facility in range(num_facilities):
                    if not math.isfinite(opening[facility]):
                        continue
                    if finite_counts[facility] == 0:
                        continue
                    k = int(k_per_facility[facility])
                    ratio = float(ratios[facility, k])
                    if ratio < best_ratio - 1e-12:
                        best_ratio = ratio
                        star = [
                            unassigned_list[idx]
                            for idx in order[facility, : k + 1]
                        ]
                        best_choice = (facility, star)
            if best_choice is None:
                raise ValueError("greedy could not serve all clients (infeasible)")
            facility, star_clients = best_choice
            opened[facility] = True
            if facility not in open_set:
                open_set.append(facility)
            unassigned.difference_update(star_clients)
            first_round = False

        return assign_to_open(problem, open_set)
