"""Random-placement baseline ("random store", Fig. 5).

The paper compares its optimal placement against "a naive solution that
data are randomly stored.  For a fair comparison, the total number of data
and blocks stored is the same as the optimal placement" (Section VI-B).

:func:`solve_random` therefore takes the replica count chosen by the optimal
solver and opens that many facilities uniformly at random among nodes with
remaining capacity, then assigns each client to its nearest open replica.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.facility.problem import (
    UFLProblem,
    UFLSolution,
    assign_to_open,
    solution_cost_of_open_set,
)
from repro.obs.runtime import traced_solver

#: Attempts to find a random open set that leaves no client unreachable.
_MAX_RETRIES = 100


@traced_solver("random")
def solve_random(
    problem: UFLProblem,
    replica_count: int,
    rng: np.random.Generator,
) -> UFLSolution:
    """Open ``replica_count`` random openable facilities.

    Retries (bounded) until every client can reach the open set — mirrors a
    random store that still has to be *functional*.  Raises ``ValueError``
    when the instance cannot support the requested replica count.
    """
    if replica_count < 1:
        raise ValueError("replica count must be at least 1")
    openable = problem.openable_facilities()
    if openable.size < replica_count:
        raise ValueError(
            f"only {openable.size} facilities can be opened, "
            f"requested {replica_count}"
        )
    for _ in range(_MAX_RETRIES):
        chosen = rng.choice(openable, size=replica_count, replace=False)
        open_set = sorted(int(i) for i in chosen)
        if np.isfinite(solution_cost_of_open_set(problem, open_set)):
            return assign_to_open(problem, open_set)
    # A partitioned topology can make pure sampling hopeless (every open set
    # must span every network component).  Repair: sample once more, then add
    # the minimum extra facilities needed so each uncovered client can reach
    # one.  The replica count may exceed the request by the number of extra
    # components — the closest feasible analogue of "random with the same
    # replica count".
    chosen_set = {int(i) for i in rng.choice(openable, size=replica_count, replace=False)}
    while True:
        open_list = sorted(chosen_set)
        best = problem.connection_costs[open_list, :].min(axis=0)
        uncovered = np.flatnonzero(~np.isfinite(best))
        if uncovered.size == 0:
            return assign_to_open(problem, open_list)
        client = int(uncovered[0])
        covering = [
            int(i)
            for i in openable
            if np.isfinite(problem.connection_costs[i, client]) and int(i) not in chosen_set
        ]
        if not covering:
            raise ValueError(
                f"client {client} cannot reach any openable facility"
            )
        chosen_set.add(int(rng.choice(covering)))
