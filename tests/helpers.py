"""Shared builders for the test-suite: clusters, configs, seeded runs.

Integration tests used to copy-paste the same three blocks — a small
:class:`SystemConfig`, a ``build_cluster(...)`` call, and a seeded
``run_experiment(...)`` — with slightly different literals.  This module
is the single home for that boilerplate:

* :func:`make_config` — a quick-protocol-test config with overridable
  fields;
* :func:`make_cluster` — a wired cluster (PoS by default, PoW via
  ``consensus="pow"`` which also tunes difficulty to the node count);
* :func:`make_raft_cluster` — a Raft cluster over a connected geometric
  topology;
* :func:`fixed_seed_run` — a full seeded experiment, memoised per
  ``cache_scope`` so a module's tests can share one multi-second run the
  way module-scoped fixtures used to, without re-declaring the fixture
  everywhere.

The ``make_cluster`` / ``fixed_seed_run`` conftest fixtures re-export
these for tests that prefer fixture injection over imports.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.core.config import PAPER_CONFIG, SystemConfig
from repro.core.pow import pow_difficulty_for
from repro.raft.cluster import RaftCluster
from repro.sim.cluster import EdgeCluster, build_cluster
from repro.sim.runner import (
    ChurnSpec,
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
)
from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.topology import Topology, connected_random_positions
from repro.simnet.transport import Network

#: Hash rate matching the paper's handset (difficulty 4 at 25 s/block).
POW_TEST_HASH_RATE = 16**4 / 25.0


def make_config(**overrides) -> SystemConfig:
    """A small-scale config for quick protocol tests, field-overridable."""
    defaults = dict(
        storage_capacity=60,
        expected_block_interval=30.0,
        data_items_per_minute=2.0,
        recent_cache_capacity=5,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def make_pow_config(node_count: int, t0: float = 20.0, **overrides) -> SystemConfig:
    """The PoW-baseline config, difficulty tuned to the cluster size."""
    defaults = dict(
        consensus="pow",
        data_items_per_minute=0.0,
        expected_block_interval=t0,
        pow_hash_rate=POW_TEST_HASH_RATE,
        pow_difficulty=pow_difficulty_for(t0, node_count, POW_TEST_HASH_RATE),
    )
    defaults.update(overrides)
    return replace(PAPER_CONFIG, **defaults)


def make_cluster(
    node_count: int,
    *,
    seed: int = 0,
    config: Optional[SystemConfig] = None,
    consensus: str = "pos",
    t0: Optional[float] = None,
    start: bool = True,
    run_until: Optional[float] = None,
    with_energy_meters: bool = False,
    node_classes: Optional[Dict[int, type]] = None,
    **config_overrides,
) -> EdgeCluster:
    """Build (and by default start) a wired simulation cluster.

    ``config_overrides`` land on :func:`make_config` (PoS) or
    :func:`make_pow_config` (PoW); pass an explicit ``config`` to bypass
    both.  ``run_until`` additionally advances the engine that far.
    """
    if config is None:
        if consensus == "pow":
            config = make_pow_config(
                node_count, **({"t0": t0} if t0 is not None else {}), **config_overrides
            )
        else:
            config = make_config(**config_overrides)
    cluster = build_cluster(
        node_count,
        config,
        seed=seed,
        with_energy_meters=with_energy_meters,
        node_classes=node_classes,
    )
    if start:
        cluster.start()
    if run_until is not None:
        cluster.engine.run_until(run_until)
    return cluster


def make_raft_cluster(
    size: int = 5, seed: int = 0, **raft_kwargs
) -> Tuple[EventEngine, Network, RaftCluster]:
    """A Raft cluster over a connected geometric radio topology."""
    engine = EventEngine(seed=seed)
    positions = connected_random_positions(size, engine.np_rng)
    topology = Topology(positions)
    # Raft over multi-hop radio: give timeouts headroom over path latency.
    network = Network(engine, topology, ChannelModel(bandwidth=None))
    cluster = RaftCluster(list(range(size)), network, engine, **raft_kwargs)
    return engine, network, cluster


def digest_run(
    node_count: int = 8,
    seed: int = 5,
    duration_minutes: float = 5.0,
    *,
    timeline_interval: float = 30.0,
    mobility_epoch_minutes: float = 10.0,
    churn: Optional[ChurnSpec] = None,
    config: Optional[SystemConfig] = None,
    **config_overrides,
) -> Tuple[str, str, Optional[dict]]:
    """One seeded run's full fingerprint: chain digest, ledger digest, verdict.

    The differential fast-path harness runs the same scenario through two
    configurations (e.g. ``placement_solver="greedy"`` vs
    ``"incremental"``, ``batch_deliveries`` on vs off) and asserts the
    triples are equal — digest equality pins every block, placement, and
    balance; verdict equality pins the sampled protocol timeline the
    monitors watched.  Observability is enabled around the run (it is
    non-perturbing; the overhead guard proves that separately).
    """
    from repro import obs  # local import: obs state is process-global

    if config is None:
        config = make_config(**config_overrides)
    elif config_overrides:
        config = replace(config, **config_overrides)
    spec = ExperimentSpec(
        node_count=node_count,
        config=config,
        seed=seed,
        duration_minutes=duration_minutes,
        mobility_epoch_minutes=mobility_epoch_minutes,
        churn=churn,
    )
    session = obs.enable(timeline_interval=timeline_interval)
    try:
        result = run_experiment(spec)
        verdict = session.monitors.verdict() if session.monitors is not None else None
    finally:
        obs.disable()
    chain = result.cluster.longest_chain_node().chain
    return chain.chain_digest(), chain.state.ledger_digest(), verdict


#: Memoised seeded runs, keyed by (cache scope, full spec).
_RUN_CACHE: Dict[tuple, ExperimentResult] = {}


def fixed_seed_run(
    node_count: int = 10,
    seed: int = 21,
    duration_minutes: float = 20.0,
    *,
    mobility_epoch_minutes: float = 10.0,
    churn: Optional[ChurnSpec] = None,
    config: Optional[SystemConfig] = None,
    cache_scope: Optional[str] = None,
    **config_overrides,
) -> ExperimentResult:
    """Run one seeded end-to-end experiment (deterministic given the args).

    With ``cache_scope`` set (the conftest fixture passes the requesting
    test module's name), identical invocations share one result — the
    replacement for per-module session fixtures around multi-second runs.
    Tests sharing a cached run must treat the cluster the way they treated
    a module-scoped fixture: advancing its engine is visible to the
    module's other tests.
    """
    if config is None:
        config = make_config(**config_overrides)
    elif config_overrides:
        config = replace(config, **config_overrides)
    spec = ExperimentSpec(
        node_count=node_count,
        config=config,
        seed=seed,
        duration_minutes=duration_minutes,
        mobility_epoch_minutes=mobility_epoch_minutes,
        churn=churn,
    )
    if cache_scope is None:
        return run_experiment(spec)
    key = (cache_scope, spec.node_count, spec.seed, spec.duration_minutes,
           spec.mobility_epoch_minutes, spec.churn, spec.config)
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = run_experiment(spec)
    return _RUN_CACHE[key]
