"""Unit tests for the channel model."""

import numpy as np
import pytest

from repro.simnet.channel import DEFAULT_HOP_DELAY, ChannelModel


class TestChannelModel:
    def test_default_hop_delay_is_papers_10ms(self):
        assert DEFAULT_HOP_DELAY == 0.010

    def test_hop_latency_includes_serialisation(self):
        channel = ChannelModel(hop_delay=0.010, bandwidth=1_000_000)
        assert channel.hop_latency(1_000_000) == pytest.approx(1.010)

    def test_hop_latency_pure_propagation(self):
        channel = ChannelModel(hop_delay=0.010, bandwidth=None)
        assert channel.hop_latency(10**9) == 0.010

    def test_path_latency_scales_with_hops(self):
        channel = ChannelModel(hop_delay=0.010, bandwidth=None)
        assert channel.path_latency(100, 5) == pytest.approx(0.050)

    def test_zero_hops_zero_latency(self):
        assert ChannelModel().path_latency(1000, 0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ChannelModel().hop_latency(-1)

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            ChannelModel().path_latency(10, -1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ChannelModel(hop_delay=-0.1)
        with pytest.raises(ValueError):
            ChannelModel(bandwidth=0)
        with pytest.raises(ValueError):
            ChannelModel(loss_probability=1.0)
        with pytest.raises(ValueError):
            ChannelModel(loss_probability=-0.1)

    def test_lossless_always_survives(self, rng):
        channel = ChannelModel(loss_probability=0.0)
        assert all(channel.survives(10, rng) for _ in range(100))

    def test_zero_hops_always_survives(self, rng):
        channel = ChannelModel(loss_probability=0.9)
        assert channel.survives(0, rng)

    def test_lossy_channel_loses_sometimes(self, rng):
        channel = ChannelModel(loss_probability=0.5)
        outcomes = [channel.survives(1, rng) for _ in range(500)]
        survived = sum(outcomes)
        # ~50 % survival with generous tolerance.
        assert 150 < survived < 350

    def test_loss_compounds_with_hops(self):
        channel = ChannelModel(loss_probability=0.3)
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        one_hop = sum(channel.survives(1, rng_a) for _ in range(2000))
        three_hop = sum(channel.survives(3, rng_b) for _ in range(2000))
        assert three_hop < one_hop
