"""Unit tests for the EdgeNode protocol participant."""

import pytest

from repro.core.config import SystemConfig
from repro.sim.cluster import build_cluster


@pytest.fixture
def world(fast_config):
    cluster = build_cluster(5, fast_config, seed=11)
    return cluster


def run_blocks(cluster, count):
    """Advance the simulation until the longest chain reaches ``count``."""
    config = cluster.config
    deadline = cluster.engine.now + count * config.expected_block_interval * 20
    while cluster.engine.now < deadline:
        cluster.engine.run_until(
            min(cluster.engine.now + config.expected_block_interval, deadline)
        )
        if cluster.longest_chain_node().chain.height >= count:
            return
    raise AssertionError(f"chain did not reach height {count}")


class TestMining:
    def test_nodes_mine_blocks(self, world):
        world.start()
        run_blocks(world, 3)
        assert world.longest_chain_node().chain.height >= 3

    def test_all_nodes_converge(self, world):
        world.start()
        run_blocks(world, 3)
        world.engine.run_until(world.engine.now + 5.0)
        tips = {node.chain.tip.current_hash for node in world.nodes.values()}
        assert len(tips) == 1

    def test_mined_blocks_carry_valid_pos_claims(self, world):
        world.start()
        run_blocks(world, 3)
        chain = world.longest_chain_node().chain
        # Reconstruct an independent chain and replay: validation passes.
        from repro.core.blockchain import Blockchain

        replica = Blockchain(
            list(world.nodes.keys()), world.config, chain.address_of,
            genesis=chain.blocks[0],
        )
        for block in chain.blocks[1:]:
            replica.append_block(block)
        assert replica.height == chain.height

    def test_miner_counter_increments(self, world):
        world.start()
        run_blocks(world, 4)
        total_mined = sum(n.counters.blocks_mined for n in world.nodes.values())
        assert total_mined >= 4

    def test_every_node_keeps_last_block(self, world):
        world.start()
        run_blocks(world, 2)
        world.engine.run_until(world.engine.now + 5.0)
        for node in world.nodes.values():
            assert node.storage.last_block is not None
            assert node.storage.last_block.index == node.chain.height


class TestDataFlow:
    def test_produce_broadcasts_metadata(self, world):
        world.start()
        producer = world.nodes[0]
        item = producer.produce_data(data_type="Test/Type")
        world.engine.run_until(world.engine.now + 1.0)
        for node_id, node in world.nodes.items():
            if node_id != 0:
                assert item.data_id in node.mempool

    def test_metadata_packed_into_block(self, world):
        world.start()
        item = world.nodes[0].produce_data()
        run_blocks(world, 2)
        world.engine.run_until(world.engine.now + 5.0)
        chain = world.longest_chain_node().chain
        packed = chain.metadata_of(item.data_id)
        assert packed is not None
        assert packed.storing_nodes  # the miner filled in the placement

    def test_storing_nodes_fetch_payload(self, world):
        world.start()
        item = world.nodes[0].produce_data()
        run_blocks(world, 2)
        world.engine.run_until(world.engine.now + 10.0)
        chain = world.longest_chain_node().chain
        packed = chain.metadata_of(item.data_id)
        served = sum(
            1
            for node_id in packed.storing_nodes
            if world.nodes[node_id].storage.can_serve(item.data_id)
        )
        assert served == len(packed.storing_nodes)

    def test_request_data_delivers(self, world):
        world.start()
        item = world.nodes[0].produce_data()
        run_blocks(world, 2)
        world.engine.run_until(world.engine.now + 10.0)
        requester = world.nodes[4]
        before = len(requester.delivery_times)
        requester.request_data(item.data_id)
        world.engine.run_until(world.engine.now + 10.0)
        assert len(requester.delivery_times) == before + 1
        assert requester.counters.data_requests_failed == 0

    def test_request_unknown_data_fails_fast(self, world):
        world.start()
        requester = world.nodes[1]
        assert requester.request_data("no-such-id") is None
        assert requester.counters.data_requests_failed == 1

    def test_local_request_served_instantly(self, world):
        world.start()
        producer = world.nodes[0]
        item = producer.produce_data()
        run_blocks(world, 2)
        world.engine.run_until(world.engine.now + 5.0)
        producer.request_data(item.data_id)
        assert producer.delivery_times[-1] == 0.0

    def test_expired_metadata_never_packed(self, world):
        world.start()
        item = world.nodes[0].produce_data(valid_time_minutes=0.001)
        run_blocks(world, 2)
        world.engine.run_until(world.engine.now + 5.0)
        # Expired 0.06 s after creation: no miner may pack it, and every
        # node prunes it from the mempool at the next tip change.
        chain = world.longest_chain_node().chain
        assert chain.metadata_of(item.data_id) is None
        for node in world.nodes.values():
            assert item.data_id not in node.mempool


class TestOfflineBehaviour:
    def test_offline_node_does_not_mine(self, world):
        world.start()
        world.network.set_online(3, False)
        run_blocks(world, 3)
        assert world.nodes[3].counters.blocks_mined == 0

    def test_reconnected_node_catches_up(self, world):
        world.start()
        run_blocks(world, 1)
        world.network.set_online(3, False)
        run_blocks(world, 4)
        world.network.set_online(3, True)
        world.nodes[3].on_reconnect()
        # The next block broadcast triggers gap recovery.
        target = world.longest_chain_node().chain.height
        world.engine.run_until(
            world.engine.now + world.config.expected_block_interval * 12
        )
        assert world.nodes[3].chain.height >= target

    def test_recovery_duration_recorded(self, world):
        world.start()
        run_blocks(world, 1)
        world.network.set_online(3, False)
        run_blocks(world, 4)
        world.network.set_online(3, True)
        world.nodes[3].on_reconnect()
        world.engine.run_until(
            world.engine.now + world.config.expected_block_interval * 12
        )
        assert world.nodes[3].counters.recoveries_completed >= 1
        assert world.nodes[3].sync.completed_durations
