"""Streaming telemetry ring + Prometheus exposition endpoint."""

import json
import urllib.request

import pytest

from repro.obs.live.expo import TelemetryServer, render_prometheus
from repro.obs.live.stream import (
    STREAM_NAME,
    STREAM_SCHEMA,
    TelemetryStream,
    read_stream,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitors import MonitorEvent
from repro.obs.runtime import ObsSession

pytestmark = pytest.mark.obs


class FakeMonitors:
    def __init__(self):
        self.events = []


def sample_at(t, **extra):
    return {"t": t, "height": int(t // 20), "queue_depth": 1, **extra}


class TestTelemetryStream:
    def test_header_then_sample_records(self, tmp_path):
        stream = TelemetryStream(tmp_path)
        stream.on_sample(sample_at(20.0))
        stream.close()

        records = read_stream(tmp_path)
        assert records[0]["kind"] == "header"
        assert records[0]["schema"] == STREAM_SCHEMA
        assert records[0]["node"] == "n0"
        assert records[1]["kind"] == "sample"
        assert records[1]["t"] == 20.0

    def test_counter_records_are_deltas(self, tmp_path):
        registry = MetricsRegistry()
        stream = TelemetryStream(tmp_path, node="n4")
        registry.counter("net.messages_sent").inc(3)
        stream.on_sample(sample_at(20.0), metrics=registry)
        # Unchanged counters produce no second counters record.
        stream.on_sample(sample_at(40.0), metrics=registry)
        registry.counter("net.messages_sent").inc(2)
        stream.on_sample(sample_at(60.0), metrics=registry)
        stream.close()

        counters = [r for r in read_stream(tmp_path) if r["kind"] == "counters"]
        assert [c["values"]["net.messages_sent"] for c in counters] == [3, 5]
        assert [c["t"] for c in counters] == [20.0, 60.0]

    def test_monitor_events_flush_once(self, tmp_path):
        monitors = FakeMonitors()
        stream = TelemetryStream(tmp_path)
        monitors.events.append(
            MonitorEvent(time=20.0, monitor="chain-stall", severity="warning",
                         message="no block for 3 intervals")
        )
        stream.on_sample(sample_at(20.0), monitors=monitors)
        stream.on_sample(sample_at(40.0), monitors=monitors)  # no new events
        stream.close()

        events = [r for r in read_stream(tmp_path) if r["kind"] == "event"]
        assert len(events) == 1
        assert events[0]["monitor"] == "chain-stall"

    def test_non_finite_sample_values_become_null(self, tmp_path):
        stream = TelemetryStream(tmp_path)
        stream.on_sample(sample_at(20.0, interval_ewma=float("nan")))
        stream.close()
        text = (tmp_path / STREAM_NAME).read_text(encoding="utf-8")
        assert "NaN" not in text
        sample = [r for r in read_stream(tmp_path) if r["kind"] == "sample"][0]
        assert sample["interval_ewma"] is None

    def test_rotation_keeps_a_bounded_two_segment_window(self, tmp_path):
        stream = TelemetryStream(tmp_path, max_bytes=2048)
        for i in range(200):
            stream.on_sample(sample_at(20.0 * i))
        stream.close()

        main = tmp_path / STREAM_NAME
        rotated = main.with_suffix(main.suffix + ".1")
        assert rotated.exists()
        assert main.stat().st_size <= 2048 + 512
        assert stream.rotations >= 1
        # Reader sees the rotated segment first, strictly ordered.
        ts = [r["t"] for r in read_stream(tmp_path) if r["kind"] == "sample"]
        assert ts == sorted(ts)
        # Rotated headers carry the rotation count.
        headers = [r for r in read_stream(tmp_path) if r["kind"] == "header"]
        assert headers[-1]["rotated"] == stream.rotations

    def test_torn_tail_is_tolerated(self, tmp_path):
        stream = TelemetryStream(tmp_path)
        stream.on_sample(sample_at(20.0))
        stream.close()
        with (tmp_path / STREAM_NAME).open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "sample", "t": 40')  # killed mid-append
        ts = [r["t"] for r in read_stream(tmp_path) if r["kind"] == "sample"]
        assert ts == [20.0]

    def test_tiny_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryStream(tmp_path, max_bytes=16)


class TestPrometheusRendering:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("net.messages_sent").inc(7)
        registry.gauge("raft.term").set(3)
        registry.histogram("facility.solve_cost").record(2.0)
        registry.histogram("facility.solve_cost").record(4.0)
        text = render_prometheus(registry.snapshot())

        assert "# TYPE repro_net_messages_sent counter" in text
        assert "repro_net_messages_sent 7" in text
        assert "# TYPE repro_raft_term gauge" in text
        assert "repro_raft_term 3" in text
        assert "# TYPE repro_facility_solve_cost summary" in text
        assert "repro_facility_solve_cost_count 2" in text
        assert "repro_facility_solve_cost_sum 6.0" in text

    def test_extra_gauges_appended_and_none_skipped(self):
        text = render_prometheus(
            {"instruments": {}},
            extra={"timeline.height": 11, "timeline.mempool_depth": None},
        )
        assert "repro_timeline_height 11" in text
        assert "mempool" not in text


class TestTelemetryServer:
    @pytest.fixture()
    def session(self):
        session = ObsSession(timeline_interval=20.0, origin="n6")
        session.metrics.counter("net.messages_sent").inc(9)
        session.timeline.samples.append(
            sample_at(40.0, interval_ewma=float("nan"))
        )
        return session

    def test_metrics_and_snapshot_endpoints(self, session):
        server = TelemetryServer(session, port=0)
        port = server.start()
        try:
            url = f"http://127.0.0.1:{port}"
            with urllib.request.urlopen(f"{url}/metrics", timeout=10) as response:
                assert response.status == 200
                assert "text/plain" in response.headers["Content-Type"]
                text = response.read().decode("utf-8")
            assert "repro_net_messages_sent 9" in text
            assert "repro_timeline_height 2" in text  # from the sample
            with urllib.request.urlopen(f"{url}/snapshot", timeout=10) as response:
                payload = json.loads(response.read().decode("utf-8"))
            assert payload["node"] == "n6"
            assert payload["sample"]["t"] == 40.0
            assert payload["sample"]["interval_ewma"] is None  # NaN scrubbed
            assert payload["counters"]["net.messages_sent"] == 9
            assert payload["spans_dropped"] == 0
        finally:
            server.stop()

    def test_unknown_path_is_404(self, session):
        server = TelemetryServer(session, port=0)
        port = server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/nope", timeout=10
                )
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_session_start_helpers_wire_the_plane(self, tmp_path):
        session = ObsSession(timeline_interval=20.0, origin="n1")
        session.start_stream(tmp_path)
        port = session.start_telemetry()
        assert port > 0
        assert session.server.url.endswith(str(port))
        session.export(tmp_path)
        # export() tears the live plane down.
        assert session.server is None
        assert session.stream is None
        assert (tmp_path / STREAM_NAME).exists()
