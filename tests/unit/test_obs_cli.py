"""The CLI observability surface: `--obs` on run/resume, report, trace verbs."""

import json

import pytest

from repro.cli import main
from repro.obs.export import read_trace_events
from repro.obs.monitors import VERDICT_NAME, read_verdict
from repro.obs.runtime import METRICS_NAME, TRACE_NAME
from repro.obs.timeline import TIMELINE_NAME, read_timeline

pytestmark = pytest.mark.obs

RUN_ARGS = [
    "run", "--nodes", "6", "--minutes", "3", "--seed", "11",
    "--rate", "1.0", "--block-interval", "20",
]


@pytest.fixture(scope="module")
def obs_dir(tmp_path_factory):
    """One CLI run with --obs, shared by the verb tests below."""
    target = tmp_path_factory.mktemp("obs-run")
    assert main(RUN_ARGS + ["--obs", str(target)]) == 0
    return target


class TestRunWithObs:
    def test_emits_trace_and_metrics(self, obs_dir):
        trace_path = obs_dir / TRACE_NAME
        metrics_path = obs_dir / METRICS_NAME
        assert trace_path.exists() and metrics_path.exists()

        events = read_trace_events(trace_path)
        complete = [e for e in events if e.get("ph") == "X"]
        assert len(complete) > 100
        assert {"engine", "facility", "run"} <= {e["cat"] for e in complete}

        metrics = json.loads(metrics_path.read_text())
        assert metrics["schema"] == "repro.obs.metrics/v1"
        names = set(metrics["instruments"])
        assert "engine.events" in names
        assert any(n.startswith("pos.") for n in names)
        assert any(n.startswith("facility.") for n in names)

    def test_obs_flag_leaves_metrics_record_unchanged(self, tmp_path):
        plain = tmp_path / "plain.json"
        observed = tmp_path / "observed.json"
        assert main(RUN_ARGS + ["--json", str(plain)]) == 0
        assert main(
            RUN_ARGS + ["--json", str(observed), "--obs", str(tmp_path / "obs")]
        ) == 0
        assert json.loads(plain.read_text()) == json.loads(observed.read_text())


class TestRunTimelineArtefacts:
    def test_obs_run_writes_timeline_and_verdict(self, obs_dir):
        header, samples = read_timeline(obs_dir / TIMELINE_NAME)
        assert header["schema"] == "repro.obs.timeline/v1"
        assert header["interval"] == 20.0  # defaults to --block-interval
        assert len(samples) > 5
        assert samples[-1]["height"] >= 1
        verdict = read_verdict(obs_dir / VERDICT_NAME)
        assert verdict["schema"] == "repro.obs.verdict/v1"
        assert verdict["status"] in ("healthy", "warning", "critical")

    def test_obs_sample_overrides_the_cadence(self, obs_dir, tmp_path):
        target = tmp_path / "fast"
        assert main(RUN_ARGS + ["--obs", str(target), "--obs-sample", "5"]) == 0
        header, samples = read_timeline(target / TIMELINE_NAME)
        assert header["interval"] == 5.0
        # Ticks ride on engine events, so a finer grid can't beat the
        # event density — but it must sample at least as often as the
        # default 20 s cadence did.
        _, default_samples = read_timeline(obs_dir / TIMELINE_NAME)
        assert len(samples) >= len(default_samples)


class TestResumeWithObs:
    def test_resumed_segment_exports_timeline_and_verdict(self, tmp_path):
        run_dir = tmp_path / "durable"
        obs_dir = tmp_path / "obs"
        # First leg: plain durable run, paused partway.
        assert main(
            RUN_ARGS + ["--persist", str(run_dir), "--stop-after", "90"]
        ) == 0
        # Second leg: resume under observation.
        assert main([
            "resume", str(run_dir),
            "--obs", str(obs_dir),
            "--obs-timebase", "sim",
            "--obs-sample", "10",
        ]) == 0

        assert (obs_dir / TRACE_NAME).exists()
        header, samples = read_timeline(obs_dir / TIMELINE_NAME)
        assert header["interval"] == 10.0
        # Sampling covers only the resumed segment (t > 90 s).
        assert samples and all(s["t"] > 90.0 for s in samples)
        verdict = read_verdict(obs_dir / VERDICT_NAME)
        assert verdict["status"] in ("healthy", "warning", "critical")

    def test_resume_without_obs_stays_dark(self, tmp_path):
        run_dir = tmp_path / "durable"
        assert main(
            RUN_ARGS + ["--persist", str(run_dir), "--stop-after", "90"]
        ) == 0
        assert main(["resume", str(run_dir)]) == 0
        assert not list(tmp_path.glob("**/timeline.jsonl"))


class TestReportVerb:
    def test_report_renders_and_writes_html(self, obs_dir, capsys):
        assert main(["report", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out
        assert "chain height" in out
        html_path = obs_dir / "report.html"
        assert html_path.exists()
        assert html_path.read_text().startswith("<!DOCTYPE html>")

    def test_no_html_skips_the_file(self, obs_dir, tmp_path, capsys):
        custom = tmp_path / "custom.html"
        assert main(["report", str(obs_dir), "--html", str(custom)]) == 0
        assert custom.exists()
        assert main(["report", str(obs_dir), "--no-html"]) == 0
        assert "wrote" not in capsys.readouterr().out.splitlines()[-1]

    def test_missing_directory_exits_two(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "not found" in capsys.readouterr().err


class TestTraceVerbs:
    def test_summary_prints_span_and_counter_tables(self, obs_dir, capsys):
        assert main(["trace", "summary", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "engine.event" in out
        assert "engine.events" in out  # the counters table

    def test_export_writes_strict_json_array(self, obs_dir, tmp_path):
        out = tmp_path / "strict.json"
        assert main(["trace", "export", str(obs_dir), "--out", str(out)]) == 0
        events = json.loads(out.read_text())
        assert isinstance(events, list)
        assert any(e.get("ph") == "X" for e in events)

    def test_merge_adds_metrics_across_runs(self, obs_dir, tmp_path):
        out = tmp_path / "merged.json"
        assert main([
            "trace", "merge", str(obs_dir), str(obs_dir), "--out", str(out),
        ]) == 0
        merged = json.loads(out.read_text())
        single = json.loads((obs_dir / METRICS_NAME).read_text())
        assert (
            merged["instruments"]["engine.events"]["value"]
            == 2 * single["instruments"]["engine.events"]["value"]
        )
