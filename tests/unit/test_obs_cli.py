"""The `repro run --obs` flag and the `repro trace` verbs, end to end."""

import json

import pytest

from repro.cli import main
from repro.obs.export import read_trace_events
from repro.obs.runtime import METRICS_NAME, TRACE_NAME

pytestmark = pytest.mark.obs

RUN_ARGS = [
    "run", "--nodes", "6", "--minutes", "3", "--seed", "11",
    "--rate", "1.0", "--block-interval", "20",
]


@pytest.fixture(scope="module")
def obs_dir(tmp_path_factory):
    """One CLI run with --obs, shared by the verb tests below."""
    target = tmp_path_factory.mktemp("obs-run")
    assert main(RUN_ARGS + ["--obs", str(target)]) == 0
    return target


class TestRunWithObs:
    def test_emits_trace_and_metrics(self, obs_dir):
        trace_path = obs_dir / TRACE_NAME
        metrics_path = obs_dir / METRICS_NAME
        assert trace_path.exists() and metrics_path.exists()

        events = read_trace_events(trace_path)
        complete = [e for e in events if e.get("ph") == "X"]
        assert len(complete) > 100
        assert {"engine", "facility", "run"} <= {e["cat"] for e in complete}

        metrics = json.loads(metrics_path.read_text())
        assert metrics["schema"] == "repro.obs.metrics/v1"
        names = set(metrics["instruments"])
        assert "engine.events" in names
        assert any(n.startswith("pos.") for n in names)
        assert any(n.startswith("facility.") for n in names)

    def test_obs_flag_leaves_metrics_record_unchanged(self, tmp_path):
        plain = tmp_path / "plain.json"
        observed = tmp_path / "observed.json"
        assert main(RUN_ARGS + ["--json", str(plain)]) == 0
        assert main(
            RUN_ARGS + ["--json", str(observed), "--obs", str(tmp_path / "obs")]
        ) == 0
        assert json.loads(plain.read_text()) == json.loads(observed.read_text())


class TestTraceVerbs:
    def test_summary_prints_span_and_counter_tables(self, obs_dir, capsys):
        assert main(["trace", "summary", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "engine.event" in out
        assert "engine.events" in out  # the counters table

    def test_export_writes_strict_json_array(self, obs_dir, tmp_path):
        out = tmp_path / "strict.json"
        assert main(["trace", "export", str(obs_dir), "--out", str(out)]) == 0
        events = json.loads(out.read_text())
        assert isinstance(events, list)
        assert any(e.get("ph") == "X" for e in events)

    def test_merge_adds_metrics_across_runs(self, obs_dir, tmp_path):
        out = tmp_path / "merged.json"
        assert main([
            "trace", "merge", str(obs_dir), str(obs_dir), "--out", str(out),
        ]) == 0
        merged = json.loads(out.read_text())
        single = json.loads((obs_dir / METRICS_NAME).read_text())
        assert (
            merged["instruments"]["engine.events"]["value"]
            == 2 * single["instruments"]["engine.events"]["value"]
        )
