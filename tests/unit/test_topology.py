"""Unit tests for the geometric topology."""

import numpy as np
import pytest

from repro.simnet.topology import (
    UNREACHABLE,
    Position,
    Topology,
    connected_random_positions,
    random_positions,
)


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0

    def test_distance_symmetric(self):
        a, b = Position(1, 2), Position(7, -3)
        assert a.distance_to(b) == b.distance_to(a)

    def test_distance_to_self(self):
        p = Position(5, 5)
        assert p.distance_to(p) == 0.0


class TestSampling:
    def test_random_positions_in_field(self, rng):
        for p in random_positions(100, rng, field_size=300.0):
            assert 0 <= p.x <= 300 and 0 <= p.y <= 300

    def test_random_positions_count(self, rng):
        assert len(random_positions(17, rng)) == 17

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            random_positions(-1, rng)

    @pytest.mark.parametrize("count", [2, 5, 10, 30, 50])
    def test_connected_sampling_is_connected(self, rng, count):
        positions = connected_random_positions(count, rng)
        assert Topology(positions).is_connected()

    def test_connected_sampling_deterministic(self):
        a = connected_random_positions(10, np.random.default_rng(3))
        b = connected_random_positions(10, np.random.default_rng(3))
        assert a == b


class TestTopology:
    def test_line_hops(self, line_topology):
        assert line_topology.hop_count(0, 4) == 4
        assert line_topology.hop_count(0, 1) == 1
        assert line_topology.hop_count(2, 2) == 0

    def test_hop_symmetry(self, line_topology):
        assert line_topology.hop_count(0, 3) == line_topology.hop_count(3, 0)

    def test_neighbors_sorted(self, line_topology):
        assert line_topology.neighbors(2) == [1, 3]

    def test_hop_matrix_matches_hop_count(self, small_topology):
        matrix = small_topology.hop_matrix()
        for i in range(small_topology.node_count):
            for j in range(small_topology.node_count):
                assert matrix[i, j] == small_topology.hop_count(i, j)

    def test_hop_matrix_diagonal_zero(self, small_topology):
        assert (np.diag(small_topology.hop_matrix()) == 0).all()

    def test_shortest_path_endpoints(self, line_topology):
        path = line_topology.shortest_path(0, 4)
        assert path[0] == 0 and path[-1] == 4
        assert len(path) == 5

    def test_shortest_path_unreachable(self):
        topo = Topology([Position(0, 0), Position(500, 500)], comm_range=70)
        assert topo.shortest_path(0, 1) is None
        assert topo.hop_count(0, 1) == UNREACHABLE

    def test_remove_node_disconnects(self, line_topology):
        line_topology.remove_node(2)
        assert line_topology.hop_count(0, 4) == UNREACHABLE
        assert line_topology.hop_count(0, 1) == 1

    def test_restore_node_reconnects(self, line_topology):
        line_topology.remove_node(2)
        line_topology.restore_node(2)
        assert line_topology.hop_count(0, 4) == 4

    def test_remove_unknown_node(self, line_topology):
        with pytest.raises(KeyError):
            line_topology.remove_node(99)

    def test_update_positions_invalidates_hops(self, line_topology):
        assert line_topology.hop_count(0, 4) == 4
        # Move node 4 next to node 0.
        new_positions = line_topology.positions
        new_positions[4] = Position(10.0, 0.0)
        line_topology.update_positions(new_positions)
        assert line_topology.hop_count(0, 4) == 1

    def test_update_positions_wrong_count(self, line_topology):
        with pytest.raises(ValueError):
            line_topology.update_positions([Position(0, 0)])

    def test_bfs_tree_depths_match_hops(self, small_topology):
        parents = small_topology.bfs_tree(0)
        for node in parents:
            depth = 0
            cursor = node
            while parents[cursor] != cursor:
                cursor = parents[cursor]
                depth += 1
            assert depth == small_topology.hop_count(0, node)

    def test_bfs_tree_covers_component(self, small_topology):
        parents = small_topology.bfs_tree(0)
        assert set(parents) == set(small_topology.reachable_from(0))

    def test_components_partition_nodes(self):
        topo = Topology(
            [Position(0, 0), Position(50, 0), Position(500, 500)], comm_range=70
        )
        comps = topo.components()
        assert comps == [[0, 1], [2]]

    def test_is_connected_subset(self, line_topology):
        assert line_topology.is_connected_subset([0, 1, 2])
        assert not line_topology.is_connected_subset([0, 2])
        assert line_topology.is_connected_subset([3])
        assert line_topology.is_connected_subset([])

    def test_euclidean_distance(self, line_topology):
        assert line_topology.euclidean_distance(0, 2) == pytest.approx(100.0)

    def test_invalid_comm_range(self):
        with pytest.raises(ValueError):
            Topology([Position(0, 0)], comm_range=0)
