"""Unit tests for the chain lifecycle subsystem: horizon math, checkpoint
records, in-memory pruning, anchored adoption, and the cold archive."""

import dataclasses

import pytest

from repro.core.account import Account
from repro.core.block import Block
from repro.core.blockchain import Blockchain, BlockOutcome
from repro.core.config import LifecycleSpec, SystemConfig
from repro.core.errors import (
    CheckpointError,
    PersistError,
    PrunedBlockError,
    ValidationError,
)
from repro.core.pos import compute_hit, compute_pos_hash, mining_delay
from repro.lifecycle import (
    ARCHIVE_NAME,
    BlockArchive,
    CheckpointRecord,
    hot_bound_blocks,
    lifecycle_enabled,
    retention_horizon,
)
from repro.lifecycle.spec import checkpoint_lag, last_checkpoint_for

pytestmark = pytest.mark.lifecycle

NODES = 3
SEED = 55


def make_world(interval=4, lag=0, retain=8, lifecycle=True):
    config = SystemConfig(
        expected_block_interval=10.0,
        checkpoint_interval=interval,
        checkpoint_lag=lag,
        lifecycle=LifecycleSpec(retain_blocks=retain) if lifecycle else None,
    )
    accounts = {i: Account.for_node(SEED, i) for i in range(NODES)}
    address_of = {i: a.address for i, a in accounts.items()}
    chain = Blockchain(list(range(NODES)), config, address_of)
    return config, accounts, chain


def mine(chain, accounts, miner):
    parent = chain.tip
    address = accounts[miner].address
    state = chain.state
    hit = compute_hit(parent.pos_hash, address, chain.config.hit_modulus)
    amendment = state.amendment(parent.timestamp)
    delay = mining_delay(
        hit,
        state.tokens(miner),
        state.stored_items(miner, parent.timestamp),
        amendment,
    )
    return Block(
        index=parent.index + 1,
        timestamp=parent.timestamp + delay,
        previous_hash=parent.current_hash,
        pos_hash=compute_pos_hash(parent.pos_hash, address),
        miner=miner,
        miner_address=address,
        hit=hit,
        target_b=amendment,
        storing_nodes=(miner,),
        previous_storing_nodes=tuple(state.block_storing.get(parent.index, ())),
    )


def grow(chain, accounts, count):
    for step in range(count):
        chain.append_block(mine(chain, accounts, step % NODES))


class TestSpecMath:
    def test_enabled_requires_spec(self):
        config, _, _ = make_world(lifecycle=False)
        assert not lifecycle_enabled(config)
        config, _, _ = make_world()
        assert lifecycle_enabled(config)

    def test_spec_requires_checkpoint_schedule(self):
        with pytest.raises(ValueError):
            SystemConfig(
                checkpoint_interval=0, lifecycle=LifecycleSpec(retain_blocks=4)
            )
        with pytest.raises(ValueError):
            LifecycleSpec(retain_blocks=0)

    def test_last_checkpoint_matches_live_chain(self):
        config, accounts, chain = make_world(interval=4, lag=3)
        for _ in range(20):
            chain.append_block(mine(chain, accounts, chain.height % NODES))
            assert last_checkpoint_for(config, chain.height) == chain.last_checkpoint()

    def test_horizon_is_checkpoint_aligned_and_clamped(self):
        config, _, _ = make_world(interval=4, lag=0, retain=8)
        assert retention_horizon(config, 5) == 0
        for height in range(0, 60):
            horizon = retention_horizon(config, height)
            assert horizon % 4 == 0
            assert horizon <= last_checkpoint_for(config, height)
            if horizon:
                assert height - horizon >= 8  # retention window honoured
        assert retention_horizon(config, 20) == 12

    def test_horizon_zero_without_lifecycle(self):
        config, _, _ = make_world(lifecycle=False)
        assert retention_horizon(config, 100) == 0
        assert hot_bound_blocks(config) is None

    def test_hot_bound_formula(self):
        config, _, _ = make_world(interval=4, lag=3, retain=8)
        assert hot_bound_blocks(config) == max(8, 3) + 4 + 1
        config, _, _ = make_world(interval=5, lag=None, retain=2)
        assert checkpoint_lag(config) == 10
        assert hot_bound_blocks(config) == 10 + 5 + 1


class TestCheckpointRecord:
    def _pinned(self):
        _, accounts, chain = make_world()
        grow(chain, accounts, 12)
        chain.prune_to(4)
        return chain.checkpoints[4]

    def test_pin_requires_at_block_state(self):
        _, accounts, chain = make_world()
        grow(chain, accounts, 6)
        with pytest.raises(ValueError):
            CheckpointRecord.pin(chain.block_at(4), chain.state)

    def test_round_trip_and_digest(self):
        record = self._pinned()
        clone = CheckpointRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.digest() == record.digest()

    def test_tampered_payload_rejected(self):
        record = self._pinned()
        payload = record.to_dict()
        payload["ledger_digest"] = "00" * 32
        with pytest.raises(ValueError):
            CheckpointRecord.from_dict(payload)


class TestPruning:
    def test_prune_is_digest_neutral(self):
        _, accounts, chain = make_world(interval=4, lag=0, retain=8)
        grow(chain, accounts, 20)
        digest = chain.chain_digest()
        ledger = chain.state.ledger_digest()
        dropped = chain.maybe_prune()
        assert dropped == 12
        assert chain.first_retained_index == 12
        assert chain.chain_digest() == digest
        assert chain.state.ledger_digest() == ledger
        assert len(chain) == 21  # logical length includes pruned bodies
        assert chain.retained_blocks == 9
        assert 12 in chain.checkpoints

    def test_pruned_body_access(self):
        _, accounts, chain = make_world(interval=4, lag=0, retain=4)
        grow(chain, accounts, 16)
        chain.maybe_prune()
        floor = chain.first_retained_index
        assert floor > 0
        assert not chain.has_block(floor - 1)
        assert chain.has_block(floor)
        with pytest.raises(PrunedBlockError):
            chain.block_at(floor - 1)

    def test_prune_refuses_non_checkpoint_horizon(self):
        _, accounts, chain = make_world(interval=4, lag=0, retain=4)
        grow(chain, accounts, 16)
        with pytest.raises(ValueError):
            chain.prune_to(3)
        with pytest.raises(ValueError):
            chain.prune_to(chain.last_checkpoint() + 4)

    def test_incremental_prunes_share_the_anchor(self):
        _, accounts, chain = make_world(interval=4, lag=0, retain=4)
        grow(chain, accounts, 10)
        digest_mid = chain.chain_digest()
        chain.maybe_prune()
        assert chain.chain_digest() == digest_mid
        grow(chain, accounts, 10)
        chain.maybe_prune()
        assert chain.first_retained_index == 16
        # Every pruned-to horizon keeps its pinned record.
        assert sorted(chain.checkpoints) == [4, 16] or 16 in chain.checkpoints

    def test_stale_block_below_floor(self):
        _, accounts, chain = make_world(interval=4, lag=0, retain=4)
        grow(chain, accounts, 16)
        old = chain.block_at(5)
        chain.maybe_prune()
        forged = dataclasses.replace(old, timestamp=old.timestamp + 1.0)
        assert chain.consider_block(forged) is BlockOutcome.STALE


class TestAnchoredAdoption:
    def _twins(self, blocks=20, **kw):
        _, accounts, ours = make_world(**kw)
        _, _, theirs = make_world(**kw)
        for step in range(blocks):
            block = mine(ours, accounts, step % NODES)
            ours.append_block(block)
            theirs.append_block(block)
        return accounts, ours, theirs

    def test_suffix_adoption_on_pruned_chain(self):
        accounts, ours, theirs = self._twins(interval=4, lag=0, retain=4)
        ours.maybe_prune()
        grow(theirs, accounts, 2)  # strictly longer, same prefix
        suffix = theirs.blocks[ours.first_retained_index :]
        assert suffix[0].index == ours.first_retained_index
        assert ours.consider_chain(suffix)
        assert ours.chain_digest() == theirs.chain_digest()

    def test_candidate_below_floor_is_trimmed(self):
        accounts, ours, theirs = self._twins(interval=4, lag=0, retain=4)
        ours.maybe_prune()
        grow(theirs, accounts, 1)
        assert ours.consider_chain(list(theirs.blocks))
        assert ours.chain_digest() == theirs.chain_digest()

    def test_checkpoint_rewrite_refused(self):
        accounts, ours, theirs = self._twins(interval=4, lag=0, retain=4)
        ours.maybe_prune()
        floor = ours.first_retained_index
        # Forge an alternative history that rewrites the anchor block
        # itself and outgrows our tip (a rotated miner schedule diverges
        # from block 1 onward).
        _, _, forged = make_world(interval=4, lag=0, retain=4)
        for step in range(len(ours) + 2):
            forged.append_block(mine(forged, accounts, (step + 1) % NODES))
        assert (
            forged.block_at(floor).current_hash
            != ours.block_at(floor).current_hash
        )
        candidate = forged.blocks[floor:]
        with pytest.raises(CheckpointError):
            ours.consider_chain(candidate)

    def test_legacy_chains_still_require_genesis(self):
        accounts, ours, theirs = self._twins(blocks=6, lifecycle=False, interval=4)
        grow(theirs, accounts, 1)
        with pytest.raises(ValidationError):
            ours.consider_chain(theirs.blocks[3:])


class TestArchive:
    def _grown(self, count=12):
        _, accounts, chain = make_world(interval=4, lag=0, retain=4)
        grow(chain, accounts, count)
        return chain

    def test_append_fetch_round_trip(self, tmp_path):
        chain = self._grown()
        archive = BlockArchive(tmp_path / ARCHIVE_NAME)
        for block in chain.blocks[:9]:
            archive.append(block)
        assert archive.archived_below == 9
        assert archive.fetch(4).current_hash == chain.block_at(4).current_hash
        fetched = list(archive.fetch_range(2, 6))
        assert [b.index for b in fetched] == [2, 3, 4, 5]
        assert archive.verify_integrity() == []

    def test_append_enforces_contiguity(self, tmp_path):
        chain = self._grown()
        archive = BlockArchive(tmp_path / ARCHIVE_NAME)
        archive.append(chain.block_at(0))
        with pytest.raises(PersistError):
            archive.append(chain.block_at(2))

    def test_reopen_preserves_contents(self, tmp_path):
        chain = self._grown()
        path = tmp_path / ARCHIVE_NAME
        archive = BlockArchive(path)
        chain.prune_to(4)
        record = chain.checkpoints[4]
        for block in self._grown().blocks[:5]:
            archive.append(block, checkpoint=record if block.index == 4 else None)
        reopened = BlockArchive(path)
        assert reopened.archived_below == 5
        assert reopened.checkpoints()[4] == record
        assert reopened.verify_integrity() == []

    def test_torn_tail_is_truncated(self, tmp_path):
        chain = self._grown()
        path = tmp_path / ARCHIVE_NAME
        archive = BlockArchive(path)
        for block in chain.blocks[:4]:
            archive.append(block)
        whole = path.read_bytes()
        path.write_bytes(whole[:-7])  # simulate a torn final write
        reopened = BlockArchive(path)
        assert reopened.archived_below == 3
        assert reopened.torn_tail_bytes > 0
        assert reopened.verify_integrity() == []
        # And compaction can resume from the truncated floor.
        reopened.append(chain.block_at(3))
        assert reopened.archived_below == 4

    def test_corrupt_body_detected(self, tmp_path):
        chain = self._grown()
        path = tmp_path / ARCHIVE_NAME
        archive = BlockArchive(path)
        for block in chain.blocks[:4]:
            archive.append(block)
        data = path.read_bytes().replace(b'"idx":1', b'"idx":9', 1)
        path.write_bytes(data)
        with pytest.raises(PersistError):
            BlockArchive(path)


class TestStorageSlots:
    def test_pruned_bodies_keep_their_slots(self):
        from repro.core.storage import NodeStorage

        _, accounts, chain = make_world(interval=4, lag=0, retain=4)
        grow(chain, accounts, 4)
        storage = NodeStorage(capacity=10, recent_cache_capacity=0)
        for index in range(1, 5):
            storage.store_block(chain.block_at(index))
        before = storage.used_slots()
        dropped = storage.prune_block_bodies(4)
        assert dropped == 3
        assert storage.used_slots() == before
        assert storage.pruned_block_slots == 3
        assert storage.get_block(2) is None
        assert storage.get_block(4) is not None
