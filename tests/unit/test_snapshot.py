"""Unit tests for atomic, versioned runtime snapshots."""

import json
from dataclasses import replace

import pytest

from repro.core.config import PAPER_CONFIG
from repro.core.errors import PersistError
from repro.persist.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    inspect_snapshot,
    load_latest_snapshot,
    load_snapshot,
    snapshot_paths,
    write_snapshot,
)
from repro.sim.runner import ExperimentSpec, build_runtime, collect_metrics

pytestmark = pytest.mark.persist


def small_spec(seed: int = 5) -> ExperimentSpec:
    config = replace(
        PAPER_CONFIG, simulation_minutes=10.0, data_items_per_minute=2.0
    )
    return ExperimentSpec(node_count=5, config=config, seed=seed)


@pytest.fixture
def midrun_runtime():
    runtime = build_runtime(small_spec())
    runtime.engine.run_until(240.0)
    return runtime


class TestWriteAndLoad:
    def test_round_trip_restores_exact_state(self, tmp_path, midrun_runtime):
        path = write_snapshot(tmp_path, midrun_runtime)
        restored, info = load_snapshot(path)
        assert restored.engine.now == midrun_runtime.engine.now
        original_chain = midrun_runtime.cluster.longest_chain_node().chain
        restored_chain = restored.cluster.longest_chain_node().chain
        assert restored_chain.chain_digest() == original_chain.chain_digest()
        assert info.height == original_chain.height

    def test_restored_runtime_continues_identically(
        self, tmp_path, midrun_runtime
    ):
        path = write_snapshot(tmp_path, midrun_runtime)
        restored, _ = load_snapshot(path)
        for runtime in (midrun_runtime, restored):
            runtime.engine.run_until(runtime.spec.duration_seconds)
        original = collect_metrics(midrun_runtime)
        resumed = collect_metrics(restored)
        assert (
            restored.cluster.longest_chain_node().chain.tip.current_hash
            == midrun_runtime.cluster.longest_chain_node().chain.tip.current_hash
        )
        assert resumed.chain_height() == original.chain_height()
        assert resumed.delivery_times == original.delivery_times

    def test_state_card_inspectable_without_unpickling(
        self, tmp_path, midrun_runtime
    ):
        path = write_snapshot(tmp_path, midrun_runtime)
        info = inspect_snapshot(path)
        assert info.clock == 240.0
        assert info.schema_version == SNAPSHOT_SCHEMA_VERSION
        assert info.blob_bytes > 0
        document = json.loads(path.read_text())
        assert set(document["storages"]) == {"0", "1", "2", "3", "4"}

    def test_retain_prunes_oldest(self, tmp_path):
        runtime = build_runtime(small_spec())
        for clock in (120.0, 240.0, 360.0):
            runtime.engine.run_until(clock)
            write_snapshot(tmp_path, runtime, retain=2)
        paths = snapshot_paths(tmp_path)
        assert len(paths) == 2
        assert inspect_snapshot(paths[-1]).clock == 360.0

    def test_retain_validated(self, tmp_path, midrun_runtime):
        with pytest.raises(ValueError):
            write_snapshot(tmp_path, midrun_runtime, retain=0)

    def test_no_temp_files_left_behind(self, tmp_path, midrun_runtime):
        write_snapshot(tmp_path, midrun_runtime)
        assert not list(tmp_path.glob("*.tmp"))


class TestRejection:
    def test_wrong_schema_version_rejected(self, tmp_path, midrun_runtime):
        path = write_snapshot(tmp_path, midrun_runtime)
        document = json.loads(path.read_text())
        document["schema_version"] = SNAPSHOT_SCHEMA_VERSION + 1
        path.write_text(json.dumps(document))
        with pytest.raises(PersistError, match="schema"):
            load_snapshot(path)

    def test_blob_crc_mismatch_rejected(self, tmp_path, midrun_runtime):
        path = write_snapshot(tmp_path, midrun_runtime)
        document = json.loads(path.read_text())
        blob = document["blob"]
        document["blob"] = blob[:100] + ("A" if blob[100] != "A" else "B") + blob[101:]
        path.write_text(json.dumps(document))
        with pytest.raises(PersistError, match="CRC"):
            load_snapshot(path)

    def test_truncated_file_rejected(self, tmp_path, midrun_runtime):
        path = write_snapshot(tmp_path, midrun_runtime)
        path.write_text(path.read_text()[:200])
        with pytest.raises(PersistError):
            load_snapshot(path)


class TestLatestFallback:
    def test_falls_back_past_corrupt_newest(self, tmp_path):
        runtime = build_runtime(small_spec())
        runtime.engine.run_until(120.0)
        write_snapshot(tmp_path, runtime, retain=3)
        runtime.engine.run_until(240.0)
        write_snapshot(tmp_path, runtime, retain=3)
        newest = snapshot_paths(tmp_path)[-1]
        newest.write_text(newest.read_text()[:300])
        restored, info, skipped = load_latest_snapshot(tmp_path)
        assert restored is not None
        assert info.clock == 120.0
        assert len(skipped) == 1

    def test_empty_directory_returns_none(self, tmp_path):
        restored, info, skipped = load_latest_snapshot(tmp_path)
        assert restored is None and info is None and skipped == []
