"""Unit tests for typed admission control (repro.core.admission)."""

import dataclasses

import pytest

from repro.core.account import Account
from repro.core.admission import (
    BAD_HASH,
    BAD_INDEX,
    BAD_MINER,
    BAD_POS,
    BAD_PRODUCER,
    BAD_SIGNATURE,
    CHECKPOINT_REWRITE,
    EQUIVOCATION,
    FLOOD,
    INVALID,
    MALFORMED,
    REASON_WEIGHTS,
    AdmissionControl,
    EquivocationTracker,
    RateLimiter,
    block_admissible,
    classify_rejection,
    metadata_admissible,
)
from repro.core.block import Block
from repro.core.errors import (
    ChainLinkError,
    CheckpointError,
    ConsensusError,
    SerializationError,
    ValidationError,
)
from repro.core.metadata import create_metadata


@pytest.fixture
def accounts():
    return {i: Account.for_node(3, i) for i in range(4)}


@pytest.fixture
def address_of(accounts):
    return {i: a.address for i, a in accounts.items()}


def _block(accounts, miner=1, index=5, **overrides):
    fields = dict(
        index=index,
        timestamp=100.0,
        previous_hash="aa" * 32,
        pos_hash="bb" * 32,
        miner=miner,
        miner_address=accounts[miner].address,
        hit=7,
        target_b=1.0,
    )
    fields.update(overrides)
    return Block(**fields)


class TestClassifyRejection:
    def test_typed_errors_map_to_stable_reasons(self):
        assert classify_rejection(CheckpointError("x")) == CHECKPOINT_REWRITE
        assert classify_rejection(ChainLinkError("x")) == "bad_linkage"
        assert classify_rejection(ConsensusError("x")) == BAD_POS
        assert classify_rejection(SerializationError("x")) == MALFORMED
        assert classify_rejection(ValidationError("x")) == INVALID

    def test_every_reason_has_a_weight(self):
        for error in (
            CheckpointError("x"),
            ChainLinkError("x"),
            ConsensusError("x"),
            SerializationError("x"),
            ValidationError("x"),
        ):
            assert classify_rejection(error) in REASON_WEIGHTS


class TestBlockAdmissible:
    def test_honest_block_passes(self, accounts, address_of):
        assert block_admissible(_block(accounts), address_of) is None

    def test_genesis_index_rejected(self, accounts, address_of):
        block = _block(accounts, index=0, miner=1)
        assert block_admissible(block, address_of) == BAD_INDEX

    def test_unknown_miner_rejected(self, accounts, address_of):
        block = _block(accounts)
        block = dataclasses.replace(block, miner=99, current_hash="")
        assert block_admissible(block, address_of) == BAD_MINER

    def test_forged_miner_address_rejected(self, accounts, address_of):
        block = _block(accounts, miner=1)
        forged = dataclasses.replace(
            block, miner_address=accounts[2].address, current_hash=""
        )
        assert block_admissible(forged, address_of) == BAD_MINER

    def test_garbage_content_hash_rejected(self, accounts, address_of):
        block = dataclasses.replace(_block(accounts), current_hash="00" * 32)
        assert block_admissible(block, address_of) == BAD_HASH


class TestMetadataAdmissible:
    def test_honest_item_passes(self, accounts, address_of):
        item = create_metadata(accounts[2], 2, 0, 10.0)
        assert metadata_admissible(item, address_of) is None
        assert (
            metadata_admissible(item, address_of, verify_signature=True) is None
        )

    def test_forged_producer_address_rejected(self, accounts, address_of):
        item = create_metadata(accounts[2], 2, 0, 10.0)
        forged = dataclasses.replace(item, producer_address="f0" * 20)
        assert metadata_admissible(forged, address_of) == BAD_PRODUCER

    def test_tampered_field_breaks_signature(self, accounts, address_of):
        item = create_metadata(accounts[2], 2, 0, 10.0)
        tampered = dataclasses.replace(item, data_type="Forged/Tampered")
        # Without signature checking the tamper is invisible...
        assert metadata_admissible(tampered, address_of) is None
        # ...with it, the producer's ECDSA signature no longer verifies.
        assert (
            metadata_admissible(tampered, address_of, verify_signature=True)
            == BAD_SIGNATURE
        )

    def test_signature_cache_is_filled_and_reused(self, accounts, address_of):
        item = create_metadata(accounts[2], 2, 0, 10.0)
        cache = {}
        assert (
            metadata_admissible(
                item, address_of, verify_signature=True, signature_cache=cache
            )
            is None
        )
        key = (item.signing_payload(), item.signature_hex)
        assert cache[key] is True
        # Poison the cache: the memoised answer is trusted over re-verifying.
        cache[key] = False
        assert (
            metadata_admissible(
                item, address_of, verify_signature=True, signature_cache=cache
            )
            == BAD_SIGNATURE
        )


class TestEquivocationTracker:
    def test_two_distinct_blocks_same_height_same_miner(self, accounts):
        tracker = EquivocationTracker()
        first = _block(accounts, index=5)
        twin = dataclasses.replace(
            first, timestamp=first.timestamp + 1.0, current_hash=""
        )
        assert tracker.observe(first, tip_index=5) is False
        assert tracker.observe(twin, tip_index=5) is True

    def test_duplicate_announce_is_not_equivocation(self, accounts):
        tracker = EquivocationTracker()
        block = _block(accounts, index=5)
        assert tracker.observe(block, tip_index=5) is False
        assert tracker.observe(block, tip_index=5) is False

    def test_different_miners_do_not_equivocate(self, accounts):
        tracker = EquivocationTracker()
        assert tracker.observe(_block(accounts, miner=1), tip_index=5) is False
        assert tracker.observe(_block(accounts, miner=2), tip_index=5) is False

    def test_stale_heights_outside_window_ignored(self, accounts):
        # A crash-restarted node re-mining low heights must not be flagged.
        tracker = EquivocationTracker(window=4)
        old = _block(accounts, index=2)
        twin = dataclasses.replace(old, timestamp=999.0, current_hash="")
        assert tracker.observe(old, tip_index=10) is False
        assert tracker.observe(twin, tip_index=10) is False

    def test_seen_map_is_pruned_as_tip_advances(self, accounts):
        tracker = EquivocationTracker(window=4)
        tracker.observe(_block(accounts, index=2), tip_index=4)
        assert (2, 1) in tracker.seen
        tracker.observe(_block(accounts, index=20), tip_index=20)
        assert (2, 1) not in tracker.seen


class TestRateLimiter:
    def test_allows_up_to_limit_within_window(self):
        limiter = RateLimiter(window=60.0, limit=3)
        assert [limiter.allow(7, t) for t in (0.0, 1.0, 2.0, 3.0)] == [
            True,
            True,
            True,
            False,
        ]

    def test_budget_refills_as_window_slides(self):
        limiter = RateLimiter(window=60.0, limit=2)
        assert limiter.allow(7, 0.0)
        assert limiter.allow(7, 10.0)
        assert not limiter.allow(7, 50.0)
        assert limiter.allow(7, 61.0)  # the t=0 event aged out

    def test_budgets_are_per_key(self):
        limiter = RateLimiter(window=60.0, limit=1)
        assert limiter.allow(1, 0.0)
        assert limiter.allow(2, 0.0)
        assert not limiter.allow(1, 1.0)


class TestAdmissionControl:
    def test_rejections_counted_by_reason(self):
        control = AdmissionControl()
        control.reject(3, BAD_HASH)
        control.reject(3, BAD_HASH)
        control.reject(4, FLOOD)
        assert control.rejections == {BAD_HASH: 2, FLOOD: 1}
        assert control.total_rejections == 3

    def test_scores_accumulate_to_quarantine(self):
        control = AdmissionControl(quarantine_threshold=8.0)
        assert control.reject(3, BAD_HASH) is False  # score 4
        assert control.reject(3, BAD_POS) is True  # score 8 -> quarantined
        assert control.is_quarantined(3)
        # Already quarantined: further rejections do not re-announce.
        assert control.reject(3, BAD_HASH) is False

    def test_equivocation_quarantines_immediately(self):
        control = AdmissionControl(quarantine_threshold=8.0)
        assert control.reject(5, EQUIVOCATION) is True

    def test_floods_need_a_sustained_storm(self):
        control = AdmissionControl(quarantine_threshold=8.0)
        flags = [control.reject(6, FLOOD) for _ in range(8)]
        assert flags == [False] * 7 + [True]

    def test_unattributed_rejection_charges_nobody(self):
        control = AdmissionControl()
        assert control.reject(None, BAD_POS) is False
        assert control.reject(-1, BAD_POS) is False
        assert control.rejections == {BAD_POS: 2}
        assert control.scores == {}
        assert control.quarantined == set()

    def test_permitted_filters_quarantined_peers(self):
        control = AdmissionControl()
        control.reject(2, EQUIVOCATION)
        assert control.permitted([1, 2, 3]) == [1, 3]

    def test_snapshot_is_json_ready(self):
        control = AdmissionControl()
        control.reject(2, EQUIVOCATION)
        control.reject(9, FLOOD)
        snapshot = control.snapshot()
        assert snapshot == {
            "rejections": {EQUIVOCATION: 1, FLOOD: 1},
            "total_rejections": 2,
            "scores": {"2": 10.0, "9": 1.0},
            "quarantined": [2],
        }
