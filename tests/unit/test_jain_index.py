"""Unit + property tests for Jain's fairness index."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.gini import gini_coefficient, jain_index


class TestJainIndex:
    def test_equal_values_are_perfectly_fair(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_holder_is_one_over_n(self):
        assert jain_index([0, 0, 0, 10]) == pytest.approx(0.25)

    def test_all_zero_defined_as_fair(self):
        assert jain_index([0, 0, 0]) == 1.0

    def test_known_value(self):
        # (1+3)² / (2·(1+9)) = 16/20
        assert jain_index([1, 3]) == pytest.approx(0.8)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([-1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    def test_bounded(self, values):
        index = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=40,
        ),
        st.floats(min_value=0.01, max_value=100),
    )
    def test_scale_invariant(self, values, scale):
        assert jain_index([v * scale for v in values]) == pytest.approx(
            jain_index(values), rel=1e-9
        )

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=40,
        )
    )
    def test_agrees_with_gini_on_direction(self, values):
        """Perfectly equal ⇔ Jain = 1 ⇔ Gini = 0."""
        gini = gini_coefficient(values)
        jain = jain_index(values)
        if gini == pytest.approx(0.0, abs=1e-12):
            assert jain == pytest.approx(1.0, abs=1e-6)
        if jain == pytest.approx(1.0, abs=1e-12) and sum(values) > 0:
            assert gini == pytest.approx(0.0, abs=1e-6)
