"""Unit tests for fault injection."""

import pytest

from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.faults import ChurnEvent, ChurnInjector, PartitionInjector
from repro.simnet.topology import Position, Topology
from repro.simnet.transport import Network


@pytest.fixture
def net():
    engine = EventEngine(seed=9)
    positions = [Position(50.0 * i, 0.0) for i in range(4)]
    topology = Topology(positions, comm_range=70.0)
    network = Network(engine, topology, ChannelModel(bandwidth=None))
    for n in range(4):
        network.register(n, lambda *a: None)
    return engine, network


class TestChurnEvent:
    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ChurnEvent(node=0, down_at=5.0, up_at=5.0)


class TestChurnInjector:
    def test_down_then_up(self, net):
        engine, network = net
        injector = ChurnInjector(engine, network)
        injector.plan(ChurnEvent(node=1, down_at=1.0, up_at=3.0))
        engine.run_until(2.0)
        assert not network.is_online(1)
        engine.run_until(4.0)
        assert network.is_online(1)

    def test_callbacks_fire(self, net):
        engine, network = net
        downs, ups = [], []
        injector = ChurnInjector(engine, network, on_down=downs.append, on_up=ups.append)
        injector.plan(ChurnEvent(node=2, down_at=1.0, up_at=2.0))
        engine.run_until(5.0)
        assert downs == [2] and ups == [2]

    def test_plan_random_windows_within_horizon(self, net):
        engine, network = net
        injector = ChurnInjector(engine, network)
        events = injector.plan_random(
            node_ids=[0, 1], horizon=100.0, mean_downtime=5.0, events_per_node=3
        )
        assert len(events) > 0
        for event in events:
            assert 0 <= event.down_at <= 100.0
            assert event.up_at > event.down_at

    def test_plan_random_no_overlap_per_node(self, net):
        engine, network = net
        injector = ChurnInjector(engine, network)
        events = injector.plan_random(
            node_ids=[0], horizon=50.0, mean_downtime=20.0, events_per_node=5
        )
        windows = sorted((e.down_at, e.up_at) for e in events)
        for (_, up_a), (down_b, _) in zip(windows, windows[1:]):
            assert down_b >= up_a

    def test_planned_events_recorded(self, net):
        engine, network = net
        injector = ChurnInjector(engine, network)
        injector.plan(ChurnEvent(node=0, down_at=1.0, up_at=2.0))
        assert len(injector.planned_events) == 1


class TestPartitionInjector:
    def test_partition_blocks_cross_traffic(self, net):
        engine, network = net
        injector = PartitionInjector(network)
        removed = injector.partition([0, 1], [2, 3])
        assert removed == 1  # only edge (1,2) crosses
        assert not network.send(0, 3, "x", 1, "t").delivered
        assert network.send(0, 1, "x", 1, "t").delivered

    def test_heal_restores(self, net):
        engine, network = net
        injector = PartitionInjector(network)
        injector.partition([0, 1], [2, 3])
        injector.heal()
        assert network.send(0, 3, "x", 1, "t").delivered
        assert not injector.active

    def test_double_partition_rejected(self, net):
        _, network = net
        injector = PartitionInjector(network)
        injector.partition([0], [3])
        with pytest.raises(RuntimeError):
            injector.partition([0], [2])

    def test_overlapping_groups_rejected(self, net):
        _, network = net
        injector = PartitionInjector(network)
        with pytest.raises(ValueError):
            injector.partition([0, 1], [1, 2])

    def test_heal_without_partition_is_noop(self, net):
        _, network = net
        PartitionInjector(network).heal()


class TestChurnScheduleValidation:
    def test_window_in_the_past_rejected(self, net):
        engine, network = net
        engine.run_until(10.0)
        injector = ChurnInjector(engine, network)
        with pytest.raises(ValueError, match="before the current time"):
            injector.plan(ChurnEvent(node=0, down_at=5.0, up_at=8.0))

    def test_overlapping_windows_same_node_rejected(self, net):
        engine, network = net
        injector = ChurnInjector(engine, network)
        injector.plan(ChurnEvent(node=0, down_at=1.0, up_at=5.0))
        with pytest.raises(ValueError, match="overlaps"):
            injector.plan(ChurnEvent(node=0, down_at=4.0, up_at=7.0))

    def test_overlapping_windows_different_nodes_allowed(self, net):
        engine, network = net
        injector = ChurnInjector(engine, network)
        injector.plan(ChurnEvent(node=0, down_at=1.0, up_at=5.0))
        injector.plan(ChurnEvent(node=1, down_at=4.0, up_at=7.0))
        assert len(injector.planned_events) == 2

    def test_adjacent_windows_same_node_allowed(self, net):
        engine, network = net
        injector = ChurnInjector(engine, network)
        injector.plan(ChurnEvent(node=0, down_at=1.0, up_at=5.0))
        injector.plan(ChurnEvent(node=0, down_at=5.0, up_at=7.0))
        assert len(injector.planned_events) == 2


class TestPartitionSchedule:
    def test_scheduled_split_and_heal(self, net):
        engine, network = net
        injector = PartitionInjector(network, engine)
        injector.schedule([0, 1], [2, 3], at=2.0, heal_at=5.0)
        engine.run_until(1.0)
        assert network.send(0, 3, "x", 1, "t").delivered
        engine.run_until(3.0)
        assert not network.send(0, 3, "x", 1, "t").delivered
        assert injector.active
        engine.run_until(6.0)
        assert network.send(0, 3, "x", 1, "t").delivered
        assert not injector.active

    def test_schedule_requires_engine(self, net):
        _, network = net
        with pytest.raises(ValueError, match="engine"):
            PartitionInjector(network).schedule([0], [3], at=1.0, heal_at=2.0)

    def test_window_in_the_past_rejected(self, net):
        engine, network = net
        engine.run_until(10.0)
        with pytest.raises(ValueError, match="before the current time"):
            PartitionInjector(network, engine).schedule(
                [0], [3], at=5.0, heal_at=8.0
            )

    def test_inverted_window_rejected(self, net):
        engine, network = net
        with pytest.raises(ValueError, match="after the split"):
            PartitionInjector(network, engine).schedule(
                [0], [3], at=5.0, heal_at=5.0
            )

    def test_overlapping_windows_rejected(self, net):
        engine, network = net
        injector = PartitionInjector(network, engine)
        injector.schedule([0], [3], at=1.0, heal_at=5.0)
        with pytest.raises(ValueError, match="overlaps"):
            injector.schedule([0], [2], at=4.0, heal_at=7.0)

    def test_back_to_back_windows_allowed(self, net):
        engine, network = net
        injector = PartitionInjector(network, engine)
        injector.schedule([0, 1], [2, 3], at=1.0, heal_at=3.0)
        injector.schedule([0, 1], [2, 3], at=3.0, heal_at=5.0)
        engine.run_until(4.0)
        assert injector.active
        engine.run_until(6.0)
        assert not injector.active
        assert network.send(0, 3, "x", 1, "t").delivered
