"""Span tracer: nesting, dual clocks, bounding, and the null path."""

import pytest

from repro.obs.tracer import NULL_SPAN, NullTracer, Tracer

pytestmark = pytest.mark.obs


class FakeWallClock:
    """Deterministic nanosecond clock: each read advances by ``step_ns``."""

    def __init__(self, step_ns=1000):
        self.now_ns = 0
        self.step_ns = step_ns

    def __call__(self):
        self.now_ns += self.step_ns
        return self.now_ns


def make_tracer(**kwargs):
    return Tracer(wall_clock=FakeWallClock(), **kwargs)


class TestSpanNesting:
    def test_parent_ids_follow_with_nesting(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.span.parent_id is None
        assert middle.span.parent_id == outer.span.span_id
        assert inner.span.parent_id == middle.span.span_id

    def test_siblings_share_a_parent(self):
        tracer = make_tracer()
        with tracer.span("parent") as parent:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.span.parent_id == parent.span.span_id
        assert second.span.parent_id == parent.span.span_id

    def test_finished_order_is_completion_order(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_span_ids_are_unique_and_increasing(self):
        tracer = make_tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [s.span_id for s in tracer.finished]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_depth_tracks_open_spans(self):
        tracer = make_tracer()
        assert tracer.depth == 0
        with tracer.span("a"):
            assert tracer.depth == 1
            with tracer.span("b"):
                assert tracer.depth == 2
        assert tracer.depth == 0

    def test_exception_unwinds_abandoned_children(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                # Open a child but never exit its context cleanly.
                tracer.span("abandoned")
                raise RuntimeError("boom")
        # The outer exit popped the abandoned child from the stack.
        assert tracer.depth == 0
        with tracer.span("after") as after:
            pass
        assert after.span.parent_id is None


class TestSpanClocks:
    def test_wall_duration_positive_and_ordered(self):
        tracer = make_tracer()
        with tracer.span("timed") as handle:
            pass
        span = handle.span
        assert span.wall_end_ns > span.wall_start_ns
        assert span.wall_duration_ns == span.wall_end_ns - span.wall_start_ns

    def test_sim_clock_recorded_when_attached(self):
        sim_now = {"t": 10.0}
        tracer = make_tracer(sim_clock=lambda: sim_now["t"])
        with tracer.span("event") as handle:
            sim_now["t"] = 12.5
        assert handle.span.sim_start == 10.0
        assert handle.span.sim_end == 12.5
        assert handle.span.sim_duration == 2.5

    def test_no_sim_clock_means_none(self):
        tracer = make_tracer()
        with tracer.span("event") as handle:
            pass
        assert handle.span.sim_start is None
        assert handle.span.sim_duration == 0.0

    def test_attrs_at_open_and_mid_span(self):
        tracer = make_tracer()
        with tracer.span("solve", "facility", size=8) as handle:
            handle.set(cost=3.5)
        assert handle.span.attrs == {"size": 8, "cost": 3.5}
        assert handle.span.category == "facility"


class TestBounding:
    def test_max_spans_drops_beyond_cap(self):
        tracer = make_tracer(max_spans=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.finished) == 3
        assert tracer.dropped_spans == 2
        assert [s.name for s in tracer.finished] == ["s0", "s1", "s2"]

    def test_max_spans_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_clear_resets_everything(self):
        tracer = make_tracer(max_spans=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.clear()
        assert tracer.finished == []
        assert tracer.dropped_spans == 0
        assert tracer.depth == 0


class TestNullTracer:
    def test_span_returns_the_shared_null_handle(self):
        tracer = NullTracer()
        handle = tracer.span("anything", "cat", attr=1)
        assert handle is NULL_SPAN
        assert tracer.span("other") is handle

    def test_null_handle_is_a_context_manager_with_set(self):
        with NULL_SPAN as handle:
            assert handle.set(cost=1.0) is handle

    def test_null_tracer_collects_nothing(self):
        tracer = NullTracer()
        with tracer.span("x"):
            pass
        assert tracer.finished == []
        assert tracer.depth == 0
        assert tracer.enabled is False
