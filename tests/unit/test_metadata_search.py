"""Unit tests for the on-chain metadata search (Section III-B)."""

import pytest

from repro.core.account import Account
from repro.core.block import Block
from repro.core.blockchain import Blockchain
from repro.core.config import SystemConfig
from repro.core.metadata import create_metadata
from repro.core.pos import compute_hit, compute_pos_hash, mining_delay


@pytest.fixture
def chain_with_catalogue():
    config = SystemConfig(expected_block_interval=10.0)
    accounts = {i: Account.for_node(111, i) for i in range(3)}
    address_of = {i: a.address for i, a in accounts.items()}
    chain = Blockchain(list(range(3)), config, address_of)

    items = [
        create_metadata(
            accounts[0], 0, 0, created_at=10.0,
            data_type="AirQuality/PM2.5", location="NewYork,NY/40.72,-74.00",
            valid_time_minutes=1.0,
        ),
        create_metadata(
            accounts[1], 1, 0, created_at=20.0,
            data_type="Picture/Traffic", location="Nassau,NY/40.78,-73.58",
            valid_time_minutes=1000.0,
        ),
        create_metadata(
            accounts[1], 1, 1, created_at=30.0,
            data_type="AirQuality/Ozone", location="StonyBrook,NY/40.91,-73.12",
            valid_time_minutes=1000.0,
        ),
    ]
    parent = chain.tip
    miner = 2
    address = accounts[miner].address
    hit = compute_hit(parent.pos_hash, address, config.hit_modulus)
    amendment = chain.state.amendment(parent.timestamp)
    delay = mining_delay(
        hit, chain.state.tokens(miner),
        chain.state.stored_items(miner, parent.timestamp), amendment,
    )
    chain.append_block(
        Block(
            index=1,
            timestamp=parent.timestamp + delay,
            previous_hash=parent.current_hash,
            pos_hash=compute_pos_hash(parent.pos_hash, address),
            miner=miner,
            miner_address=address,
            hit=hit,
            target_b=amendment,
            metadata_items=tuple(item.with_storing_nodes((0,)) for item in items),
            storing_nodes=(miner,),
        )
    )
    return chain, items


class TestSearchMetadata:
    def test_by_data_type_prefix(self, chain_with_catalogue):
        chain, _ = chain_with_catalogue
        hits = chain.search_metadata(data_type="AirQuality")
        assert len(hits) == 2
        assert all("AirQuality" in item.data_type for item in hits)

    def test_case_insensitive(self, chain_with_catalogue):
        chain, _ = chain_with_catalogue
        assert len(chain.search_metadata(data_type="airquality")) == 2

    def test_by_location(self, chain_with_catalogue):
        chain, _ = chain_with_catalogue
        hits = chain.search_metadata(location="Nassau")
        assert len(hits) == 1
        assert hits[0].data_type == "Picture/Traffic"

    def test_by_producer(self, chain_with_catalogue):
        chain, _ = chain_with_catalogue
        assert len(chain.search_metadata(producer=1)) == 2
        assert len(chain.search_metadata(producer=0)) == 1

    def test_by_time_window(self, chain_with_catalogue):
        chain, _ = chain_with_catalogue
        hits = chain.search_metadata(created_after=15.0, created_before=25.0)
        assert len(hits) == 1
        assert hits[0].created_at == 20.0

    def test_combined_filters(self, chain_with_catalogue):
        chain, _ = chain_with_catalogue
        hits = chain.search_metadata(data_type="AirQuality", producer=1)
        assert len(hits) == 1
        assert hits[0].data_type == "AirQuality/Ozone"

    def test_excludes_expired(self, chain_with_catalogue):
        chain, _ = chain_with_catalogue
        # The PM2.5 item expires at 10 + 60 s = 70 s.
        hits = chain.search_metadata(
            data_type="AirQuality", include_expired=False, now=100.0
        )
        assert len(hits) == 1
        assert hits[0].data_type == "AirQuality/Ozone"

    def test_exclude_expired_requires_now(self, chain_with_catalogue):
        chain, _ = chain_with_catalogue
        with pytest.raises(ValueError):
            chain.search_metadata(include_expired=False)

    def test_sorted_newest_first(self, chain_with_catalogue):
        chain, _ = chain_with_catalogue
        hits = chain.search_metadata()
        created = [item.created_at for item in hits]
        assert created == sorted(created, reverse=True)

    def test_no_filters_returns_all(self, chain_with_catalogue):
        chain, _ = chain_with_catalogue
        assert len(chain.search_metadata()) == 3

    def test_no_match(self, chain_with_catalogue):
        chain, _ = chain_with_catalogue
        assert chain.search_metadata(data_type="Video") == []
