"""Unit tests for the discrete-event engine."""

import pytest

from repro.simnet.engine import EventEngine, PeriodicTask


class TestScheduling:
    def test_clock_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_events_fire_in_time_order(self, engine):
        order = []
        engine.schedule(2.0, order.append, "b")
        engine.schedule(1.0, order.append, "a")
        engine.schedule(3.0, order.append, "c")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self, engine):
        order = []
        for label in "abcde":
            engine.schedule(1.0, order.append, label)
        engine.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self, engine):
        times = []
        engine.schedule(5.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [5.0]

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)

    def test_call_at_past_rejected(self, engine):
        engine.schedule(10.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.call_at(5.0, lambda: None)

    def test_nested_scheduling(self, engine):
        order = []

        def outer():
            order.append("outer")
            engine.schedule(1.0, lambda: order.append("inner"))

        engine.schedule(1.0, outer)
        engine.run()
        assert order == ["outer", "inner"]
        assert engine.now == 2.0

    def test_run_until_stops_at_deadline(self, engine):
        fired = []
        engine.schedule(1.0, fired.append, 1)
        engine.schedule(5.0, fired.append, 5)
        engine.run_until(3.0)
        assert fired == [1]
        assert engine.now == 3.0

    def test_run_until_includes_boundary(self, engine):
        fired = []
        engine.schedule(3.0, fired.append, 3)
        engine.run_until(3.0)
        assert fired == [3]

    def test_run_until_past_rejected(self, engine):
        engine.run_until(10.0)
        with pytest.raises(ValueError):
            engine.run_until(5.0)

    def test_run_max_events(self, engine):
        fired = []
        for i in range(10):
            engine.schedule(float(i + 1), fired.append, i)
        engine.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self, engine):
        assert engine.step() is False

    def test_events_processed_counter(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.events_processed == 2


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        handle = engine.schedule(1.0, fired.append, "x")
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancelled_flag(self, engine):
        handle = engine.schedule(1.0, lambda: None)
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled

    def test_peek_skips_cancelled(self, engine):
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        handle.cancel()
        assert engine.peek_time() == 2.0

    def test_clear_drops_everything(self, engine):
        fired = []
        engine.schedule(1.0, fired.append, 1)
        engine.clear()
        engine.run()
        assert fired == []


class TestDeterminism:
    def test_rng_reproducible_across_engines(self):
        a = EventEngine(seed=7)
        b = EventEngine(seed=7)
        assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]
        assert list(a.np_rng.uniform(size=5)) == list(b.np_rng.uniform(size=5))

    def test_different_seeds_differ(self):
        assert EventEngine(seed=1).rng.random() != EventEngine(seed=2).rng.random()


class TestPeriodicTask:
    def test_fires_at_period(self, engine):
        ticks = []
        PeriodicTask(engine, 2.0, lambda: ticks.append(engine.now))
        engine.run_until(7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_start_delay(self, engine):
        ticks = []
        PeriodicTask(engine, 2.0, lambda: ticks.append(engine.now), start_delay=0.5)
        engine.run_until(5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_stop(self, engine):
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(engine.now))
        engine.run_until(2.5)
        task.stop()
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0]
        assert task.stopped

    def test_stop_from_within_callback(self, engine):
        ticks = []
        task = None

        def tick():
            ticks.append(engine.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(engine, 1.0, tick)
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_zero_period_rejected(self, engine):
        with pytest.raises(ValueError):
            PeriodicTask(engine, 0.0, lambda: None)
