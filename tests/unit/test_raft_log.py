"""Unit tests for the Raft log."""

import pytest

from repro.raft.log import RaftLog
from repro.raft.messages import LogEntry


def entries(*terms):
    return [LogEntry(term=t, command=f"cmd-{i}") for i, t in enumerate(terms)]


class TestRaftLog:
    def test_empty_log(self):
        log = RaftLog()
        assert log.last_index == 0
        assert log.last_term == 0
        assert len(log) == 0

    def test_append_returns_index(self):
        log = RaftLog()
        assert log.append(LogEntry(1, "a")) == 1
        assert log.append(LogEntry(1, "b")) == 2

    def test_term_at_sentinel(self):
        assert RaftLog().term_at(0) == 0

    def test_term_at_out_of_range(self):
        with pytest.raises(IndexError):
            RaftLog().term_at(1)

    def test_entry_at(self):
        log = RaftLog()
        log.append(LogEntry(3, "x"))
        assert log.entry_at(1).command == "x"

    def test_entries_from(self):
        log = RaftLog()
        for e in entries(1, 1, 2):
            log.append(e)
        assert len(log.entries_from(2)) == 2
        assert log.entries_from(4) == ()

    def test_entries_from_invalid(self):
        with pytest.raises(IndexError):
            RaftLog().entries_from(0)

    def test_matches_empty_prefix(self):
        assert RaftLog().matches(0, 0)

    def test_matches_checks_term(self):
        log = RaftLog()
        log.append(LogEntry(2, "a"))
        assert log.matches(1, 2)
        assert not log.matches(1, 3)
        assert not log.matches(2, 2)

    def test_overwrite_appends(self):
        log = RaftLog()
        log.overwrite_from(1, entries(1, 1))
        assert log.last_index == 2

    def test_overwrite_keeps_agreeing_prefix(self):
        log = RaftLog()
        log.append(LogEntry(1, "original"))
        log.overwrite_from(1, [LogEntry(1, "leader-copy")])
        # Same index+term → keep ours (Raft never rewrites agreeing entries).
        assert log.entry_at(1).command == "original"

    def test_overwrite_truncates_conflict(self):
        log = RaftLog()
        for e in entries(1, 1, 1):
            log.append(e)
        log.overwrite_from(2, [LogEntry(2, "new")])
        assert log.last_index == 2
        assert log.entry_at(2).term == 2

    def test_commands(self):
        log = RaftLog()
        log.append(LogEntry(1, "a"))
        log.append(LogEntry(1, "b"))
        assert log.commands() == ["a", "b"]
        assert log.commands(1) == ["a"]

    def test_up_to_date_comparison(self):
        log = RaftLog()
        log.append(LogEntry(2, "a"))
        # Higher term wins regardless of length.
        assert log.is_at_least_as_up_to_date(0, 3)
        # Same term: longer or equal index wins.
        assert log.is_at_least_as_up_to_date(1, 2)
        assert log.is_at_least_as_up_to_date(2, 2)
        # Lower term loses.
        assert not log.is_at_least_as_up_to_date(10, 1)
        # Same term, shorter log loses.
        assert not log.is_at_least_as_up_to_date(0, 2)
