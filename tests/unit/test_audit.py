"""Unit tests for the ledger audit tool."""

import pytest

from repro.core.account import Account
from repro.core.audit import EarningKind, audit_chain
from repro.core.block import Block
from repro.core.blockchain import Blockchain
from repro.core.config import SystemConfig
from repro.core.metadata import create_metadata
from repro.core.pos import compute_hit, compute_pos_hash, mining_delay


@pytest.fixture
def world():
    config = SystemConfig(expected_block_interval=10.0, token_rescale_interval=4)
    accounts = {i: Account.for_node(77, i) for i in range(3)}
    address_of = {i: a.address for i, a in accounts.items()}
    chain = Blockchain(list(range(3)), config, address_of)
    return config, accounts, chain


def mine(chain, accounts, miner, items=(), storing=(0,), recent=()):
    parent = chain.tip
    address = accounts[miner].address
    state = chain.state
    hit = compute_hit(parent.pos_hash, address, chain.config.hit_modulus)
    amendment = state.amendment(parent.timestamp)
    delay = mining_delay(
        hit, state.tokens(miner), state.stored_items(miner, parent.timestamp), amendment
    )
    return Block(
        index=parent.index + 1,
        timestamp=parent.timestamp + delay,
        previous_hash=parent.current_hash,
        pos_hash=compute_pos_hash(parent.pos_hash, address),
        miner=miner,
        miner_address=address,
        hit=hit,
        target_b=amendment,
        metadata_items=tuple(items),
        storing_nodes=tuple(storing),
        previous_storing_nodes=tuple(state.block_storing.get(parent.index, ())),
        recent_cache_nodes=tuple(recent),
    )


class TestAuditChain:
    def test_balances_match_chain_state(self, world):
        config, accounts, chain = world
        item = create_metadata(accounts[0], 0, 0, 0.0).with_storing_nodes((1, 2))
        chain.append_block(mine(chain, accounts, 0, items=[item], storing=(2,), recent=(1,)))
        chain.append_block(mine(chain, accounts, 1, storing=(0,)))
        report = audit_chain(chain.blocks, range(3), config)
        for node in range(3):
            assert report.balance(node) == pytest.approx(chain.state.tokens(node))

    def test_balances_match_after_rescaling(self, world):
        config, accounts, chain = world
        for _ in range(6):  # crosses the rescale at block 4
            chain.append_block(mine(chain, accounts, 0))
        report = audit_chain(chain.blocks, range(3), config)
        for node in range(3):
            assert report.balance(node) == pytest.approx(chain.state.tokens(node))
        kinds = {e.kind for e in report.events}
        assert EarningKind.RESCALE in kinds

    def test_event_attribution(self, world):
        config, accounts, chain = world
        item = create_metadata(accounts[0], 0, 0, 0.0).with_storing_nodes((1,))
        chain.append_block(mine(chain, accounts, 2, items=[item], storing=(0,), recent=(1,)))
        report = audit_chain(chain.blocks, range(3), config)
        by_kind_2 = report.earned_by_kind(2)
        assert by_kind_2[EarningKind.MINING] == config.mining_incentive
        by_kind_1 = report.earned_by_kind(1)
        assert by_kind_1[EarningKind.DATA_STORAGE] == config.storage_incentive
        assert by_kind_1[EarningKind.RECENT_CACHE] == config.storage_incentive
        by_kind_0 = report.earned_by_kind(0)
        assert by_kind_0[EarningKind.BLOCK_STORAGE] == config.storage_incentive

    def test_events_sum_to_balance(self, world):
        config, accounts, chain = world
        for miner in (0, 1, 2, 0, 1):
            chain.append_block(mine(chain, accounts, miner, storing=(miner,)))
        report = audit_chain(chain.blocks, range(3), config)
        for node in range(3):
            total = sum(e.amount for e in report.events_for(node))
            assert total == pytest.approx(report.balance(node))

    def test_initial_stake_event_present(self, world):
        config, _, chain = world
        report = audit_chain(chain.blocks, range(3), config)
        initials = [e for e in report.events if e.kind is EarningKind.INITIAL]
        assert len(initials) == 3
