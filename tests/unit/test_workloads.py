"""Unit tests for workload generation."""

import numpy as np
import pytest

from repro.workloads.generator import (
    DATA_CATALOGUE,
    generate_production_schedule,
)
from repro.workloads.requests import plan_requests


class TestProductionSchedule:
    def test_rate_matches_expectation(self, rng):
        events = generate_production_schedule(
            node_count=20, items_per_minute=2.0, duration_seconds=3600 * 10, rng=rng
        )
        # 2/min over 600 minutes ≈ 1200 events (±15 %).
        assert 1000 < len(events) < 1400

    def test_events_within_duration_and_sorted(self, rng):
        events = generate_production_schedule(10, 1.0, 3600.0, rng)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 < t < 3600.0 for t in times)

    def test_producers_in_range(self, rng):
        events = generate_production_schedule(5, 3.0, 3600.0, rng)
        assert all(0 <= e.producer < 5 for e in events)

    def test_producers_spread(self, rng):
        events = generate_production_schedule(5, 3.0, 3600.0 * 3, rng)
        assert len({e.producer for e in events}) == 5

    def test_catalogue_types_used(self, rng):
        events = generate_production_schedule(5, 3.0, 3600.0 * 3, rng)
        types = {e.data_type for e in events}
        assert types <= {entry[0] for entry in DATA_CATALOGUE}
        assert len(types) > 1

    def test_zero_rate_empty(self, rng):
        assert generate_production_schedule(5, 0.0, 3600.0, rng) == []

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            generate_production_schedule(0, 1.0, 10.0, rng)
        with pytest.raises(ValueError):
            generate_production_schedule(1, -1.0, 10.0, rng)
        with pytest.raises(ValueError):
            generate_production_schedule(1, 1.0, -10.0, rng)

    def test_deterministic_with_seed(self):
        a = generate_production_schedule(5, 1.0, 3600.0, np.random.default_rng(4))
        b = generate_production_schedule(5, 1.0, 3600.0, np.random.default_rng(4))
        assert a == b


class TestRequestPlan:
    def test_ten_percent_of_nodes(self, rng):
        plan = plan_requests(
            node_count=50, producer=3, production_time=100.0,
            requester_fraction=0.10, rng=rng,
        )
        assert len(plan.requesters) == 5

    def test_at_least_one_requester(self, rng):
        plan = plan_requests(5, 0, 0.0, 0.10, rng)
        assert len(plan.requesters) == 1

    def test_producer_excluded(self, rng):
        for _ in range(20):
            plan = plan_requests(10, 7, 0.0, 0.3, rng)
            assert 7 not in plan.requesters

    def test_requesters_distinct(self, rng):
        plan = plan_requests(30, 0, 0.0, 0.5, rng)
        assert len(set(plan.requesters)) == len(plan.requesters)

    def test_times_after_production_delay(self, rng):
        plan = plan_requests(
            20, 0, production_time=500.0, requester_fraction=0.2, rng=rng,
            min_delay=60.0, max_delay=120.0,
        )
        for t in plan.times:
            assert 560.0 <= t <= 620.0

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            plan_requests(10, 0, 0.0, 1.5, rng)

    def test_invalid_delays(self, rng):
        with pytest.raises(ValueError):
            plan_requests(10, 0, 0.0, 0.1, rng, min_delay=100.0, max_delay=50.0)
