"""Unit tests for metrics: Gini, stats, collection, report rendering."""

import math

import numpy as np
import pytest

from repro.metrics.collector import collect_run_metrics
from repro.metrics.gini import gini_coefficient, gini_pairwise
from repro.metrics.report import format_cell, render_table
from repro.metrics.stats import Summary, mean_or_nan, percent_change, ratio
from repro.simnet.trace import TransmissionTrace


class TestGini:
    def test_perfect_equality_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_total_inequality_approaches_limit(self):
        # One node holds everything: Gini = (n−1)/n.
        assert gini_coefficient([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_known_value(self):
        # [1, 3]: Σ|diff| = 4, denominator 2·2·4 = 16 → 0.25.
        assert gini_coefficient([1, 3]) == pytest.approx(0.25)

    def test_matches_pairwise_reference(self, rng):
        for _ in range(10):
            values = rng.uniform(0, 100, size=rng.integers(2, 30))
            assert gini_coefficient(values) == pytest.approx(gini_pairwise(values))

    def test_scale_invariant(self):
        values = [1, 5, 9, 2]
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient([v * 7 for v in values])
        )

    def test_all_zero_is_zero(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_single_value(self):
        assert gini_coefficient([42]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1, 5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([])

    def test_in_unit_interval(self, rng):
        for _ in range(20):
            values = rng.uniform(0, 1000, size=15)
            assert 0.0 <= gini_coefficient(values) < 1.0


class TestStats:
    def test_summary_of_values(self):
        summary = Summary.of([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0

    def test_summary_empty(self):
        summary = Summary.of([])
        assert summary.count == 0
        assert math.isnan(summary.mean)
        assert str(summary) == "n=0"

    def test_summary_str(self):
        assert "mean=" in str(Summary.of([1.0]))

    def test_summary_delegates_to_obs_summarize(self):
        # Summary.of and the obs-layer helper must be the same math —
        # reports computed either way have to agree.
        from repro.obs.metrics import percentile, summarize

        values = [5.0, 1.0, 4.0, 2.0, 8.0, 3.0]
        summary = Summary.of(values)
        stats = summarize(values)
        assert summary.count == stats["count"]
        assert summary.mean == pytest.approx(stats["mean"])
        assert summary.std == pytest.approx(stats["std"])
        assert summary.median == pytest.approx(stats["median"])
        assert summary.p95 == pytest.approx(stats["p95"])
        assert summary.p95 == pytest.approx(percentile(values, 95.0))
        assert (summary.minimum, summary.maximum) == (stats["min"], stats["max"])

    def test_mean_or_nan(self):
        assert mean_or_nan([2, 4]) == 3.0
        assert math.isnan(mean_or_nan([]))

    def test_ratio(self):
        assert ratio(1.0, 2.0) == 0.5
        assert math.isnan(ratio(1.0, 0.0))

    def test_percent_change(self):
        assert percent_change(85.0, 100.0) == pytest.approx(-15.0)
        assert math.isnan(percent_change(1.0, 0.0))


class TestRunMetrics:
    def make_metrics(self):
        trace = TransmissionTrace()
        trace.record_hop(0, 1, 2_000_000, "data_response")
        trace.record_hop(1, 2, 1_000_000, "block_broadcast")
        return collect_run_metrics(
            node_count=3,
            duration_seconds=600.0,
            trace=trace,
            storage_used=[10, 12, 11],
            delivery_times=[0.5, 1.5, 0.0],
            failed_requests=1,
            block_timestamps=[0.0, 60.0, 130.0],
            blocks_mined={0: 1, 2: 1},
            recovery_durations=[2.0],
            data_items_produced=5,
        )

    def test_average_node_megabytes(self):
        metrics = self.make_metrics()
        # Total hop bytes 3 MB, each hop billed at both ends → 6 MB over 3.
        assert metrics.average_node_megabytes() == pytest.approx(2.0)

    def test_total_megabytes(self):
        assert self.make_metrics().total_megabytes() == pytest.approx(3.0)

    def test_gini(self):
        metrics = self.make_metrics()
        assert metrics.storage_gini() == pytest.approx(gini_coefficient([10, 12, 11]))

    def test_delivery(self):
        metrics = self.make_metrics()
        assert metrics.average_delivery_time() == pytest.approx(2.0 / 3.0)
        assert metrics.delivery_summary().count == 3

    def test_block_intervals(self):
        metrics = self.make_metrics()
        assert metrics.block_intervals == [60.0, 70.0]
        assert metrics.mean_block_interval() == pytest.approx(65.0)
        assert metrics.chain_height() == 2

    def test_mining_distribution(self):
        assert self.make_metrics().mining_distribution() == [1, 0, 1]

    def test_recovery(self):
        assert self.make_metrics().mean_recovery_duration() == 2.0


class TestReport:
    def test_format_cell(self):
        assert format_cell("x") == "x"
        assert format_cell(3) == "3"
        assert format_cell(3.14159, precision=3) == "3.14"
        assert format_cell(float("nan")) == "nan"

    def test_render_table_aligns(self):
        table = render_table(
            "Title", ["col_a", "b"], [[1, 2.5], ["long-value", 3]]
        )
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "col_a" in lines[2]
        assert len({len(line) for line in lines[3:]}) == 1  # aligned rows

    def test_render_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table("t", ["a"], [[1, 2]])
