"""Unit tests for the JSON wire format."""

import dataclasses
import json

import pytest

from repro.core.account import Account
from repro.core.block import Block, make_genesis
from repro.core.blockchain import Blockchain
from repro.core.config import SystemConfig
from repro.core.errors import SerializationError, ValidationError
from repro.core.metadata import create_metadata
from repro.core.pos import compute_hit, compute_pos_hash, mining_delay
from repro.core.serialization import (
    WIRE_FORMAT_VERSION,
    block_from_dict,
    block_to_dict,
    chain_from_json,
    chain_to_json,
    metadata_from_dict,
    metadata_to_dict,
)


@pytest.fixture
def item(account):
    return create_metadata(
        account, producer=2, sequence=0, created_at=5.0, properties="Camera"
    ).with_storing_nodes((0, 3))


@pytest.fixture
def small_chain():
    config = SystemConfig(expected_block_interval=10.0)
    accounts = {i: Account.for_node(66, i) for i in range(3)}
    address_of = {i: a.address for i, a in accounts.items()}
    chain = Blockchain(list(range(3)), config, address_of)
    for miner in (0, 1, 2):
        parent = chain.tip
        address = accounts[miner].address
        hit = compute_hit(parent.pos_hash, address, config.hit_modulus)
        amendment = chain.state.amendment(parent.timestamp)
        delay = mining_delay(
            hit,
            chain.state.tokens(miner),
            chain.state.stored_items(miner, parent.timestamp),
            amendment,
        )
        chain.append_block(
            Block(
                index=parent.index + 1,
                timestamp=parent.timestamp + delay,
                previous_hash=parent.current_hash,
                pos_hash=compute_pos_hash(parent.pos_hash, address),
                miner=miner,
                miner_address=address,
                hit=hit,
                target_b=amendment,
                storing_nodes=(miner,),
                previous_storing_nodes=tuple(
                    chain.state.block_storing.get(parent.index, ())
                ),
            )
        )
    return chain


class TestMetadataWireFormat:
    def test_round_trip(self, item):
        decoded = metadata_from_dict(metadata_to_dict(item))
        assert decoded == item

    def test_signature_survives(self, item):
        decoded = metadata_from_dict(metadata_to_dict(item))
        assert decoded.verify_signature()

    def test_json_serialisable(self, item):
        json.dumps(metadata_to_dict(item))

    def test_missing_field_rejected(self, item):
        payload = metadata_to_dict(item)
        del payload["signature"]
        with pytest.raises(ValidationError):
            metadata_from_dict(payload)

    def test_wrong_version_rejected(self, item):
        payload = metadata_to_dict(item)
        payload["v"] = WIRE_FORMAT_VERSION + 1
        with pytest.raises(ValidationError):
            metadata_from_dict(payload)

    def test_malformed_field_rejected(self, item):
        payload = metadata_to_dict(item)
        payload["producer"] = "not-a-number"
        with pytest.raises(ValidationError):
            metadata_from_dict(payload)


class TestBlockWireFormat:
    def test_genesis_round_trip(self):
        genesis = make_genesis((0, 1, 2), 123.0)
        decoded = block_from_dict(block_to_dict(genesis))
        assert decoded == genesis
        assert decoded.current_hash == genesis.current_hash

    def test_block_with_contents_round_trip(self, small_chain, item):
        block = small_chain.tip
        decoded = block_from_dict(block_to_dict(block))
        assert decoded == block

    def test_tampering_detected(self, small_chain):
        payload = block_to_dict(small_chain.tip)
        payload["miner"] = payload["miner"] + 1
        with pytest.raises(ValidationError):
            block_from_dict(payload)

    def test_tampering_allowed_without_verification(self, small_chain):
        payload = block_to_dict(small_chain.tip)
        payload["miner"] = payload["miner"] + 1
        decoded = block_from_dict(payload, verify_hash=False)
        assert not decoded.hash_is_valid()

    def test_json_serialisable(self, small_chain):
        json.dumps(block_to_dict(small_chain.tip))


class TestChainWireFormat:
    def test_round_trip(self, small_chain):
        text = chain_to_json(small_chain.blocks)
        decoded = chain_from_json(text)
        assert [b.current_hash for b in decoded] == [
            b.current_hash for b in small_chain.blocks
        ]

    def test_decoded_chain_revalidates(self, small_chain):
        decoded = chain_from_json(chain_to_json(small_chain.blocks))
        replica = Blockchain(
            list(small_chain.node_ids),
            small_chain.config,
            small_chain.address_of,
            genesis=decoded[0],
        )
        for block in decoded[1:]:
            replica.append_block(block)
        assert replica.tip.current_hash == small_chain.tip.current_hash

    def test_broken_linkage_rejected(self, small_chain):
        blocks = list(small_chain.blocks)
        del blocks[1]  # gap between genesis and block 2
        with pytest.raises(ValidationError):
            chain_from_json(chain_to_json(blocks))

    def test_garbage_rejected(self):
        with pytest.raises(ValidationError):
            chain_from_json("{not json")
        with pytest.raises(ValidationError):
            chain_from_json(json.dumps({"v": 99, "blocks": []}))


class TestStorageWireFormat:
    @pytest.fixture
    def loaded_storage(self, account, small_chain):
        from repro.core.storage import NodeStorage

        storage = NodeStorage(capacity=20, recent_cache_capacity=2)
        for sequence in range(3):
            metadata = create_metadata(
                account,
                producer=1,
                sequence=sequence,
                created_at=float(sequence),
                properties="Camera" if sequence else "AirQuality",
            )
            storage.store_data(metadata, has_payload=(sequence == 1))
        storage.set_last_block(small_chain.tip)
        storage.store_block(small_chain.blocks[0])
        # Push three blocks through the 2-slot FIFO: the oldest falls out.
        for block in small_chain.blocks[:3]:
            storage.cache_recent_block(block)
        storage.rejected_for_capacity = 4
        return storage

    def round_trip(self, storage):
        from repro.core.serialization import storage_from_dict, storage_to_dict

        return storage_from_dict(storage_to_dict(storage))

    def test_round_trip_preserves_everything(self, loaded_storage):
        decoded = self.round_trip(loaded_storage)
        assert decoded.capacity == loaded_storage.capacity
        assert decoded.recent_cache_capacity == 2
        assert decoded.rejected_for_capacity == 4
        assert decoded.used_slots() == loaded_storage.used_slots()
        assert decoded.last_block == loaded_storage.last_block
        assert decoded.assigned_blocks() == loaded_storage.assigned_blocks()

    def test_data_entries_keep_insertion_order_and_payload_flags(
        self, loaded_storage
    ):
        decoded = self.round_trip(loaded_storage)
        original = loaded_storage.data_entries()
        restored = decoded.data_entries()
        assert [e.metadata.data_id for e in restored] == [
            e.metadata.data_id for e in original
        ]
        assert [e.has_payload for e in restored] == [False, True, False]

    def test_recent_cache_fifo_order_survives(self, loaded_storage):
        decoded = self.round_trip(loaded_storage)
        assert decoded.recent_blocks() == loaded_storage.recent_blocks()
        # FIFO behaviour resumes exactly: the next insert evicts the
        # same (oldest) block on both sides.
        follow_up = loaded_storage.last_block
        loaded_storage.cache_recent_block(follow_up)
        decoded.cache_recent_block(follow_up)
        assert decoded.recent_blocks() == loaded_storage.recent_blocks()

    def test_json_serialisable(self, loaded_storage):
        from repro.core.serialization import storage_to_dict

        json.dumps(storage_to_dict(loaded_storage))

    def test_wrong_version_rejected(self, loaded_storage):
        from repro.core.serialization import storage_from_dict, storage_to_dict

        payload = storage_to_dict(loaded_storage)
        payload["v"] = WIRE_FORMAT_VERSION + 1
        with pytest.raises(ValidationError):
            storage_from_dict(payload)

    def test_malformed_capacity_rejected(self, loaded_storage):
        from repro.core.serialization import storage_from_dict, storage_to_dict

        payload = storage_to_dict(loaded_storage)
        payload["capacity"] = "plenty"
        with pytest.raises(ValidationError):
            storage_from_dict(payload)


class TestChainJsonGuards:
    """Structural defences of chain_from_json: size and nesting limits."""

    def test_oversized_payload_rejected(self, monkeypatch):
        import repro.core.serialization as ser

        monkeypatch.setattr(ser, "MAX_CHAIN_JSON_BYTES", 64)
        with pytest.raises(SerializationError):
            chain_from_json('{"v": 1, "blocks": ["' + "x" * 64 + '"]}')

    def test_deeply_nested_payload_rejected(self):
        from repro.core.serialization import MAX_CHAIN_JSON_DEPTH

        nested = "[" * (MAX_CHAIN_JSON_DEPTH + 2) + "]" * (MAX_CHAIN_JSON_DEPTH + 2)
        with pytest.raises(SerializationError):
            chain_from_json(nested)

    def test_guard_is_a_validation_error(self):
        # Existing handlers catch ValidationError; the new typed guard
        # must flow through them unchanged.
        assert issubclass(SerializationError, ValidationError)

    def test_honest_chain_passes_guards(self, small_chain):
        text = chain_to_json(small_chain.blocks)
        assert [b.index for b in chain_from_json(text)] == [0, 1, 2, 3]
