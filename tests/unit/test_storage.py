"""Unit tests for per-node storage."""

import pytest

from repro.core.block import make_genesis
from repro.core.errors import StorageError
from repro.core.metadata import create_metadata
from repro.core.storage import NodeStorage


@pytest.fixture
def storage():
    return NodeStorage(capacity=5, recent_cache_capacity=2)


@pytest.fixture
def genesis():
    return make_genesis((0, 1, 2), initial_b=1.0)


def make_item(account, seq, valid_minutes=60.0, created=0.0):
    return create_metadata(
        account, producer=0, sequence=seq, created_at=created,
        valid_time_minutes=valid_minutes,
    )


def make_block(genesis, index, account):
    from repro.core.block import Block

    return Block(
        index=index,
        timestamp=float(index * 10),
        previous_hash="ab" * 32,
        pos_hash="cd" * 32,
        miner=0,
        miner_address=account.address,
        hit=0,
        target_b=1.0,
    )


class TestSlots:
    def test_empty_storage(self, storage):
        assert storage.used_slots() == 0
        assert storage.free_slots() == 5
        assert not storage.is_full

    def test_last_block_occupies_slot(self, storage, genesis):
        storage.set_last_block(genesis)
        assert storage.used_slots() == 1

    def test_data_occupies_slot(self, storage, account):
        storage.store_data(make_item(account, 0))
        assert storage.used_slots() == 1

    def test_capacity_enforced(self, storage, account):
        for i in range(5):
            storage.store_data(make_item(account, i))
        with pytest.raises(StorageError):
            storage.store_data(make_item(account, 5))
        assert storage.rejected_for_capacity == 1

    def test_duplicate_store_is_idempotent(self, storage, account):
        item = make_item(account, 0)
        storage.store_data(item)
        storage.store_data(item, has_payload=True)
        assert storage.used_slots() == 1
        assert storage.can_serve(item.data_id)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            NodeStorage(capacity=0, recent_cache_capacity=1)
        with pytest.raises(ValueError):
            NodeStorage(capacity=1, recent_cache_capacity=-1)


class TestPayloadTracking:
    def test_slot_without_payload_cannot_serve(self, storage, account):
        item = make_item(account, 0)
        storage.store_data(item)
        assert storage.has_data(item.data_id)
        assert not storage.can_serve(item.data_id)

    def test_mark_payload_received(self, storage, account):
        item = make_item(account, 0)
        storage.store_data(item)
        storage.mark_payload_received(item.data_id)
        assert storage.can_serve(item.data_id)

    def test_mark_unknown_data_raises(self, storage):
        with pytest.raises(StorageError):
            storage.mark_payload_received("missing")

    def test_drop_data(self, storage, account):
        item = make_item(account, 0)
        storage.store_data(item)
        storage.drop_data(item.data_id)
        assert not storage.has_data(item.data_id)
        assert storage.used_slots() == 0


class TestExpiry:
    def test_evict_expired(self, storage, account):
        fresh = make_item(account, 0, valid_minutes=60.0)
        stale = make_item(account, 1, valid_minutes=1.0)
        storage.store_data(fresh)
        storage.store_data(stale)
        evicted = storage.evict_expired(now=120.0)
        assert evicted == [stale.data_id]
        assert storage.has_data(fresh.data_id)
        assert storage.used_slots() == 1

    def test_evict_nothing_when_fresh(self, storage, account):
        storage.store_data(make_item(account, 0, valid_minutes=60.0))
        assert storage.evict_expired(now=10.0) == []


class TestBlocks:
    def test_store_and_get(self, storage, genesis, account):
        block = make_block(genesis, 3, account)
        storage.store_block(block)
        assert storage.has_block(3)
        assert storage.get_block(3) is block

    def test_store_block_idempotent(self, storage, genesis, account):
        block = make_block(genesis, 3, account)
        storage.store_block(block)
        storage.store_block(block)
        assert storage.used_slots() == 1

    def test_store_block_capacity(self, account, genesis):
        storage = NodeStorage(capacity=1, recent_cache_capacity=0)
        storage.store_block(make_block(genesis, 1, account))
        with pytest.raises(StorageError):
            storage.store_block(make_block(genesis, 2, account))

    def test_last_block_visible_via_get(self, storage, genesis):
        storage.set_last_block(genesis)
        assert storage.has_block(0)
        assert storage.get_block(0) is genesis

    def test_missing_block(self, storage):
        assert not storage.has_block(42)
        assert storage.get_block(42) is None


class TestRecentCache:
    def test_fifo_eviction(self, storage, genesis, account):
        blocks = [make_block(genesis, i, account) for i in (1, 2, 3)]
        for block in blocks:
            storage.cache_recent_block(block)
        # Capacity 2: block 1 evicted.
        assert not storage.has_block(1)
        assert storage.has_block(2) and storage.has_block(3)
        assert [b.index for b in storage.recent_blocks()] == [2, 3]

    def test_duplicate_cache_ignored(self, storage, genesis, account):
        block = make_block(genesis, 1, account)
        storage.cache_recent_block(block)
        storage.cache_recent_block(block)
        assert len(storage.recent_blocks()) == 1

    def test_zero_capacity_cache(self, genesis, account):
        storage = NodeStorage(capacity=5, recent_cache_capacity=0)
        storage.cache_recent_block(make_block(genesis, 1, account))
        assert storage.recent_blocks() == ()

    def test_stored_block_indices_union(self, storage, genesis, account):
        storage.set_last_block(genesis)
        storage.store_block(make_block(genesis, 5, account))
        storage.cache_recent_block(make_block(genesis, 7, account))
        assert storage.stored_block_indices() == {0, 5, 7}
