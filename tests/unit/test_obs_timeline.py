"""Unit tests for the protocol timeline sampler and its read-only probe."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import (
    EWMA_ALPHA,
    TIMELINE_SCHEMA,
    RuntimeProbe,
    Timeline,
    read_timeline,
)

pytestmark = pytest.mark.obs


# -- stand-ins for just enough of the chain/state API -----------------------------------


class FakeBlock:
    def __init__(self, timestamp):
        self.timestamp = timestamp


class FakeChain:
    """A chain defined purely by its block timestamps (index 0 = genesis)."""

    def __init__(self, timestamps, state=None):
        self.timestamps = list(timestamps)
        self.state = state

    @property
    def height(self):
        return len(self.timestamps) - 1

    def block_at(self, index):
        return FakeBlock(self.timestamps[index])


class FakeState:
    def __init__(self, node_ids, tokens=None, block_storing=None, caches=None):
        self.node_ids = list(node_ids)
        self._tokens = dict(tokens or {})
        self.block_storing = dict(block_storing or {})
        self._caches = dict(caches or {})

    def tokens(self, node):
        return self._tokens.get(node, 0)

    def recent_cache_of(self, node):
        return self._caches.get(node, ())


class FakeProbe:
    """Probe stub: the timeline only needs ``sample(now)``."""

    def sample(self, now):
        return {"t": now, "height": int(now)}


class TestIntervalEwma:
    def test_first_interval_seeds_the_ewma(self):
        probe = RuntimeProbe(cluster=None)
        probe._update_interval_ewma(FakeChain([0.0, 20.0]))
        assert probe._interval_ewma == 20.0
        assert probe._intervals_seen == 1

    def test_later_intervals_blend_with_alpha(self):
        probe = RuntimeProbe(cluster=None)
        probe._update_interval_ewma(FakeChain([0.0, 20.0, 30.0]))
        expected = EWMA_ALPHA * 10.0 + (1.0 - EWMA_ALPHA) * 20.0
        assert probe._interval_ewma == pytest.approx(expected)
        assert probe._intervals_seen == 2

    def test_cursor_walks_each_block_exactly_once(self):
        probe = RuntimeProbe(cluster=None)
        chain = FakeChain([0.0, 20.0, 30.0])
        probe._update_interval_ewma(chain)
        before = probe._interval_ewma
        probe._update_interval_ewma(chain)  # no new blocks
        assert probe._interval_ewma == before
        assert probe._intervals_seen == 2

    def test_reorg_rewinds_the_cursor_without_double_counting(self):
        probe = RuntimeProbe(cluster=None)
        probe._update_interval_ewma(FakeChain([0.0, 20.0, 30.0]))
        # The reference chain shrank (a different fork won).
        probe._update_interval_ewma(FakeChain([0.0, 20.0]))
        assert probe._intervals_seen == 2
        # Growth after the reorg resumes from the rewound cursor.
        probe._update_interval_ewma(FakeChain([0.0, 20.0, 45.0]))
        assert probe._intervals_seen == 3


class TestFairness:
    def test_half_full_node_has_fairness_one(self):
        probe = RuntimeProbe(cluster=None)
        fairness, margin, saturated = probe._fairness({1: 30}, 60.0)
        assert fairness == pytest.approx(1.0)  # W/(W_tol - W) = 30/30
        assert margin == pytest.approx(30.0)
        assert saturated == 0

    def test_fullest_node_dominates(self):
        probe = RuntimeProbe(cluster=None)
        fairness, margin, _ = probe._fairness({1: 10, 2: 54}, 60.0)
        assert fairness == pytest.approx(54.0 / 6.0)
        assert margin == pytest.approx(6.0)

    def test_saturated_node_counts_instead_of_inf(self):
        probe = RuntimeProbe(cluster=None)
        fairness, margin, saturated = probe._fairness({1: 60}, 60.0)
        assert saturated == 1
        assert margin == 0.0
        assert math.isnan(fairness)  # no finite f_i left

    def test_overfull_usage_is_clamped_to_capacity(self):
        # Chain-assigned storage is not admission-controlled, so W can
        # exceed W_tol; it must clamp rather than go negative-denominator.
        probe = RuntimeProbe(cluster=None)
        fairness, margin, saturated = probe._fairness({1: 75, 2: 30}, 60.0)
        assert saturated == 1
        assert margin == 0.0
        assert fairness == pytest.approx(1.0)

    def test_empty_usage_is_nan(self):
        probe = RuntimeProbe(cluster=None)
        fairness, margin, saturated = probe._fairness({}, 60.0)
        assert math.isnan(fairness) and math.isnan(margin)
        assert saturated == 0


class TestStakeTopShare:
    def test_top_k_share(self):
        state = FakeState([1, 2, 3, 4], tokens={1: 5, 2: 3, 3: 1, 4: 1})
        probe = RuntimeProbe(cluster=None)
        assert probe._stake_top_share(state) == pytest.approx(0.9)

    def test_zero_total_stake_is_nan(self):
        state = FakeState([1, 2], tokens={})
        probe = RuntimeProbe(cluster=None)
        assert math.isnan(probe._stake_top_share(state))


class TestRecentCoverage:
    def test_genesis_only_chain_has_no_coverage(self):
        state = FakeState([1, 2])
        chain = FakeChain([0.0], state=state)
        probe = RuntimeProbe(cluster=None)
        assert math.isnan(probe._recent_coverage(chain))

    def test_holders_are_storers_union_caches(self):
        state = FakeState(
            [1, 2],
            block_storing={1: [1], 2: []},
            caches={2: [2]},
        )
        chain = FakeChain([0.0, 20.0, 40.0], state=state)
        probe = RuntimeProbe(cluster=None)
        # Block 1 held by node 1 (storer), block 2 by node 2 (cache):
        # fractions [1/2, 1/2] → 0.5.
        assert probe._recent_coverage(chain) == pytest.approx(0.5)

    def test_fully_covered_chain(self):
        state = FakeState(
            [1, 2],
            block_storing={1: [1, 2], 2: [1]},
            caches={2: [2]},
        )
        chain = FakeChain([0.0, 20.0, 40.0], state=state)
        probe = RuntimeProbe(cluster=None)
        assert probe._recent_coverage(chain) == pytest.approx(1.0)


class TestTimeline:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Timeline(0.0)

    def test_unattached_ticks_are_noops(self):
        timeline = Timeline(10.0)
        assert not timeline.attached
        assert timeline.maybe_sample(100.0) is None
        assert timeline.samples == []

    def test_samples_align_to_the_grid_without_catchup_bursts(self):
        timeline = Timeline(10.0)
        timeline._probe = FakeProbe()
        assert timeline.maybe_sample(0.0) is not None
        assert timeline.maybe_sample(3.0) is None  # before the next slot
        assert timeline.maybe_sample(10.0) is not None
        # A long event gap produces ONE sample, snapped forward to the
        # grid — not one per missed slot.
        assert timeline.maybe_sample(47.0) is not None
        assert timeline.maybe_sample(49.0) is None
        assert timeline.maybe_sample(50.0) is not None
        assert [s["t"] for s in timeline.samples] == [0.0, 10.0, 47.0, 50.0]

    def test_last_sample(self):
        timeline = Timeline(10.0)
        assert timeline.last_sample() is None
        timeline._probe = FakeProbe()
        timeline.maybe_sample(5.0)
        assert timeline.last_sample()["t"] == 5.0

    def test_raft_fields_absent_registry(self):
        timeline = Timeline(10.0)
        timeline._probe = FakeProbe()
        sample = timeline.maybe_sample(0.0)
        assert sample["raft_term"] is None
        assert sample["raft_leader_changes"] is None

    def test_raft_fields_read_but_never_create_instruments(self):
        registry = MetricsRegistry()
        timeline = Timeline(10.0, registry=registry)
        timeline._probe = FakeProbe()
        sample = timeline.maybe_sample(0.0)
        # An empty registry stays empty: reads must not create gauges.
        assert sample["raft_term"] is None
        assert registry.names() == []

        registry.gauge("raft.term").set(4)
        registry.counter("raft.leader_changes").inc(2)
        sample = timeline.maybe_sample(10.0)
        assert sample["raft_term"] == 4
        assert sample["raft_leader_changes"] == 2


class TestTimelineRoundTrip:
    def test_write_then_read_preserves_header_and_samples(self, tmp_path):
        timeline = Timeline(10.0)
        timeline.samples = [
            {"t": 0.0, "height": 0, "fairness_max": math.nan},
            {"t": 10.0, "height": 1, "fairness_max": 0.5},
        ]
        path = timeline.write_jsonl(tmp_path / "timeline.jsonl")
        header, samples = read_timeline(path)
        assert header["schema"] == TIMELINE_SCHEMA
        assert header["interval"] == 10.0
        assert header["samples"] == 2
        # Strict JSON: NaN went out as null.
        assert samples[0]["fairness_max"] is None
        assert samples[1] == {"t": 10.0, "height": 1, "fairness_max": 0.5}
