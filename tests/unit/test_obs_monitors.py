"""Unit tests for the protocol health monitors and the end-of-run verdict."""

import math

import pytest

from repro.obs.monitors import (
    AdmissionRejectionMonitor,
    ChainStallMonitor,
    CoverageMonitor,
    FairnessMonitor,
    IntervalDriftMonitor,
    LeaderFlapMonitor,
    MonitorEvent,
    MonitorSuite,
    QuarantineMonitor,
    StakeConcentrationMonitor,
    read_events,
    read_verdict,
    severity_rank,
)
from tests.helpers import make_config

pytestmark = pytest.mark.obs


def sample(t, **fields):
    base = {"t": t, "height": 0}
    base.update(fields)
    return base


class TestSeverityRank:
    def test_ordering(self):
        assert severity_rank("info") < severity_rank("warning") < severity_rank("critical")

    def test_unknown_rejects(self):
        with pytest.raises(ValueError):
            severity_rank("meltdown")


class TestTransitionMachinery:
    """Monitors alert on level *changes*, not on every degraded sample."""

    def test_one_event_per_transition_then_recovery(self):
        monitor = ChainStallMonitor(t0=10.0)  # stall_after = 50 s
        assert monitor.check(sample(0.0, height=1)) == []
        assert monitor.check(sample(40.0, height=1)) == []  # still within budget
        events = monitor.check(sample(60.0, height=1))
        assert [e.severity for e in events] == ["critical"]
        assert "stalled at height 1" in events[0].message
        # The stall persists: no repeat events.
        assert monitor.check(sample(90.0, height=1)) == []
        # Growth resumes: one info recovery, noting the previous level.
        recovery = monitor.check(sample(100.0, height=2))
        assert [e.severity for e in recovery] == ["info"]
        assert "recovered (was critical)" in recovery[0].message

    def test_event_scrubs_non_finite_values(self):
        event = MonitorEvent(
            time=1.0, monitor="m", severity="warning",
            message="x", value=math.inf, threshold=math.nan,
        )
        record = event.to_dict()
        assert record["value"] is None and record["threshold"] is None


class TestIntervalDrift:
    def test_quiet_until_enough_intervals(self):
        monitor = IntervalDriftMonitor(t0=20.0)
        degraded = sample(0.0, interval_ratio=3.0, intervals_seen=2)
        level, message, _, _ = monitor.level(degraded)
        assert level == "ok" and "not enough" in message

    def test_slow_and_fast_both_warn(self):
        monitor = IntervalDriftMonitor(t0=20.0)
        slow = monitor.level(sample(0.0, interval_ratio=2.5, intervals_seen=10))
        fast = monitor.level(sample(0.0, interval_ratio=0.3, intervals_seen=10))
        on_target = monitor.level(sample(0.0, interval_ratio=1.0, intervals_seen=10))
        assert slow[0] == "warning" and "slower" in slow[1]
        assert fast[0] == "warning" and "faster" in fast[1]
        assert on_target[0] == "ok"


class TestFairnessPressure:
    def test_saturation_is_critical(self):
        monitor = FairnessMonitor()
        level, message, _, _ = monitor.level(
            sample(0.0, saturated_nodes=2, fairness_max=1.0)
        )
        assert level == "critical" and "W_tol" in message

    def test_ninety_percent_full_warns(self):
        monitor = FairnessMonitor()
        assert monitor.level(sample(0.0, fairness_max=9.5))[0] == "warning"
        assert monitor.level(sample(0.0, fairness_max=4.0))[0] == "ok"

    def test_no_data_is_ok(self):
        monitor = FairnessMonitor()
        assert monitor.level(sample(0.0, fairness_max=None))[0] == "ok"


class TestStakeConcentration:
    def test_cap_breach_warns(self):
        monitor = StakeConcentrationMonitor(cap=0.8)
        assert monitor.level(sample(0.0, stake_topk_share=0.85))[0] == "warning"

    def test_drift_from_first_sample_baseline_warns(self):
        monitor = StakeConcentrationMonitor(cap=0.9, max_drift=0.2)
        assert monitor.level(sample(0.0, stake_topk_share=0.5))[0] == "ok"
        assert monitor.level(sample(10.0, stake_topk_share=0.65))[0] == "ok"
        level, message, _, _ = monitor.level(sample(20.0, stake_topk_share=0.75))
        assert level == "warning" and "drifted" in message

    def test_no_stake_data_is_ok(self):
        monitor = StakeConcentrationMonitor()
        assert monitor.level(sample(0.0, stake_topk_share=None))[0] == "ok"


class TestLeaderFlap:
    def test_no_raft_in_run_is_ok(self):
        monitor = LeaderFlapMonitor()
        assert monitor.level(sample(0.0, raft_leader_changes=None))[0] == "ok"

    def test_rapid_turnover_warns_then_window_expiry_recovers(self):
        monitor = LeaderFlapMonitor(window_seconds=60.0, max_changes=3)
        assert monitor.level(sample(0.0, raft_leader_changes=0))[0] == "ok"
        assert monitor.level(sample(10.0, raft_leader_changes=2))[0] == "ok"
        level, message, _, _ = monitor.level(sample(20.0, raft_leader_changes=5))
        assert level == "warning" and "5 leader changes" in message
        # The counter is cumulative; once the burst leaves the window the
        # recent count falls back under the limit.
        assert monitor.level(sample(120.0, raft_leader_changes=5))[0] == "ok"


class TestCoverage:
    def test_floors(self):
        monitor = CoverageMonitor(warn_floor=0.5, critical_floor=0.2)
        assert monitor.level(sample(0.0, coverage_recent=0.9))[0] == "ok"
        assert monitor.level(sample(0.0, coverage_recent=0.4))[0] == "warning"
        assert monitor.level(sample(0.0, coverage_recent=0.1))[0] == "critical"

    def test_no_blocks_yet_is_ok(self):
        monitor = CoverageMonitor()
        assert monitor.level(sample(0.0, coverage_recent=None))[0] == "ok"


class TestAdmissionRejections:
    def test_levels_on_the_delta_not_the_total(self):
        monitor = AdmissionRejectionMonitor()
        assert monitor.level(sample(0.0, chaos_rejections=0))[0] == "ok"
        assert monitor.level(sample(30.0, chaos_rejections=4))[0] == "warning"
        # The cumulative total stays high, but no *new* rejections: ok.
        assert monitor.level(sample(60.0, chaos_rejections=4))[0] == "ok"
        assert monitor.level(sample(90.0, chaos_rejections=9))[0] == "warning"

    def test_missing_field_is_ok(self):
        monitor = AdmissionRejectionMonitor()
        assert monitor.level(sample(0.0, chaos_rejections=None))[0] == "ok"


class TestQuarantine:
    def test_standing_state_warns_while_active(self):
        monitor = QuarantineMonitor()
        assert monitor.level(sample(0.0, chaos_quarantined=0))[0] == "ok"
        assert monitor.level(sample(30.0, chaos_quarantined=2))[0] == "warning"
        # Sticky for the run: stays warning while entries remain.
        assert monitor.level(sample(60.0, chaos_quarantined=2))[0] == "warning"

    def test_missing_field_is_ok(self):
        monitor = QuarantineMonitor()
        assert monitor.level(sample(0.0, chaos_quarantined=None))[0] == "ok"


class TestMonitorSuite:
    def test_for_config_builds_the_full_catalogue(self):
        suite = MonitorSuite.for_config(make_config(expected_block_interval=20.0))
        names = {m.name for m in suite.monitors}
        assert names == {
            "chain-stall", "interval-drift", "fairness-pressure",
            "stake-concentration", "leader-flap", "coverage-drop",
            "admission-rejections", "peer-quarantine",
        }
        stall = next(m for m in suite.monitors if m.name == "chain-stall")
        assert stall.stall_after == pytest.approx(100.0)  # 5 · t0

    def test_healthy_run_verdict(self):
        suite = MonitorSuite.for_config(make_config())
        suite.observe(sample(0.0, height=1, coverage_recent=1.0))
        suite.observe(sample(30.0, height=2, coverage_recent=1.0))
        verdict = suite.verdict()
        assert verdict["status"] == "healthy"
        assert verdict["alerts"] == 0
        assert verdict["degraded_now"] == []
        assert set(verdict["by_monitor"]) == {m.name for m in suite.monitors}

    def test_recovery_does_not_erase_the_alert(self):
        suite = MonitorSuite([CoverageMonitor()])
        suite.observe(sample(0.0, coverage_recent=0.1))   # critical
        suite.observe(sample(30.0, coverage_recent=0.9))  # recovery
        verdict = suite.verdict()
        assert verdict["status"] == "critical"  # worst severity ever, sticky
        assert verdict["degraded_now"] == []    # but nothing degraded *now*
        assert verdict["alerts"] == 1
        assert verdict["events_total"] == 2
        entry = verdict["by_monitor"]["coverage-drop"]
        assert entry == {"events": 2, "worst": "critical", "current_level": "ok"}

    def test_still_degraded_monitors_are_listed(self):
        suite = MonitorSuite([CoverageMonitor(), FairnessMonitor()])
        suite.observe(sample(0.0, coverage_recent=0.4, fairness_max=1.0))
        verdict = suite.verdict()
        assert verdict["status"] == "warning"
        assert verdict["degraded_now"] == ["coverage-drop"]


class TestEventsRoundTrip:
    def test_write_then_read(self, tmp_path):
        suite = MonitorSuite([CoverageMonitor()])
        suite.observe(sample(10.0, coverage_recent=0.1))
        suite.observe(sample(40.0, coverage_recent=0.9))

        events_path = suite.write_events(tmp_path / "events.jsonl")
        events = read_events(events_path)
        assert [e["severity"] for e in events] == ["critical", "info"]
        assert events[0]["monitor"] == "coverage-drop"
        assert events[0]["time"] == 10.0

        verdict_path = suite.write_verdict(tmp_path / "verdict.json")
        assert read_verdict(verdict_path) == suite.verdict()
