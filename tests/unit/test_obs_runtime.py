"""The process-global obs switch, hook helpers, and the solver decorator."""

import json
import math

import pytest

from repro.obs import runtime
from repro.obs.runtime import (
    METRICS_NAME,
    TRACE_NAME,
    active_session,
    add,
    disable,
    enable,
    gauge_set,
    is_enabled,
    observe,
    set_sim_clock,
    span,
    traced_solver,
)
from repro.obs.tracer import NULL_SPAN

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def obs_off_after_each_test():
    """Never leak an enabled global session into other tests."""
    yield
    disable()


class TestGlobalSwitch:
    def test_disabled_by_default(self):
        assert not is_enabled()
        assert active_session() is None

    def test_enable_returns_live_session(self):
        session = enable()
        assert is_enabled()
        assert active_session() is session
        disable()
        assert not is_enabled()

    def test_hooks_are_noops_while_disabled(self):
        handle = span("x", "cat")
        assert handle is NULL_SPAN
        add("nothing")
        observe("nothing", 1.0)
        gauge_set("nothing", 1.0)
        session = enable()
        assert len(session.metrics) == 0

    def test_hooks_record_while_enabled(self):
        session = enable()
        with span("work", "engine", detail=1):
            add("events", 2)
            observe("latency", 0.5)
            gauge_set("depth", 7)
        assert session.metrics.counter("events").value == 2
        assert session.metrics.histogram("latency").count == 1
        assert session.metrics.gauge("depth").value == 7.0
        assert [s.name for s in session.tracer.finished] == ["work"]

    def test_set_sim_clock_attaches_to_live_tracer(self):
        session = enable()
        set_sim_clock(lambda: 42.0)
        with span("tick") as handle:
            pass
        assert handle.span.sim_start == 42.0
        disable()
        set_sim_clock(lambda: 0.0)  # no-op without a session

    def test_export_writes_both_artifacts(self, tmp_path):
        session = enable()
        with span("work", "engine"):
            add("events")
        target = session.export(tmp_path / "obs")
        trace = (target / TRACE_NAME).read_text()
        assert trace.startswith("[\n")
        metrics = json.loads((target / METRICS_NAME).read_text())
        assert metrics["instruments"]["events"]["value"] == 1


class FakeProblem:
    num_facilities = 6
    num_clients = 6


class FakeSolution:
    replica_count = 2

    def __init__(self, cost=12.5):
        self._cost = cost

    def total_cost(self, problem):
        return self._cost


class TestTracedSolver:
    def test_disabled_is_a_passthrough(self):
        calls = []

        @traced_solver("fake")
        def solve(problem):
            calls.append(problem)
            return FakeSolution()

        result = solve(FakeProblem())
        assert calls and isinstance(result, FakeSolution)

    def test_enabled_records_span_counter_and_cost(self):
        session = enable()

        @traced_solver("fake")
        def solve(problem):
            return FakeSolution(cost=12.5)

        solve(FakeProblem())
        (span_record,) = session.tracer.finished
        assert span_record.name == "facility.solve"
        assert span_record.attrs["solver"] == "fake"
        assert span_record.attrs["facilities"] == 6
        assert span_record.attrs["cost"] == 12.5
        assert span_record.attrs["replicas"] == 2
        assert session.metrics.counter("facility.fake.solves").value == 1
        assert session.metrics.histogram("facility.solve_cost").count == 1

    def test_infinite_cost_skips_the_histogram(self):
        session = enable()

        @traced_solver("fake")
        def solve(problem):
            return FakeSolution(cost=math.inf)

        solve(FakeProblem())
        assert "facility.solve_cost" not in session.metrics

    def test_wraps_preserves_identity(self):
        @traced_solver("fake")
        def solve_example(problem):
            """docstring survives"""
            return FakeSolution()

        assert solve_example.__name__ == "solve_example"
        assert "docstring" in solve_example.__doc__
