"""Unit tests for accounts and address derivation."""

import pytest

from repro.core.account import (
    ADDRESS_PREFIX,
    Account,
    address_is_valid,
    derive_address,
    verify_address,
)
from repro.crypto.keys import PrivateKey


class TestAddressDerivation:
    def test_deterministic(self):
        public = PrivateKey(42).public_key()
        assert derive_address(public) == derive_address(public)

    def test_satisfies_pattern(self):
        for secret in (1, 2, 3, 999):
            address = derive_address(PrivateKey(secret).public_key())
            assert address.startswith(ADDRESS_PREFIX)

    def test_distinct_keys_distinct_addresses(self):
        a = derive_address(PrivateKey(1).public_key())
        b = derive_address(PrivateKey(2).public_key())
        assert a != b

    def test_verify_address_accepts_own(self):
        public = PrivateKey(7).public_key()
        assert verify_address(derive_address(public), public)

    def test_verify_address_rejects_other(self):
        address = derive_address(PrivateKey(7).public_key())
        other = PrivateKey(8).public_key()
        assert not verify_address(address, other)

    def test_address_is_valid(self):
        address = derive_address(PrivateKey(3).public_key())
        assert address_is_valid(address)

    def test_invalid_addresses(self):
        assert not address_is_valid("")
        assert not address_is_valid("f" * 40)  # wrong prefix
        assert not address_is_valid(ADDRESS_PREFIX + "0" * 10)  # wrong length
        assert not address_is_valid(ADDRESS_PREFIX + "zz" + "0" * 37)  # non-hex


class TestAccount:
    def test_create_deterministic_from_seed(self):
        a = Account.create(seed=("x", 1))
        b = Account.create(seed=("x", 1))
        assert a.address == b.address

    def test_for_node_varies_with_node_id(self):
        assert Account.for_node(0, 1).address != Account.for_node(0, 2).address

    def test_for_node_varies_with_sim_seed(self):
        assert Account.for_node(0, 1).address != Account.for_node(1, 1).address

    def test_sign_verify_round_trip(self, account):
        signature = account.sign(b"payload")
        assert account.verify_own(b"payload", signature)
        assert not account.verify_own(b"other", signature)

    def test_address_matches_public_key(self, account):
        assert verify_address(account.address, account.public_key)

    def test_repr_hides_private_key(self, account):
        assert "Private" not in repr(account)
        assert account.address in repr(account)
