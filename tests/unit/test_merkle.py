"""Unit tests for Merkle trees."""

import pytest

from repro.crypto.merkle import (
    EMPTY_ROOT,
    MerkleProof,
    MerkleTree,
    merkle_root,
    verify_proof,
)


class TestMerkleTree:
    def test_empty_tree_root(self):
        assert MerkleTree([]).root == EMPTY_ROOT

    def test_single_leaf_proof(self):
        tree = MerkleTree([b"only"])
        assert verify_proof(tree.root, b"only", tree.prove(0))

    def test_root_deterministic(self):
        leaves = [b"a", b"b", b"c"]
        assert MerkleTree(leaves).root == MerkleTree(leaves).root

    def test_root_changes_with_leaf(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root

    def test_root_changes_with_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 7, 8, 16, 33])
    def test_all_proofs_verify(self, count):
        leaves = [f"leaf-{i}".encode() for i in range(count)]
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert verify_proof(tree.root, leaf, tree.prove(i))

    def test_proof_for_wrong_leaf_fails(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        proof = tree.prove(1)
        assert not verify_proof(tree.root, b"x", proof)

    def test_proof_wrong_index_fails(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        proof = tree.prove(1)
        shifted = MerkleProof(leaf_index=2, siblings=proof.siblings)
        assert not verify_proof(tree.root, b"b", shifted)

    def test_proof_against_other_root_fails(self):
        tree_a = MerkleTree([b"a", b"b"])
        tree_b = MerkleTree([b"c", b"d"])
        assert not verify_proof(tree_b.root, b"a", tree_a.prove(0))

    def test_prove_out_of_range(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(IndexError):
            tree.prove(1)

    def test_prove_empty_tree(self):
        with pytest.raises(IndexError):
            MerkleTree([]).prove(0)

    def test_len(self):
        assert len(MerkleTree([b"a", b"b", b"c"])) == 3

    def test_merkle_root_helper(self):
        leaves = [b"x", b"y"]
        assert merkle_root(leaves) == MerkleTree(leaves).root

    def test_duplicate_padding_no_forgery(self):
        # [a, b, c] pads to [a, b, c, c]; the root of [a, b, c, c] as an
        # explicit leaf list must EQUAL (padding semantics) but proofs
        # remain sound for the original indices.
        tree3 = MerkleTree([b"a", b"b", b"c"])
        tree4 = MerkleTree([b"a", b"b", b"c", b"c"])
        assert tree3.root == tree4.root
        assert verify_proof(tree3.root, b"c", tree3.prove(2))

    def test_leaf_interior_domain_separation(self):
        # An interior digest presented as a leaf must not verify.
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        # Level-1 left node digest:
        interior = tree._levels[1][0]
        fake = MerkleProof(leaf_index=0, siblings=(tree._levels[1][1],))
        assert not verify_proof(tree.root, interior, fake)
