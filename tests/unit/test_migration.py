"""Unit tests for the data-migration extension."""

import math

import numpy as np
import pytest

from repro.core.migration import (
    MigrationMove,
    MigrationPlan,
    MoveKind,
    placement_drift,
    plan_migration,
)
from repro.facility.greedy import solve_greedy
from repro.facility.problem import UFLProblem, solution_cost_of_open_set


def make_instance(seed=0, num_facilities=8, num_clients=8):
    rng = np.random.default_rng(seed)
    return UFLProblem(
        facility_costs=rng.uniform(1, 10, size=num_facilities),
        connection_costs=rng.uniform(0, 8, size=(num_facilities, num_clients)),
    )


class TestMigrationMove:
    def test_kind_field_validation(self):
        MigrationMove(MoveKind.ADD, None, 3)
        MigrationMove(MoveKind.DROP, 2, None)
        MigrationMove(MoveKind.SWAP, 2, 3)
        with pytest.raises(ValueError):
            MigrationMove(MoveKind.ADD, 1, 3)
        with pytest.raises(ValueError):
            MigrationMove(MoveKind.DROP, None, 3)
        with pytest.raises(ValueError):
            MigrationMove(MoveKind.SWAP, None, 3)

    def test_transfer_accounting(self):
        assert MigrationMove(MoveKind.ADD, None, 1).transfers_data
        assert MigrationMove(MoveKind.SWAP, 0, 1).transfers_data
        assert not MigrationMove(MoveKind.DROP, 0, None).transfers_data


class TestPlacementDrift:
    def test_optimal_placement_has_unit_drift(self):
        problem = make_instance()
        optimal = solve_greedy(problem)
        assert placement_drift(problem, optimal.open_facilities) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_bad_placement_has_higher_drift(self):
        problem = make_instance()
        optimal = solve_greedy(problem)
        costs = problem.facility_costs.copy()
        worst = int(np.argmax(np.where(np.isfinite(costs), costs, -1)))
        if worst not in optimal.open_facilities:
            assert placement_drift(problem, [worst]) > 1.0

    def test_infeasible_placement_is_infinite(self):
        inf = math.inf
        problem = UFLProblem(
            facility_costs=np.array([1.0, 1.0]),
            connection_costs=np.array([[0.0, inf], [inf, 0.0]]),
        )
        assert placement_drift(problem, [0]) == math.inf


class TestPlanMigration:
    def test_no_moves_from_local_optimum(self):
        # Local search is a fixed point of add/drop/swap, so the planner —
        # which uses the same move set — must find nothing to do.
        from repro.facility.local_search import solve_local_search

        problem = make_instance()
        optimum = solve_local_search(problem)
        plan = plan_migration(problem, optimum.open_facilities)
        assert plan.operations == 0
        assert plan.final_drift == pytest.approx(plan.initial_drift)

    def test_improves_bad_placement(self):
        problem = make_instance(seed=3)
        # Start from the single most expensive facility.
        worst = int(np.argmax(problem.facility_costs))
        plan = plan_migration(problem, [worst], max_operations=5)
        assert plan.final_cost < plan.initial_cost
        assert plan.final_drift < plan.initial_drift

    def test_budget_respected(self):
        problem = make_instance(seed=4)
        worst = int(np.argmax(problem.facility_costs))
        for budget in (0, 1, 2):
            plan = plan_migration(problem, [worst], max_operations=budget)
            assert plan.operations <= budget

    def test_more_budget_never_worse(self):
        problem = make_instance(seed=5)
        worst = int(np.argmax(problem.facility_costs))
        costs = [
            plan_migration(problem, [worst], max_operations=budget).final_cost
            for budget in (0, 1, 2, 4, 8)
        ]
        assert costs == sorted(costs, reverse=True)

    def test_final_open_set_matches_cost(self):
        problem = make_instance(seed=6)
        start = [int(np.argmax(problem.facility_costs))]
        plan = plan_migration(problem, start, max_operations=4)
        final_set = plan.final_open_set(start)
        assert solution_cost_of_open_set(problem, final_set) == pytest.approx(
            plan.final_cost
        )

    def test_small_change_rule_skips_migration(self):
        """Near-optimal placements are left alone (the paper's 'not
        necessary if the change over the network is small')."""
        problem = make_instance(seed=7)
        optimal = solve_greedy(problem)
        plan = plan_migration(
            problem, optimal.open_facilities, max_operations=5,
            min_relative_gain=0.25,
        )
        assert plan.operations == 0

    def test_repairs_infeasible_placement(self):
        inf = math.inf
        problem = UFLProblem(
            facility_costs=np.array([1.0, 1.0, 1.0]),
            connection_costs=np.array(
                [[0.0, 1.0, inf], [1.0, 0.0, inf], [inf, inf, 0.0]]
            ),
        )
        plan = plan_migration(problem, [0], max_operations=3)
        assert math.isinf(plan.initial_cost)
        assert math.isfinite(plan.final_cost)
        assert 2 in plan.final_open_set([0])

    def test_negative_budget_rejected(self):
        problem = make_instance()
        with pytest.raises(ValueError):
            plan_migration(problem, [0], max_operations=-1)

    def test_transfers_exclude_drops(self):
        problem = make_instance(seed=8)
        # Start with every facility open: the plan should mostly DROP.
        everything = list(range(problem.num_facilities))
        plan = plan_migration(problem, everything, max_operations=6)
        assert plan.transfers <= plan.operations
        if plan.operations:
            assert any(move.kind is MoveKind.DROP for move in plan.moves)
