"""Unit tests for SystemConfig validation and protocol message sizing."""

import pytest

from repro.core.block import make_genesis
from repro.core.config import DATA_ITEM_BYTES, PAPER_CONFIG, SystemConfig
from repro.core.messages import (
    CONTROL_BYTES,
    BlockAnnounce,
    BlockRequest,
    BlockResponse,
    ChainRequest,
    ChainResponse,
    DataNack,
    DataRequest,
    DataResponse,
    DisseminationRequest,
    DisseminationResponse,
    MetadataAnnounce,
)
from repro.core.metadata import create_metadata


class TestSystemConfig:
    def test_paper_defaults(self):
        assert PAPER_CONFIG.field_size == 300.0
        assert PAPER_CONFIG.comm_range == 70.0
        assert PAPER_CONFIG.mobility_range == 30.0
        assert PAPER_CONFIG.storage_capacity == 250
        assert PAPER_CONFIG.expected_block_interval == 60.0
        assert PAPER_CONFIG.simulation_minutes == 500.0
        assert PAPER_CONFIG.hop_delay == 0.010
        assert PAPER_CONFIG.fdc_weight == 1000.0
        assert PAPER_CONFIG.requester_fraction == 0.10

    def test_data_item_is_one_megabyte(self):
        assert DATA_ITEM_BYTES == 1_000_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"field_size": 0},
            {"comm_range": -1},
            {"storage_capacity": 0},
            {"expected_block_interval": 0},
            {"hit_modulus": 1},
            {"requester_fraction": 1.5},
            {"placement_solver": "quantum"},
            {"token_rescale_ratio": 0.0},
            {"token_rescale_interval": 0},
            {"initial_tokens": 0.5},
            {"mobility_range": -0.1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SystemConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_CONFIG.field_size = 100.0  # type: ignore[misc]


class TestMessageSizes:
    def test_metadata_announce(self, account):
        item = create_metadata(account, 0, 0, 0.0)
        assert MetadataAnnounce(item).wire_size() == item.wire_size()

    def test_block_announce(self):
        genesis = make_genesis((0, 1), 1.0)
        assert BlockAnnounce(genesis).wire_size() == genesis.wire_size()

    def test_control_messages_are_small(self):
        assert DataRequest("d", 0, 1).wire_size() == CONTROL_BYTES
        assert DataNack("d", 1).wire_size() == CONTROL_BYTES
        assert DisseminationRequest("d", 0).wire_size() == CONTROL_BYTES
        assert ChainRequest(0).wire_size() == CONTROL_BYTES

    def test_data_response_carries_payload(self):
        response = DataResponse("d", 1, size_bytes=DATA_ITEM_BYTES)
        assert response.wire_size() == DATA_ITEM_BYTES + CONTROL_BYTES

    def test_dissemination_response_carries_payload(self):
        response = DisseminationResponse("d", size_bytes=500)
        assert response.wire_size() == 500 + CONTROL_BYTES

    def test_block_request_scales_with_indices(self):
        small = BlockRequest(indices=(1,), origin=0)
        large = BlockRequest(indices=tuple(range(10)), origin=0)
        assert large.wire_size() > small.wire_size()

    def test_block_response_scales_with_blocks(self):
        genesis = make_genesis((0, 1), 1.0)
        one = BlockResponse(blocks=(genesis,))
        two = BlockResponse(blocks=(genesis, genesis))
        assert two.wire_size() > one.wire_size()

    def test_chain_response_sums_blocks(self):
        genesis = make_genesis((0, 1), 1.0)
        response = ChainResponse(blocks=(genesis,))
        assert response.wire_size() == CONTROL_BYTES + genesis.wire_size()

    def test_block_request_default_ttl(self):
        assert BlockRequest(indices=(1,), origin=0).ttl == 3
