"""Unit tests for the network transport."""

import pytest

from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.topology import Position, Topology
from repro.simnet.transport import Network


@pytest.fixture
def line_network():
    engine = EventEngine(seed=1)
    positions = [Position(50.0 * i, 0.0) for i in range(5)]
    topology = Topology(positions, comm_range=70.0)
    channel = ChannelModel(hop_delay=0.010, bandwidth=None)
    network = Network(engine, topology, channel)
    inboxes = {i: [] for i in range(5)}
    for node in range(5):
        network.register(node, lambda src, p, c, _n=node: inboxes[_n].append((src, p, c)))
    return engine, network, inboxes


class TestUnicast:
    def test_delivery(self, line_network):
        engine, network, inboxes = line_network
        receipt = network.send(0, 4, "hello", 100, "test")
        assert receipt.delivered
        assert receipt.hops == 4
        engine.run()
        assert inboxes[4] == [(0, "hello", "test")]

    def test_latency_scales_with_hops(self, line_network):
        engine, network, _ = line_network
        assert network.send(0, 1, "x", 0, "t").latency == pytest.approx(0.010)
        assert network.send(0, 4, "x", 0, "t").latency == pytest.approx(0.040)

    def test_intermediate_nodes_do_not_receive(self, line_network):
        engine, network, inboxes = line_network
        network.send(0, 4, "direct", 10, "t")
        engine.run()
        assert inboxes[1] == [] and inboxes[2] == [] and inboxes[3] == []

    def test_each_hop_billed(self, line_network):
        engine, network, _ = line_network
        network.send(0, 4, "x", 100, "t")
        assert network.trace.total_bytes() == 400
        assert network.trace.node(2).tx_bytes == 100
        assert network.trace.node(2).rx_bytes == 100

    def test_loopback_rejected(self, line_network):
        _, network, _ = line_network
        with pytest.raises(ValueError):
            network.send(2, 2, "x", 0, "t")

    def test_offline_target_drops(self, line_network):
        engine, network, inboxes = line_network
        network.set_online(4, False)
        receipt = network.send(0, 4, "x", 0, "t")
        assert not receipt.delivered
        engine.run()
        assert inboxes[4] == []

    def test_offline_source_drops(self, line_network):
        _, network, _ = line_network
        network.set_online(0, False)
        assert not network.send(0, 4, "x", 0, "t").delivered

    def test_offline_relay_blocks_path(self, line_network):
        _, network, _ = line_network
        network.set_online(2, False)
        assert not network.send(0, 4, "x", 0, "t").delivered

    def test_restore_node(self, line_network):
        engine, network, inboxes = line_network
        network.set_online(2, False)
        network.set_online(2, True)
        assert network.send(0, 4, "x", 0, "t").delivered
        engine.run()
        assert inboxes[4]

    def test_message_to_offline_node_in_flight_dropped(self, line_network):
        engine, network, inboxes = line_network
        network.send(0, 4, "x", 0, "t")
        network.set_online(4, False)  # goes offline before delivery event
        engine.run()
        assert inboxes[4] == []

    def test_online_nodes_listing(self, line_network):
        _, network, _ = line_network
        network.set_online(1, False)
        assert network.online_nodes() == [0, 2, 3, 4]


class TestBroadcast:
    def test_tree_reaches_all(self, line_network):
        engine, network, inboxes = line_network
        reached = network.broadcast(0, "blk", 100, "block")
        engine.run()
        assert reached == 4
        for node in range(1, 5):
            assert inboxes[node] == [(0, "blk", "block")]

    def test_tree_bills_once_per_node(self, line_network):
        _, network, _ = line_network
        network.broadcast(0, "blk", 100, "block")
        # Line: 4 tree edges.
        assert network.trace.total_bytes() == 400

    def test_broadcast_latency_by_depth(self, line_network):
        engine, network, inboxes = line_network
        network.broadcast(0, "blk", 0, "block")
        engine.run_until(0.015)
        assert inboxes[1] and not inboxes[2]
        engine.run_until(0.045)
        assert inboxes[4]

    def test_flood_bills_more_than_tree(self):
        engine = EventEngine(seed=1)
        # A triangle: flooding crosses the redundant edge, the tree doesn't.
        positions = [Position(0, 0), Position(50, 0), Position(25, 40)]
        topology = Topology(positions, comm_range=70.0)
        network = Network(engine, topology, ChannelModel(bandwidth=None))
        for n in range(3):
            network.register(n, lambda *a: None)
        network.broadcast(0, "m", 100, "tree", mode="tree")
        tree_bytes = network.trace.total_bytes()
        network.trace.reset()
        network.broadcast(0, "m", 100, "flood", mode="flood")
        flood_bytes = network.trace.total_bytes()
        assert flood_bytes > tree_bytes

    def test_broadcast_from_offline_reaches_none(self, line_network):
        _, network, _ = line_network
        network.set_online(0, False)
        assert network.broadcast(0, "m", 10, "t") == 0

    def test_broadcast_skips_disconnected(self, line_network):
        engine, network, inboxes = line_network
        network.set_online(2, False)
        reached = network.broadcast(0, "m", 10, "t")
        engine.run()
        assert reached == 1  # only node 1 reachable
        assert inboxes[3] == [] and inboxes[4] == []

    def test_unknown_mode_rejected(self, line_network):
        _, network, _ = line_network
        with pytest.raises(ValueError):
            network.broadcast(0, "m", 10, "t", mode="carrier-pigeon")


class TestLoss:
    def test_lossy_unicast_eventually_drops(self):
        engine = EventEngine(seed=5)
        positions = [Position(0, 0), Position(50, 0)]
        topology = Topology(positions, comm_range=70.0)
        network = Network(engine, topology, ChannelModel(loss_probability=0.5))
        received = []
        network.register(1, lambda *a: received.append(a))
        outcomes = [network.send(0, 1, "x", 10, "t").delivered for _ in range(200)]
        assert any(outcomes) and not all(outcomes)

    def test_lost_message_still_billed(self):
        engine = EventEngine(seed=5)
        positions = [Position(0, 0), Position(50, 0)]
        topology = Topology(positions, comm_range=70.0)
        network = Network(engine, topology, ChannelModel(loss_probability=0.99))
        network.register(1, lambda *a: None)
        for _ in range(50):
            network.send(0, 1, "x", 10, "t")
        assert network.trace.total_bytes() == 500
