"""Unit tests for the PoS mechanism (Eqs. 7–9, 14)."""

import math

import pytest

from repro.core.pos import (
    MiningClaim,
    compute_amendment,
    compute_hit,
    compute_pos_hash,
    mining_delay,
    per_second_mining_loop,
    satisfies_target,
    target_value,
)

M = 2**64


class TestPosHash:
    def test_deterministic(self):
        assert compute_pos_hash("ab", "addr") == compute_pos_hash("ab", "addr")

    def test_varies_with_account(self):
        assert compute_pos_hash("ab", "addr1") != compute_pos_hash("ab", "addr2")

    def test_varies_with_previous(self):
        assert compute_pos_hash("ab", "addr") != compute_pos_hash("cd", "addr")

    def test_chains_forward(self):
        h1 = compute_pos_hash("genesis", "a")
        h2 = compute_pos_hash(h1, "a")
        assert h1 != h2


class TestHit:
    def test_in_range(self):
        for account in ("a", "b", "c", "d"):
            hit = compute_hit("prev", account, M)
            assert 0 <= hit < M

    def test_deterministic_and_verifiable(self):
        # "Each node can also validate the hit of other nodes" (Section V-A).
        assert compute_hit("prev", "acct", M) == compute_hit("prev", "acct", M)

    def test_unique_per_account(self):
        hits = {compute_hit("prev", f"acct-{i}", M) for i in range(50)}
        assert len(hits) == 50

    def test_modulus_applied(self):
        small = compute_hit("prev", "acct", 10)
        assert 0 <= small < 10

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            compute_hit("prev", "acct", 1)

    def test_roughly_uniform(self):
        # Mean of many hits should be near M/2 (within 10 %).
        hits = [compute_hit("prev", f"n{i}", M) for i in range(500)]
        mean = sum(hits) / len(hits)
        assert abs(mean - M / 2) < 0.1 * M


class TestAmendment:
    def test_paper_formula(self):
        # B = M / ((n+1) · t0 · Ū)
        assert compute_amendment(M, 10, 60.0, 2.0) == pytest.approx(
            M / (11 * 60.0 * 2.0)
        )

    def test_decreases_with_stake_growth(self):
        assert compute_amendment(M, 10, 60.0, 10.0) < compute_amendment(M, 10, 60.0, 1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compute_amendment(M, 0, 60.0, 1.0)
        with pytest.raises(ValueError):
            compute_amendment(M, 10, 0.0, 1.0)
        with pytest.raises(ValueError):
            compute_amendment(M, 10, 60.0, 0.0)


class TestTarget:
    def test_grows_linearly_with_time(self):
        assert target_value(2.0, 3.0, 10.0, 5.0) == pytest.approx(300.0)
        assert target_value(2.0, 3.0, 20.0, 5.0) == pytest.approx(600.0)

    def test_contribution_advantage(self):
        # More tokens or more stored data → higher target (Section V-A).
        base = target_value(1.0, 1.0, 10.0, 5.0)
        assert target_value(2.0, 1.0, 10.0, 5.0) > base
        assert target_value(1.0, 2.0, 10.0, 5.0) > base

    def test_satisfies_boundary(self):
        assert satisfies_target(100, 1.0, 1.0, 100.0, 1.0)
        assert not satisfies_target(101, 1.0, 1.0, 100.0, 1.0)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            target_value(1.0, 1.0, -1.0, 1.0)


class TestMiningDelay:
    def test_closed_form_matches_loop(self):
        for hit in (0, 1, 57, 1000, 99999):
            for rate_args in ((1.0, 3.0, 7.0), (2.0, 2.0, 11.0)):
                delay = mining_delay(hit, *rate_args)
                loop = list(per_second_mining_loop(hit, *rate_args))
                assert loop[-1][2] is True
                assert loop[-1][0] == delay

    def test_minimum_one_second(self):
        assert mining_delay(0, 100.0, 100.0, 100.0) == 1

    def test_zero_rate_never_mines(self):
        assert mining_delay(10, 0.0, 1.0, 1.0) is None

    def test_higher_contribution_mines_no_later(self):
        for hit in (123456, 10**12):
            low = mining_delay(hit, 1.0, 1.0, 1.0)
            high = mining_delay(hit, 5.0, 3.0, 1.0)
            assert high <= low

    def test_loop_yields_every_second(self):
        ticks = list(per_second_mining_loop(10, 1.0, 1.0, 2.0))
        assert [t for t, _, _ in ticks] == list(range(1, len(ticks) + 1))

    def test_loop_respects_max_seconds(self):
        ticks = list(per_second_mining_loop(10**18, 1.0, 1.0, 1e-6, max_seconds=5))
        assert len(ticks) == 5
        assert not ticks[-1][2]


class TestMiningClaim:
    def test_valid_claim(self):
        hit = compute_hit("prev", "acct", M)
        claim = MiningClaim(
            miner_address="acct",
            hit=hit,
            stake=1.0,
            stored=1.0,
            elapsed=float(hit + 1),
            amendment=1.0,
        )
        assert claim.is_valid("prev", M)

    def test_forged_hit_rejected(self):
        # "a node cannot fake a hit to get unfair advantages" (Section V-A).
        claim = MiningClaim(
            miner_address="acct",
            hit=0,  # claims the best possible hit
            stake=1.0,
            stored=1.0,
            elapsed=1.0,
            amendment=1.0,
        )
        if compute_hit("prev", "acct", M) != 0:
            assert not claim.is_valid("prev", M)

    def test_unsatisfied_target_rejected(self):
        hit = compute_hit("prev", "acct", M)
        claim = MiningClaim(
            miner_address="acct",
            hit=hit,
            stake=1.0,
            stored=1.0,
            elapsed=0.0,  # R = 0 < h
            amendment=1.0,
        )
        if hit > 0:
            assert not claim.is_valid("prev", M)


class TestExpectedInterval:
    def test_mean_min_delay_near_t0(self):
        """Monte-Carlo check of Section V-B: E[min_i t_i] ≈ t0.

        With n equal-stake nodes, B from Eq. 14 makes the minimum mining
        delay average t0 (the race winner's time).
        """
        n, t0 = 20, 60.0
        b = compute_amendment(M, n, t0, 1.0)
        intervals = []
        for round_index in range(300):
            delays = [
                mining_delay(compute_hit(f"prev-{round_index}", f"acct-{i}", M), 1.0, 1.0, b)
                for i in range(n)
            ]
            intervals.append(min(delays))
        mean = sum(intervals) / len(intervals)
        assert mean == pytest.approx(t0, rel=0.15)
