"""Unit tests for transmission accounting."""

import pytest

from repro.simnet.trace import TransmissionTrace


class TestTransmissionTrace:
    def test_record_hop_bills_both_ends(self):
        trace = TransmissionTrace()
        trace.record_hop(0, 1, 500, "data")
        assert trace.node(0).tx_bytes == 500
        assert trace.node(1).rx_bytes == 500
        assert trace.node(0).rx_bytes == 0
        assert trace.node(1).tx_bytes == 0

    def test_message_counters(self):
        trace = TransmissionTrace()
        trace.record_hop(0, 1, 10, "a")
        trace.record_hop(1, 2, 10, "a")
        assert trace.node(1).tx_messages == 1
        assert trace.node(1).rx_messages == 1
        assert trace.total_messages() == 2

    def test_total_bytes_counts_each_hop(self):
        trace = TransmissionTrace()
        trace.record_hop(0, 1, 100, "a")
        trace.record_hop(1, 2, 100, "a")
        assert trace.total_bytes() == 200

    def test_category_breakdown(self):
        trace = TransmissionTrace()
        trace.record_hop(0, 1, 100, "block")
        trace.record_hop(0, 1, 50, "data")
        trace.record_hop(0, 1, 25, "data")
        assert trace.category_bytes("block") == 100
        assert trace.category_bytes("data") == 75
        assert trace.categories() == {"block": 100, "data": 75}
        assert trace.category_messages() == {"block": 1, "data": 2}

    def test_unknown_category_is_zero(self):
        assert TransmissionTrace().category_bytes("nothing") == 0

    def test_per_node_bytes_order(self):
        trace = TransmissionTrace()
        trace.record_hop(0, 1, 10, "a")
        trace.record_hop(2, 0, 7, "a")
        assert trace.per_node_bytes([0, 1, 2]) == [17, 10, 7]

    def test_average_includes_silent_nodes(self):
        trace = TransmissionTrace()
        trace.record_hop(0, 1, 100, "a")
        # Nodes 2 and 3 never appear but still count in the mean.
        assert trace.average_node_bytes(4) == pytest.approx(200 / 4)

    def test_average_invalid_count(self):
        with pytest.raises(ValueError):
            TransmissionTrace().average_node_bytes(0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TransmissionTrace().record_hop(0, 1, -5, "a")

    def test_total_bytes_property(self):
        trace = TransmissionTrace()
        trace.record_hop(0, 1, 10, "a")
        assert trace.node(0).total_bytes == 10
        assert trace.node(1).total_bytes == 10

    def test_snapshot(self):
        trace = TransmissionTrace()
        trace.record_hop(0, 1, 10, "a")
        snap = trace.snapshot()
        assert snap["total_bytes"] == 10
        assert snap["total_messages"] == 1
        assert snap["categories"] == {"a": 10}

    def test_reset(self):
        trace = TransmissionTrace()
        trace.record_hop(0, 1, 10, "a")
        trace.reset()
        assert trace.total_bytes() == 0
        assert trace.node(0).tx_bytes == 0
