"""Unit tests for the block-recovery sync state machine."""

import pytest

from repro.core.block import make_genesis
from repro.core.sync import SyncState, plan_block_requests


def blockish(index):
    """A lightweight stand-in carrying only the index attribute."""
    import dataclasses

    from repro.core.block import Block

    return Block(
        index=index,
        timestamp=float(index),
        previous_hash="00" * 32,
        pos_hash="11" * 32,
        miner=0,
        miner_address="x",
        hit=0,
        target_b=1.0,
    )


class TestSyncState:
    def test_begin_once(self):
        sync = SyncState()
        sync.begin(now=5.0)
        sync.begin(now=9.0)
        assert sync.started_at == 5.0
        assert sync.recovering

    def test_buffer_and_missing_below(self):
        sync = SyncState()
        sync.buffer_block(blockish(7))
        sync.buffer_block(blockish(5))
        assert sync.missing_below(tip_index=2) == [3, 4, 6]

    def test_missing_below_empty_buffer(self):
        assert SyncState().missing_below(3) == []

    def test_next_appendable(self):
        sync = SyncState()
        sync.buffer_block(blockish(4))
        assert sync.next_appendable(tip_index=3).index == 4
        assert sync.next_appendable(tip_index=1) is None

    def test_pop(self):
        sync = SyncState()
        sync.buffer_block(blockish(4))
        sync.pop(4)
        assert sync.next_appendable(3) is None

    def test_buffer_clears_outstanding(self):
        sync = SyncState()
        sync.note_requested((4, 5))
        sync.buffer_block(blockish(4))
        assert sync.outstanding == {5}

    def test_note_requested_dedups(self):
        sync = SyncState()
        assert sync.note_requested((1, 2)) == [1, 2]
        assert sync.note_requested((2, 3)) == [3]

    def test_finish_records_duration(self):
        sync = SyncState()
        sync.begin(now=10.0)
        duration = sync.finish(now=12.5)
        assert duration == pytest.approx(2.5)
        assert sync.completed_durations == [2.5]
        assert not sync.recovering

    def test_finish_idle_returns_none(self):
        assert SyncState().finish(now=1.0) is None

    def test_reset(self):
        sync = SyncState()
        sync.begin(1.0)
        sync.buffer_block(blockish(3))
        sync.note_requested((2,))
        sync.reset()
        assert not sync.recovering
        assert sync.buffered == {}
        assert sync.outstanding == set()

    def test_duplicate_buffer_keeps_first(self):
        sync = SyncState()
        first = blockish(3)
        sync.buffer_block(first)
        sync.buffer_block(blockish(3))
        assert sync.buffered[3] is first


class TestBoundedBuffers:
    def test_buffer_cap_evicts_furthest_ahead(self):
        sync = SyncState(max_buffered=3)
        for index in (4, 5, 6):
            sync.buffer_block(blockish(index))
        sync.buffer_block(blockish(3))
        # Index 6 is appendable last, so it is the one sacrificed.
        assert sorted(sync.buffered) == [3, 4, 5]
        assert sync.evicted == 1

    def test_eviction_drops_source_attribution_too(self):
        sync = SyncState(max_buffered=2)
        sync.buffer_block(blockish(4), source=10)
        sync.buffer_block(blockish(5), source=11)
        sync.buffer_block(blockish(3), source=12)
        assert sync.source_of(5) is None
        assert sync.source_of(3) == 12

    def test_duplicate_buffer_keeps_first_source(self):
        sync = SyncState()
        sync.buffer_block(blockish(3), source=10)
        sync.buffer_block(blockish(3), source=11)
        assert sync.source_of(3) == 10

    def test_pop_clears_source(self):
        sync = SyncState()
        sync.buffer_block(blockish(3), source=10)
        sync.pop(3)
        assert sync.source_of(3) is None

    def test_reset_clears_sources(self):
        sync = SyncState()
        sync.buffer_block(blockish(3), source=10)
        sync.reset()
        assert sync.sources == {}

    def test_outstanding_cap_bounds_requests(self):
        sync = SyncState(max_outstanding=3)
        assert sync.note_requested((1, 2, 3, 4, 5)) == [1, 2, 3]
        assert sync.note_requested((6,)) == []
        # Resolving one outstanding index frees budget for another.
        sync.buffer_block(blockish(2))
        assert sync.note_requested((6,)) == [6]


class TestPlanBlockRequests:
    def test_round_robin_over_neighbors(self):
        plan = plan_block_requests([1, 2, 3, 4], neighbors=[10, 20], fan_out=2)
        assert plan == {10: (1, 3), 20: (2, 4)}

    def test_fan_out_limits_targets(self):
        plan = plan_block_requests([1, 2, 3], neighbors=[10, 20, 30], fan_out=1)
        assert plan == {10: (1, 2, 3)}

    def test_no_neighbors(self):
        assert plan_block_requests([1, 2], neighbors=[]) == {}

    def test_no_missing(self):
        assert plan_block_requests([], neighbors=[1]) == {}

    def test_missing_sorted(self):
        plan = plan_block_requests([9, 1, 5], neighbors=[10], fan_out=1)
        assert plan == {10: (1, 5, 9)}
