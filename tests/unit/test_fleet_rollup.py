"""Fleet rollup over federated ``c{k}_`` samples and the `repro top` view."""

import json
import urllib.request

import pytest

from repro.cli import main
from repro.obs.live.expo import TelemetryServer
from repro.obs.live.rollup import fleet_rollup
from repro.obs.live.stream import TelemetryStream
from repro.obs.live.top import load_top_view, render_top
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitors import MonitorEvent
from repro.obs.runtime import ObsSession

pytestmark = pytest.mark.obs


FED_SAMPLE = {
    "t": 300.0,
    "queue_depth": 4,
    "fed_directory_staleness": 1.5,
    "fed_lookups_ok": 12,
    "c0_height": 10,
    "c0_mempool_depth": 2,
    "c0_saturated_nodes": 1,
    "c1_height": 7,
    "c1_mempool_depth": 5,
    "c1_saturated_nodes": 0,
    "c2_height": 12,
    "c2_mempool_depth": float("nan"),  # cluster mid-warmup
    "c2_saturated_nodes": 2,
}


class TestFleetRollup:
    def test_non_federated_sample_rolls_up_to_none(self):
        assert fleet_rollup({"t": 20.0, "height": 3, "mempool_depth": 1}) is None
        assert fleet_rollup({}) is None

    def test_spread_carries_the_cluster_attribution(self):
        rollup = fleet_rollup(FED_SAMPLE)
        assert rollup is not None
        assert rollup["clusters"] == 3
        assert rollup["cluster_ids"] == [0, 1, 2]
        height = rollup["height"]
        assert height == {
            "min": 7.0,
            "min_cluster": 1,
            "max": 12.0,
            "max_cluster": 2,
            "mean": pytest.approx(29 / 3, abs=1e-4),
        }

    def test_totals_sum_finite_values_only(self):
        rollup = fleet_rollup(FED_SAMPLE)
        # c2's NaN mempool is excluded rather than poisoning the total.
        assert rollup["mempool_total"] == 7
        assert rollup["mempool_depth"]["max_cluster"] == 1
        assert rollup["saturated_nodes_total"] == 3
        assert rollup["chaos_rejections_total"] is None

    def test_fog_tier_fields_pass_through(self):
        rollup = fleet_rollup(FED_SAMPLE)
        assert rollup["fed_directory_staleness"] == 1.5
        assert rollup["fed_lookups_ok"] == 12
        assert rollup["queue_depth"] == 4


def write_stream(directory, samples, registry=None, monitors=None):
    stream = TelemetryStream(directory, node="n0")
    for sample in samples:
        stream.on_sample(sample, metrics=registry, monitors=monitors)
    stream.close()


class TestTopView:
    def _stream_dir(self, tmp_path):
        registry = MetricsRegistry()

        class Monitors:
            events = [
                MonitorEvent(time=40.0, monitor="chain-stall",
                             severity="warning", message="stalled")
            ]

        registry.counter("net.messages_sent").inc(10)
        stream = TelemetryStream(tmp_path, node="n0")
        stream.on_sample({"t": 20.0, "height": 1, "queue_depth": 0},
                         metrics=registry, monitors=Monitors())
        registry.counter("net.messages_sent").inc(30)
        stream.on_sample({"t": 40.0, "height": 2, "queue_depth": 1},
                         metrics=registry, monitors=Monitors())
        stream.close()
        return tmp_path

    def test_view_from_stream_directory(self, tmp_path):
        view = load_top_view(str(self._stream_dir(tmp_path)))
        assert view["node"] == "n0"
        assert view["sample"]["height"] == 2
        assert view["counters"]["net.messages_sent"] == 40
        # 30 new messages over 20 logical seconds.
        assert view["msgs_per_sec"] == pytest.approx(1.5)
        assert [e["monitor"] for e in view["events"]] == ["chain-stall"]

    def test_view_from_stream_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_top_view(str(tmp_path))

    def test_view_from_snapshot_url(self, tmp_path):
        session = ObsSession(timeline_interval=20.0, origin="n3")
        session.metrics.counter("net.messages_sent").inc(8)
        session.timeline.samples.append({"t": 60.0, "height": 3})
        server = TelemetryServer(session, port=0)
        port = server.start()
        try:
            view = load_top_view(f"http://127.0.0.1:{port}")
            assert view["node"] == "n3"
            assert view["sample"]["height"] == 3
            assert view["counters"]["net.messages_sent"] == 8
        finally:
            server.stop()

    def test_render_top_single_node(self, tmp_path):
        rendered = render_top(load_top_view(str(self._stream_dir(tmp_path))))
        assert "repro top" in rendered
        assert "chain height" in rendered
        assert "msgs/sec" in rendered
        assert "chain-stall" in rendered
        # Non-federated view renders no fleet section.
        assert "fleet (" not in rendered

    def test_render_top_federated_fleet_section(self, tmp_path):
        write_stream(tmp_path, [FED_SAMPLE])
        rendered = render_top(load_top_view(str(tmp_path)))
        assert "fleet (3 clusters)" in rendered
        assert "mempool_total" in rendered
        assert "(c1)" in rendered  # min/max cluster attribution visible

    def test_top_cli_renders_once(self, tmp_path, capsys):
        self._stream_dir(tmp_path)
        assert main(["top", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "chain height" in out

    def test_top_cli_missing_source_fails(self, tmp_path, capsys):
        assert main(["top", str(tmp_path)]) == 2
