"""Unit tests: fog directory primitives, federation seeds, fed monitors.

The directory is the only thing clusters share, so its primitives carry
the federation's correctness weight: the bloom summaries must never
produce false negatives (a lookup that skips the owning cluster is a
lost item), replica merges must converge under any gossip order, and the
derived per-cluster seed streams must be stable and mutually distinct.
"""

import pytest

from repro.federation.directory import (
    BloomFilter,
    ClusterSummary,
    DirectoryReplica,
)
from repro.federation.spec import (
    FederationSpec,
    cluster_seed,
    derived_seed,
)
from repro.obs.monitors import (
    AdmissionRejectionMonitor,
    ChainStallMonitor,
    DirectoryStalenessMonitor,
    LookupFailureMonitor,
    MonitorSuite,
    PrefixedMonitor,
)
from tests.helpers import make_config

pytestmark = pytest.mark.fed


def summary(cluster_id=0, version=1, updated_at=0.0, keys=()):
    bloom = BloomFilter.sized_for(max(len(keys), 8))
    for key in keys:
        bloom.add(key)
    return ClusterSummary(
        cluster_id=cluster_id,
        version=version,
        updated_at=updated_at,
        height=version,
        chain_digest=f"digest-{cluster_id}-{version}",
        checkpoint_height=0,
        checkpoint_digest="genesis",
        item_count=len(keys),
        bloom=bloom,
        stake_top_share=0.5,
        storage_used_fraction=0.1,
        free_slots=10,
        fairness_max=1.0,
    )


class TestBloomFilter:
    def test_no_false_negatives(self):
        keys = [f"data-{i}" for i in range(200)]
        bloom = BloomFilter.sized_for(len(keys))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_is_low(self):
        keys = [f"data-{i}" for i in range(500)]
        bloom = BloomFilter.sized_for(len(keys))
        for key in keys:
            bloom.add(key)
        probes = [f"absent-{i}" for i in range(2000)]
        hits = sum(1 for probe in probes if probe in bloom)
        # 10 bits/item targets ~1%; leave generous slack for hash luck.
        assert hits / len(probes) < 0.05

    def test_digest_tracks_content(self):
        a = BloomFilter.sized_for(64)
        b = BloomFilter.sized_for(64)
        assert a.digest() == b.digest()
        a.add("x")
        assert a.digest() != b.digest()
        b.add("x")
        assert a == b and a.digest() == b.digest()

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter.sized_for(8)
        assert "anything" not in bloom
        assert bloom.count == 0 and bloom.fill_ratio() == 0.0


class TestDirectoryReplica:
    def test_merge_keeps_higher_version(self):
        replica = DirectoryReplica()
        assert replica.merge(summary(version=2))
        assert not replica.merge(summary(version=1))
        assert replica.entries[0].version == 2
        assert replica.merge(summary(version=3))
        assert replica.entries[0].version == 3

    def test_merge_is_order_independent(self):
        updates = [summary(cluster_id=k % 3, version=v) for k in range(3) for v in (1, 2, 3)]
        forward = DirectoryReplica()
        forward.merge_all(updates)
        backward = DirectoryReplica()
        backward.merge_all(reversed(updates))
        assert forward.digest() == backward.digest()
        assert forward.entries == backward.entries

    def test_staleness_counts_missing_clusters_from_zero(self):
        replica = DirectoryReplica()
        replica.merge(summary(cluster_id=0, updated_at=90.0))
        # Cluster 1 never reported: its entry is as old as the run.
        assert replica.staleness(now=100.0, cluster_count=2) == 100.0
        assert replica.staleness(now=100.0, cluster_count=1) == 10.0

    def test_candidates_exclude_origin_and_respect_bloom(self):
        replica = DirectoryReplica()
        replica.merge(summary(cluster_id=0, keys=("item-a",)))
        replica.merge(summary(cluster_id=1, keys=("item-a", "item-b")))
        replica.merge(summary(cluster_id=2, keys=()))
        assert replica.candidates_for("item-a", exclude=0) == [1]
        assert set(replica.candidates_for("item-a", exclude=5)) == {0, 1}
        assert replica.candidates_for("item-b", exclude=1) == []


class TestFederationSeeds:
    def test_cluster_seeds_are_stable_and_distinct(self):
        seeds = [cluster_seed(42, k) for k in range(8)]
        assert seeds == [cluster_seed(42, k) for k in range(8)]
        assert len(set(seeds)) == len(seeds)
        assert seeds != [cluster_seed(43, k) for k in range(8)]

    def test_derived_streams_do_not_collide(self):
        labels = ("layout", "swim", "workload", "churn", "fog-peer", "lookups")
        values = {derived_seed(7, label, 0) for label in labels}
        assert len(values) == len(labels)
        assert derived_seed(7, "swim", 0) != derived_seed(7, "swim", 1)

    def test_spec_validation(self):
        config = make_config()
        with pytest.raises(ValueError):
            FederationSpec(cluster_count=0, nodes_per_cluster=4, config=config)
        with pytest.raises(ValueError):
            FederationSpec(cluster_count=2, nodes_per_cluster=1, config=config)
        with pytest.raises(ValueError):
            FederationSpec(
                cluster_count=2, nodes_per_cluster=4, config=config,
                super_peer_count=0,
            )
        spec = FederationSpec(cluster_count=3, nodes_per_cluster=4, config=config)
        assert spec.total_nodes == 12
        assert len({spec.seed_for(k) for k in range(3)}) == 3
        assert {spec.home_peer_of(k) for k in range(3)} <= set(range(spec.super_peer_count))


class TestFederationMonitors:
    def test_directory_staleness_levels(self):
        monitor = DirectoryStalenessMonitor(refresh_seconds=30.0)
        assert monitor.level({"fed_directory_staleness": 40.0})[0] == "ok"
        assert monitor.level({"fed_directory_staleness": 120.0})[0] == "warning"
        assert monitor.level({"fed_directory_staleness": 400.0})[0] == "critical"
        assert monitor.level({})[0] == "ok"  # non-federated sample

    def test_lookup_failures_level_on_delta(self):
        monitor = LookupFailureMonitor()
        assert monitor.level({"fed_lookup_failures": 0})[0] == "ok"
        assert monitor.level({"fed_lookup_failures": 2})[0] == "warning"
        # No new failures since the last sample: recovered.
        assert monitor.level({"fed_lookup_failures": 2})[0] == "ok"

    def test_prefixed_monitor_strips_prefix_and_renames(self):
        inner = ChainStallMonitor(t0=10.0)
        wrapped = PrefixedMonitor(inner, "c2_", "c2")
        assert wrapped.name == "c2/chain-stall"
        level, *_ = wrapped.level({"t": 0.0, "c2_height": 1})
        assert level == "ok"
        # 100 s with no growth at t0=10 crosses the 5*t0 stall threshold.
        level, message, *_ = wrapped.level({"t": 100.0, "c2_height": 1})
        assert level == "critical" and "stalled" in message

    def test_prefixed_monitor_isolates_clusters(self):
        healthy = PrefixedMonitor(AdmissionRejectionMonitor(), "c0_", "c0")
        noisy = PrefixedMonitor(AdmissionRejectionMonitor(), "c1_", "c1")
        sample = {
            "t": 60.0,
            "c0_chaos_rejections": 0,
            "c1_chaos_rejections": 5,
        }
        assert healthy.level(sample)[0] == "ok"
        assert noisy.level(sample)[0] == "warning"

    def test_for_federation_suite_shape(self):
        class _Domain:
            def __init__(self, cluster_id):
                self.cluster_id = cluster_id

        class _Federation:
            spec = FederationSpec(
                cluster_count=2, nodes_per_cluster=4, config=make_config()
            )
            domains = [_Domain(0), _Domain(1)]

        suite = MonitorSuite.for_federation(_Federation())
        names = [monitor.name for monitor in suite.monitors]
        assert "directory-staleness" in names
        assert "lookup-failures" in names
        assert "c0/chain-stall" in names and "c1/chain-stall" in names
        # Raft leader-flap reads global registry fields — must not be cloned.
        assert not any("leader-flap" in name for name in names)
