"""Unit tests for the energy substrate (battery, profile, meter)."""

import pytest

from repro.energy.battery import Battery
from repro.energy.meter import EnergyMeter
from repro.energy.profile import (
    GALAXY_S8_BATTERY_JOULES,
    GALAXY_S8_PROFILE,
    EnergyProfile,
)


class TestBattery:
    def test_starts_full(self):
        assert Battery(capacity_joules=100.0).remaining_percent == 100.0

    def test_drain(self):
        battery = Battery(capacity_joules=100.0)
        assert battery.drain(25.0) == 25.0
        assert battery.remaining_percent == 75.0
        assert battery.consumed_joules == 25.0

    def test_drain_clamps_at_empty(self):
        battery = Battery(capacity_joules=10.0)
        assert battery.drain(25.0) == 10.0
        assert battery.depleted
        assert battery.remaining_percent == 0.0

    def test_negative_drain_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=10.0).drain(-1.0)

    def test_recharge(self):
        battery = Battery(capacity_joules=10.0)
        battery.drain(10.0)
        battery.recharge_full()
        assert battery.remaining_percent == 100.0
        assert not battery.depleted

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=0.0)

    def test_partial_initial_charge(self):
        battery = Battery(capacity_joules=100.0, remaining_joules=40.0)
        assert battery.remaining_percent == 40.0

    def test_overfull_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=100.0, remaining_joules=150.0)


class TestEnergyProfile:
    def test_galaxy_s8_capacity(self):
        # 3000 mAh × 3.85 V × 3.6 J per mAh·V
        assert GALAXY_S8_BATTERY_JOULES == pytest.approx(41_580.0)

    def test_pow_energy_linear_in_attempts(self):
        profile = EnergyProfile(pow_hash_energy=2.0)
        assert profile.pow_mining_energy(10) == 20.0

    def test_pos_energy_linear_in_time(self):
        profile = EnergyProfile(pos_tick_energy=1.5)
        assert profile.pos_mining_energy(25.0) == 37.5

    def test_radio_energy(self):
        profile = EnergyProfile(tx_energy_per_byte=2.0, rx_energy_per_byte=1.0)
        assert profile.radio_energy(3, 5) == 11.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            GALAXY_S8_PROFILE.pow_mining_energy(-1)
        with pytest.raises(ValueError):
            GALAXY_S8_PROFILE.pos_mining_energy(-1.0)
        with pytest.raises(ValueError):
            GALAXY_S8_PROFILE.radio_energy(-1, 0)

    def test_negative_profile_field_rejected(self):
        with pytest.raises(ValueError):
            EnergyProfile(pow_hash_energy=-1.0)

    def test_paper_calibration_pow_blocks_per_percent(self):
        # Paper: "4 blocks consume about 1% battery of the phone in PoW".
        per_block = GALAXY_S8_PROFILE.pow_mining_energy(16**4)
        one_percent = GALAXY_S8_PROFILE.battery_capacity_joules / 100.0
        assert one_percent / per_block == pytest.approx(4.0, rel=0.05)

    def test_paper_calibration_pos_blocks_per_percent(self):
        # Paper: "11 blocks consume 1% battery" at 25 s per block.
        per_block = GALAXY_S8_PROFILE.pos_mining_energy(25.0)
        one_percent = GALAXY_S8_PROFILE.battery_capacity_joules / 100.0
        assert one_percent / per_block == pytest.approx(11.0, rel=0.05)


class TestEnergyMeter:
    def test_pow_charge_recorded(self):
        meter = EnergyMeter()
        meter.charge_pow_hashes(1000)
        assert meter.consumed_by("pow_mining") > 0
        assert meter.remaining_percent < 100.0

    def test_pos_charge_recorded(self):
        meter = EnergyMeter()
        meter.charge_pos_ticks(60.0)
        assert meter.consumed_by("pos_mining") == pytest.approx(90.0)

    def test_signature_and_radio_categories(self):
        meter = EnergyMeter()
        meter.charge_signature(3)
        meter.charge_radio(tx_bytes=1000, rx_bytes=500)
        ledger = meter.ledger()
        assert set(ledger) == {"crypto", "radio"}

    def test_total_consumed_matches_battery(self):
        meter = EnergyMeter()
        meter.charge_pow_hashes(500)
        meter.charge_pos_ticks(10)
        assert meter.total_consumed() == pytest.approx(
            meter.battery.consumed_joules
        )

    def test_depletion_stops_accounting_at_zero(self):
        profile = EnergyProfile(battery_capacity_joules=10.0, pow_hash_energy=1.0)
        meter = EnergyMeter(profile=profile)
        meter.charge_pow_hashes(100)
        assert meter.depleted
        assert meter.total_consumed() == pytest.approx(10.0)

    def test_idle_power(self):
        profile = EnergyProfile(idle_power=0.5)
        meter = EnergyMeter(profile=profile)
        meter.charge_idle(10.0)
        assert meter.consumed_by("idle") == pytest.approx(5.0)

    def test_negative_counts_rejected(self):
        meter = EnergyMeter()
        with pytest.raises(ValueError):
            meter.charge_signature(-1)
        with pytest.raises(ValueError):
            meter.charge_idle(-1.0)
