"""Unit tests for the PoW baseline."""

import numpy as np
import pytest

from repro.core.pow import (
    PAPER_HASH_RATE,
    PAPER_POW_DIFFICULTY,
    PowMiner,
    expected_attempts,
    find_pow_nonce,
    hash_meets_difficulty,
)
from repro.energy.meter import EnergyMeter


class TestDifficulty:
    def test_expected_attempts(self):
        assert expected_attempts(0) == 1
        assert expected_attempts(1) == 16
        assert expected_attempts(4) == 65536

    def test_paper_difficulty_constant(self):
        assert PAPER_POW_DIFFICULTY == 4

    def test_paper_hash_rate_gives_25s_blocks(self):
        assert expected_attempts(4) / PAPER_HASH_RATE == pytest.approx(25.0)

    def test_negative_difficulty_rejected(self):
        with pytest.raises(ValueError):
            expected_attempts(-1)

    def test_hash_meets_difficulty(self):
        assert hash_meets_difficulty("000abc", 3)
        assert not hash_meets_difficulty("00abc0", 3)
        assert hash_meets_difficulty("anything", 0)


class TestRealBruteForce:
    def test_finds_valid_nonce(self):
        nonce, attempts = find_pow_nonce("payload", difficulty=2)
        assert attempts == nonce + 1
        from repro.crypto.hashing import hash_items_hex

        assert hash_items_hex("pow", "payload", nonce).startswith("00")

    def test_attempts_scale_with_difficulty(self):
        # Average over a few payloads: difficulty 2 needs ~16x difficulty 1.
        attempts_d1 = sum(
            find_pow_nonce(f"p{i}", 1)[1] for i in range(10)
        )
        attempts_d2 = sum(
            find_pow_nonce(f"p{i}", 2)[1] for i in range(10)
        )
        assert attempts_d2 > attempts_d1

    def test_max_attempts_enforced(self):
        with pytest.raises(RuntimeError):
            find_pow_nonce("payload", difficulty=8, max_attempts=10)


class TestPowMiner:
    def test_sampled_attempts_near_expectation(self, rng):
        miner = PowMiner(EnergyMeter(), difficulty=4)
        results = [miner.mine_block(rng) for _ in range(300)]
        mean_attempts = np.mean([r.attempts for r in results])
        assert mean_attempts == pytest.approx(65536, rel=0.15)

    def test_duration_follows_hash_rate(self, rng):
        miner = PowMiner(EnergyMeter(), difficulty=2, hash_rate=100.0)
        result = miner.mine_block(rng)
        assert result.duration_seconds == pytest.approx(result.attempts / 100.0)

    def test_energy_drains_battery(self, rng):
        meter = EnergyMeter()
        miner = PowMiner(meter, difficulty=4)
        before = meter.remaining_percent
        miner.mine_block(rng)
        assert meter.remaining_percent < before

    def test_mine_until_depleted_stops(self, rng):
        meter = EnergyMeter()
        miner = PowMiner(meter, difficulty=4)
        results = miner.mine_until_depleted(rng)
        assert meter.depleted
        assert results[-1].battery_remaining_percent == pytest.approx(0.0, abs=0.5)
        assert miner.blocks_mined == len(results)

    def test_battery_percent_monotone(self, rng):
        miner = PowMiner(EnergyMeter(), difficulty=4)
        results = [miner.mine_block(rng) for _ in range(20)]
        percents = [r.battery_remaining_percent for r in results]
        assert percents == sorted(percents, reverse=True)

    def test_paper_blocks_per_percent(self, rng):
        # ~4 blocks per 1 % of battery at difficulty 4 (Fig. 6).
        meter = EnergyMeter()
        miner = PowMiner(meter, difficulty=4)
        results = []
        while meter.remaining_percent > 90.0:
            results.append(miner.mine_block(rng))
        blocks_per_percent = len(results) / (100.0 - meter.remaining_percent)
        assert blocks_per_percent == pytest.approx(4.0, rel=0.2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PowMiner(EnergyMeter(), difficulty=-1)
        with pytest.raises(ValueError):
            PowMiner(EnergyMeter(), hash_rate=0.0)
