"""Continuous sampling profiler and the flamegraph renderer."""

import threading
import time

import pytest

from repro.obs.live.flame import render_flamegraph_svg, write_flamegraph
from repro.obs.live.profiler import (
    MAX_DEPTH,
    SamplingProfiler,
    read_folded,
    top_functions,
    write_folded,
)

pytestmark = [pytest.mark.obs, pytest.mark.profile]


def _busy_loop(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(500))


class TestSamplingProfiler:
    def test_samples_a_busy_target_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_loop, args=(stop,), daemon=True)
        worker.start()
        profiler = SamplingProfiler(hz=200.0, thread_id=worker.ident)
        profiler.start()
        time.sleep(0.4)
        profiler.stop()
        stop.set()
        worker.join(timeout=5.0)

        assert profiler.samples > 0
        folded = profiler.folded()
        assert folded
        # Stacks are root→leaf strings; the busy loop must show up.
        assert any("_busy_loop" in stack for stack in folded)
        assert all(len(stack.split(";")) <= MAX_DEPTH for stack in folded)

    def test_defaults_to_the_calling_thread(self):
        with SamplingProfiler(hz=500.0) as profiler:
            deadline = time.monotonic() + 0.3
            while time.monotonic() < deadline:
                sum(i * i for i in range(500))
        assert profiler.samples > 0
        assert profiler.thread_id == threading.get_ident()

    def test_double_start_is_an_error(self):
        profiler = SamplingProfiler(hz=50.0).start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(hz=50.0).start()
        profiler.stop()
        profiler.stop()

    def test_nonpositive_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)


class TestFoldedStacks:
    FOLDED = {
        "main;solve;inner": 60,
        "main;solve": 25,
        "main;io": 10,
        "main;recurse;recurse": 5,
    }

    def test_write_read_round_trip(self, tmp_path):
        path = write_folded(self.FOLDED, tmp_path / "profile_folded.txt")
        assert read_folded(path) == self.FOLDED
        # Most-sampled stack first — stable artefact ordering.
        first = path.read_text(encoding="utf-8").splitlines()[0]
        assert first == "main;solve;inner 60"

    def test_read_tolerates_junk_lines(self, tmp_path):
        path = tmp_path / "folded.txt"
        path.write_text("a;b 3\n\nnot a folded line\nc 2\n", encoding="utf-8")
        assert read_folded(path) == {"a;b": 3, "c": 2}

    def test_top_functions_self_and_total(self):
        rows = {row["function"]: row for row in top_functions(self.FOLDED, n=10)}
        # 'inner' leads on self samples.
        assert rows["inner"]["self"] == 60
        assert rows["inner"]["total"] == 60
        # 'solve' is on 85 samples total but leaf on only 25.
        assert rows["solve"]["self"] == 25
        assert rows["solve"]["total"] == 85
        # 'main' is everywhere but never a leaf.
        assert rows["main"]["self"] == 0
        assert rows["main"]["total"] == 100
        assert rows["main"]["total_pct"] == 100.0
        # Recursion counted once per stack, not per frame.
        assert rows["recurse"]["total"] == 5

    def test_top_functions_ranked_by_self(self):
        names = [row["function"] for row in top_functions(self.FOLDED, n=3)]
        assert names == ["inner", "solve", "io"]

    def test_top_functions_empty_profile(self):
        assert top_functions({}, n=5) == []


class TestFlamegraph:
    def test_svg_structure_and_determinism(self):
        svg = render_flamegraph_svg(TestFoldedStacks.FOLDED, title="t")
        assert svg.startswith("<svg") or svg.startswith("<?xml")
        assert "</svg>" in svg
        for name in ("main", "solve", "inner", "io"):
            assert name in svg
        assert "60 samples" in svg
        # Deterministic: regenerating the artefact is byte-stable.
        assert svg == render_flamegraph_svg(TestFoldedStacks.FOLDED, title="t")

    def test_empty_profile_renders_placeholder(self):
        svg = render_flamegraph_svg({})
        assert "no samples" in svg

    def test_write_flamegraph(self, tmp_path):
        target = write_flamegraph(
            TestFoldedStacks.FOLDED, tmp_path / "flame.svg", title="x"
        )
        assert target.exists()
        assert "</svg>" in target.read_text(encoding="utf-8")
