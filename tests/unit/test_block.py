"""Unit tests for blocks."""

import dataclasses

import pytest

from repro.core.block import GENESIS_PREVIOUS_HASH, Block, make_genesis
from repro.core.metadata import create_metadata


@pytest.fixture
def genesis():
    return make_genesis(node_ids=(0, 1, 2), initial_b=1e15)


@pytest.fixture
def child(genesis, account):
    return Block(
        index=1,
        timestamp=60.0,
        previous_hash=genesis.current_hash,
        pos_hash="ab" * 32,
        miner=1,
        miner_address=account.address,
        hit=12345,
        target_b=1e15,
    )


class TestGenesis:
    def test_is_genesis(self, genesis):
        assert genesis.is_genesis
        assert genesis.index == 0

    def test_previous_hash_sentinel(self, genesis):
        assert genesis.previous_hash == GENESIS_PREVIOUS_HASH

    def test_all_nodes_store_genesis(self, genesis):
        assert genesis.storing_nodes == (0, 1, 2)

    def test_deterministic(self):
        a = make_genesis((0, 1), 1.0)
        b = make_genesis((0, 1), 1.0)
        assert a.current_hash == b.current_hash

    def test_varies_with_membership(self):
        assert make_genesis((0, 1), 1.0).current_hash != make_genesis((0, 2), 1.0).current_hash


class TestBlockHash:
    def test_hash_set_on_construction(self, child):
        assert child.current_hash
        assert child.hash_is_valid()

    def test_hash_covers_metadata(self, genesis, account):
        item = create_metadata(account, 1, 0, 10.0)
        args = dict(
            index=1,
            timestamp=60.0,
            previous_hash=genesis.current_hash,
            pos_hash="ab" * 32,
            miner=1,
            miner_address=account.address,
            hit=1,
            target_b=1.0,
        )
        without = Block(**args)
        with_item = Block(**args, metadata_items=(item.with_storing_nodes((0,)),))
        assert without.current_hash != with_item.current_hash

    def test_hash_covers_storing_nodes(self, child):
        other = dataclasses.replace(
            child, storing_nodes=(0, 1), current_hash=""
        )
        assert other.current_hash != child.current_hash

    def test_tampered_block_detectable(self, child):
        tampered = dataclasses.replace(child, hit=child.hit + 1)
        # replace() keeps the old current_hash → invalid.
        assert not tampered.hash_is_valid()

    def test_hash_covers_recent_cache_nodes(self, child):
        other = dataclasses.replace(child, recent_cache_nodes=(2,), current_hash="")
        assert other.current_hash != child.current_hash


class TestLinkage:
    def test_links_to_parent(self, genesis, child):
        assert child.links_to(genesis)

    def test_wrong_index_fails(self, genesis, child):
        wrong = dataclasses.replace(child, index=2, current_hash="")
        assert not wrong.links_to(genesis)

    def test_wrong_prev_hash_fails(self, genesis, child):
        wrong = dataclasses.replace(child, previous_hash="0" * 64, current_hash="")
        assert not wrong.links_to(genesis)

    def test_timestamp_before_parent_fails(self, genesis, child):
        late_genesis = make_genesis((0, 1, 2), 1.0, timestamp=100.0)
        assert not dataclasses.replace(
            child, previous_hash=late_genesis.current_hash, current_hash=""
        ).links_to(late_genesis)


class TestWireSize:
    def test_header_only(self, child):
        assert child.wire_size() == 256

    def test_grows_with_contents(self, genesis, account, child):
        item = create_metadata(account, 1, 0, 10.0).with_storing_nodes((0, 1))
        bigger = dataclasses.replace(
            child, metadata_items=(item,), storing_nodes=(0, 2), current_hash=""
        )
        assert bigger.wire_size() > child.wire_size()

    def test_typical_block_under_10kb(self, genesis, account, child):
        # Paper: "average block size is less than 10 KB" — 3 items/minute at
        # a 60 s interval ≈ 3 items per block.
        items = tuple(
            create_metadata(account, 1, i, 10.0).with_storing_nodes((0, 1, 2))
            for i in range(3)
        )
        block = dataclasses.replace(child, metadata_items=items, current_hash="")
        assert block.wire_size() < 10_000


class TestValidation:
    def test_negative_index_rejected(self, genesis, account):
        with pytest.raises(ValueError):
            Block(
                index=-1,
                timestamp=0.0,
                previous_hash=genesis.current_hash,
                pos_hash="ab",
                miner=0,
                miner_address=account.address,
                hit=0,
                target_b=1.0,
            )

    def test_negative_hit_rejected(self, genesis, account):
        with pytest.raises(ValueError):
            Block(
                index=1,
                timestamp=0.0,
                previous_hash=genesis.current_hash,
                pos_hash="ab",
                miner=0,
                miner_address=account.address,
                hit=-1,
                target_b=1.0,
            )
