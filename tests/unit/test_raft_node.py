"""Unit tests for Raft node behaviour on a tiny fully-connected network."""

import pytest

from repro.raft.cluster import RaftCluster
from repro.raft.messages import RAFT_CATEGORY, AppendEntries, RequestVote
from repro.raft.node import RaftNode, Role
from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.topology import Position, Topology
from repro.simnet.transport import Network


def make_cluster(size=3, seed=0):
    engine = EventEngine(seed=seed)
    # A tight cluster: all nodes in radio range of each other.
    positions = [Position(10.0 * i, 0.0) for i in range(size)]
    topology = Topology(positions, comm_range=200.0)
    network = Network(engine, topology, ChannelModel(bandwidth=None))
    cluster = RaftCluster(list(range(size)), network, engine)
    return engine, network, cluster


class TestElection:
    def test_exactly_one_leader_emerges(self):
        engine, _, cluster = make_cluster()
        cluster.start()
        leader = cluster.wait_for_leader()
        leaders = [n for n in cluster.nodes.values() if n.is_leader]
        assert len(leaders) == 1
        assert leaders[0] is leader

    def test_followers_learn_leader_id(self):
        engine, _, cluster = make_cluster()
        cluster.start()
        leader = cluster.wait_for_leader()
        engine.run_until(engine.now + 1.0)
        for node in cluster.nodes.values():
            assert node.leader_id == leader.node_id

    def test_single_node_cluster_self_elects(self):
        engine, network, _ = make_cluster(size=2)
        solo = RaftNode(node_id=5, peers=[], network=network, engine=engine)
        solo.start()
        engine.run_until(engine.now + 2.0)
        assert solo.is_leader

    def test_peers_cannot_include_self(self):
        engine, network, _ = make_cluster()
        with pytest.raises(ValueError):
            RaftNode(node_id=0, peers=[0, 1], network=network, engine=engine)


class TestReplication:
    def test_command_committed_everywhere(self):
        engine, _, cluster = make_cluster()
        cluster.start()
        index = cluster.submit_via_leader("set x=1")
        cluster.wait_for_commit(index)
        engine.run_until(engine.now + 1.0)
        for node in cluster.nodes.values():
            assert node.committed_commands() == ["set x=1"]

    def test_commands_apply_in_order(self):
        engine, _, cluster = make_cluster()
        cluster.start()
        for i in range(5):
            index = cluster.submit_via_leader(f"cmd-{i}")
        cluster.wait_for_commit(index)
        engine.run_until(engine.now + 1.0)
        for node_id in cluster.nodes:
            assert cluster.applied_commands(node_id) == [f"cmd-{i}" for i in range(5)]

    def test_follower_submit_returns_none(self):
        engine, _, cluster = make_cluster()
        cluster.start()
        leader = cluster.wait_for_leader()
        follower = next(
            n for n in cluster.nodes.values() if n.node_id != leader.node_id
        )
        assert follower.submit("nope") is None

    def test_logs_consistent_property(self):
        engine, _, cluster = make_cluster(size=5)
        cluster.start()
        for i in range(3):
            index = cluster.submit_via_leader(i)
        cluster.wait_for_commit(index)
        assert cluster.logs_consistent()


class TestFailover:
    def test_new_leader_after_crash(self):
        engine, _, cluster = make_cluster(size=5)
        cluster.start()
        first = cluster.wait_for_leader()
        index = cluster.submit_via_leader("before-crash")
        cluster.wait_for_commit(index)
        cluster.crash(first.node_id)
        second = cluster.wait_for_leader(timeout=30)
        assert second.node_id != first.node_id
        assert second.current_term > first.current_term or second.current_term >= 1

    def test_committed_entries_survive_failover(self):
        engine, _, cluster = make_cluster(size=5)
        cluster.start()
        first = cluster.wait_for_leader()
        index = cluster.submit_via_leader("durable")
        cluster.wait_for_commit(index)
        cluster.crash(first.node_id)
        second = cluster.wait_for_leader(timeout=30)
        index2 = second.submit("after")
        cluster.wait_for_commit(index2, timeout=30)
        assert "durable" in second.committed_commands()
        assert cluster.logs_consistent()

    def test_minority_cannot_commit(self):
        engine, network, cluster = make_cluster(size=3)
        cluster.start()
        leader = cluster.wait_for_leader()
        # Crash both followers: leader retains leadership but cannot commit.
        for node in list(cluster.nodes.values()):
            if node.node_id != leader.node_id:
                cluster.crash(node.node_id)
        before = leader.commit_index
        leader.submit("unreachable majority")
        engine.run_until(engine.now + 3.0)
        assert leader.commit_index == before


class TestTermSafety:
    def test_stale_term_message_demotes_nobody(self):
        engine, network, cluster = make_cluster()
        cluster.start()
        leader = cluster.wait_for_leader()
        term = leader.current_term
        # Deliver a stale AppendEntries directly.
        stale = AppendEntries(
            term=0,
            leader_id=99,
            prev_log_index=0,
            prev_log_term=0,
            entries=(),
            leader_commit=0,
        )
        leader._on_message(99, stale, RAFT_CATEGORY)
        assert leader.is_leader
        assert leader.current_term == term

    def test_higher_term_request_vote_demotes_leader(self):
        engine, _, cluster = make_cluster()
        cluster.start()
        leader = cluster.wait_for_leader()
        vote = RequestVote(
            term=leader.current_term + 10,
            candidate_id=1 if leader.node_id != 1 else 2,
            last_log_index=100,
            last_log_term=100,
        )
        leader._on_message(vote.candidate_id, vote, RAFT_CATEGORY)
        assert leader.role is Role.FOLLOWER
        assert leader.current_term == vote.term

    def test_vote_granted_once_per_term(self):
        engine, network, cluster = make_cluster()
        cluster.start()
        engine.run_until(0.05)  # before any election timeout
        node = cluster.nodes[0]
        term = node.current_term + 1
        vote_a = RequestVote(term=term, candidate_id=1, last_log_index=0, last_log_term=0)
        vote_b = RequestVote(term=term, candidate_id=2, last_log_index=0, last_log_term=0)
        node._on_message(1, vote_a, RAFT_CATEGORY)
        assert node.voted_for == 1
        node._on_message(2, vote_b, RAFT_CATEGORY)
        assert node.voted_for == 1  # second candidate denied

    def test_outdated_log_denied_vote(self):
        engine, _, cluster = make_cluster()
        cluster.start()
        index = cluster.submit_via_leader("entry")
        cluster.wait_for_commit(index)
        engine.run_until(engine.now + 1.0)
        node = cluster.nodes[0]
        # Candidate with an empty log in a future term must be denied.
        vote = RequestVote(
            term=node.current_term + 1, candidate_id=1, last_log_index=0, last_log_term=0
        )
        node._on_message(1, vote, RAFT_CATEGORY)
        assert node.voted_for != 1 or node.log.last_index == 0


class TestHeartbeatOverhead:
    def test_heartbeats_generate_traffic(self):
        engine, network, cluster = make_cluster()
        cluster.start()
        cluster.wait_for_leader()
        before = network.trace.category_bytes(RAFT_CATEGORY)
        engine.run_until(engine.now + 5.0)
        after = network.trace.category_bytes(RAFT_CATEGORY)
        # The paper's complaint: a steady stream of heartbeats even when idle.
        assert after > before
