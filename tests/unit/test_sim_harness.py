"""Unit tests for the simulation harness (cluster, runner, scenarios)."""

import pytest

from repro.core.config import PAPER_CONFIG, SystemConfig
from repro.sim.cluster import build_cluster
from repro.sim.runner import ChurnSpec, ExperimentSpec, run_experiment
from repro.sim.scenarios import (
    BENCH_DURATION_MINUTES,
    PAPER_DATA_RATES,
    PAPER_NODE_COUNTS,
    churn_scenario,
    data_amount_scenario,
    fdc_weight_scenario,
    mining_only_scenario,
    placement_scenario,
)


class TestBuildCluster:
    def test_builds_requested_size(self, fast_config):
        cluster = build_cluster(6, fast_config, seed=1)
        assert len(cluster.nodes) == 6
        assert cluster.node_ids == list(range(6))

    def test_minimum_two_nodes(self, fast_config):
        with pytest.raises(ValueError):
            build_cluster(1, fast_config)

    def test_accounts_deterministic_per_seed(self, fast_config):
        a = build_cluster(4, fast_config, seed=9)
        b = build_cluster(4, fast_config, seed=9)
        assert [a.accounts[i].address for i in range(4)] == [
            b.accounts[i].address for i in range(4)
        ]

    def test_topology_connected(self, fast_config):
        cluster = build_cluster(12, fast_config, seed=2)
        assert cluster.topology.is_connected()

    def test_energy_meters_optional(self, fast_config):
        without = build_cluster(3, fast_config, seed=1)
        with_meters = build_cluster(3, fast_config, seed=1, with_energy_meters=True)
        assert without.nodes[0].meter is None
        assert with_meters.nodes[0].meter is not None

    def test_mobility_epoch_keeps_online_connected(self, fast_config):
        cluster = build_cluster(10, fast_config, seed=3)
        for _ in range(5):
            cluster.advance_mobility_epoch()
            assert cluster.topology.is_connected_subset(
                cluster.network.online_nodes()
            )

    def test_mobility_epoch_respects_offline(self, fast_config):
        cluster = build_cluster(8, fast_config, seed=3)
        cluster.network.set_online(2, False)
        cluster.advance_mobility_epoch()
        assert cluster.topology.neighbors(2) == []

    def test_longest_chain_node(self, fast_config):
        cluster = build_cluster(5, fast_config, seed=4)
        cluster.start()
        cluster.engine.run_until(fast_config.expected_block_interval * 5)
        best = cluster.longest_chain_node()
        assert best.chain.height == max(
            node.chain.height for node in cluster.nodes.values()
        )


class TestExperimentSpec:
    def test_duration_defaults_to_config(self):
        spec = ExperimentSpec(node_count=5, config=PAPER_CONFIG)
        assert spec.duration_seconds == PAPER_CONFIG.simulation_minutes * 60

    def test_duration_override(self):
        spec = ExperimentSpec(node_count=5, config=PAPER_CONFIG, duration_minutes=10)
        assert spec.duration_seconds == 600.0

    def test_churn_spec_validation(self):
        with pytest.raises(ValueError):
            ChurnSpec(node_fraction=1.5)


class TestRunExperiment:
    def test_produces_complete_metrics(self, fast_config):
        result = run_experiment(
            ExperimentSpec(node_count=5, config=fast_config, seed=3, duration_minutes=5)
        )
        metrics = result.metrics
        assert metrics.node_count == 5
        assert metrics.duration_seconds == 300.0
        assert metrics.chain_height() > 0
        assert len(metrics.per_node_bytes) == 5
        assert len(metrics.storage_used) == 5
        assert metrics.data_items_produced > 0

    def test_zero_data_rate_mines_only(self, fast_config):
        from dataclasses import replace

        config = replace(fast_config, data_items_per_minute=0.0)
        result = run_experiment(
            ExperimentSpec(node_count=4, config=config, seed=3, duration_minutes=5)
        )
        assert result.metrics.data_items_produced == 0
        assert result.metrics.chain_height() > 0
        assert result.metrics.delivery_times == []


class TestScenarios:
    def test_paper_sweep_constants(self):
        assert PAPER_NODE_COUNTS == (10, 20, 30, 40, 50)
        assert PAPER_DATA_RATES == (1.0, 2.0, 3.0)

    def test_data_amount_scenario(self):
        spec = data_amount_scenario(30, 2.0, seed=5)
        assert spec.node_count == 30
        assert spec.config.data_items_per_minute == 2.0
        assert spec.duration_minutes == BENCH_DURATION_MINUTES

    def test_data_amount_full_scale(self):
        spec = data_amount_scenario(30, 2.0, full_scale=True)
        assert spec.duration_minutes is None
        assert spec.duration_seconds == 500.0 * 60

    def test_placement_scenario_arms(self):
        optimal = placement_scenario(20, "greedy")
        baseline = placement_scenario(20, "random")
        assert optimal.config.placement_solver == "greedy"
        assert baseline.config.placement_solver == "random"
        assert optimal.config.data_items_per_minute == 1.0

    def test_churn_scenario_cache_toggle(self):
        on = churn_scenario(recent_cache_enabled=True)
        off = churn_scenario(recent_cache_enabled=False)
        assert on.config.recent_cache_capacity > 0
        assert off.config.recent_cache_capacity == 0
        assert on.churn is not None

    def test_mining_only_scenario(self):
        spec = mining_only_scenario(15, expected_interval=45.0)
        assert spec.config.data_items_per_minute == 0.0
        assert spec.config.expected_block_interval == 45.0
        assert spec.mobility_epoch_minutes == 0.0

    def test_fdc_weight_scenario(self):
        spec = fdc_weight_scenario(50.0)
        assert spec.config.fdc_weight == 50.0
