"""Unit tests for the FDC (Eq. 1) and RDC (Eq. 2) cost builders."""

import math

import numpy as np
import pytest

from repro.facility.costs import (
    DEFAULT_FDC_WEIGHT,
    build_storage_ufl,
    fairness_degree_cost,
    fairness_degree_costs,
    range_distance_costs,
)
from repro.simnet.topology import UNREACHABLE


class TestFairnessDegreeCost:
    def test_paper_formula(self):
        # f = W / (W_tol − W)
        assert fairness_degree_cost(50, 250) == pytest.approx(50 / 200)

    def test_empty_node_is_free(self):
        assert fairness_degree_cost(0, 250) == 0.0

    def test_full_node_is_infinite(self):
        assert fairness_degree_cost(250, 250) == math.inf

    def test_monotone_in_usage(self):
        costs = [fairness_degree_cost(u, 100) for u in range(0, 100, 10)]
        assert costs == sorted(costs)
        assert len(set(costs)) == len(costs)

    def test_half_full_equals_one(self):
        assert fairness_degree_cost(125, 250) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fairness_degree_cost(-1, 10)
        with pytest.raises(ValueError):
            fairness_degree_cost(11, 10)
        with pytest.raises(ValueError):
            fairness_degree_cost(0, 0)

    def test_vectorised(self):
        costs = fairness_degree_costs([0, 125, 250], [250, 250, 250])
        assert costs[0] == 0.0
        assert costs[1] == pytest.approx(1.0)
        assert costs[2] == math.inf

    def test_vectorised_shape_mismatch(self):
        with pytest.raises(ValueError):
            fairness_degree_costs([1, 2], [10])


class TestRangeDistanceCost:
    def test_paper_formula(self):
        hops = np.array([[0, 2], [2, 0]])
        cost = range_distance_costs(hops, [30.0, 10.0])
        # c_01 = d + range(0) + range(1) = 2 + 30 + 10
        assert cost[0, 1] == pytest.approx(42.0)
        assert cost[1, 0] == pytest.approx(42.0)

    def test_diagonal_zero(self):
        hops = np.array([[0, 1], [1, 0]])
        cost = range_distance_costs(hops, [30.0, 30.0])
        assert cost[0, 0] == 0.0 and cost[1, 1] == 0.0

    def test_unreachable_is_infinite(self):
        hops = np.array([[0, UNREACHABLE], [UNREACHABLE, 0]])
        cost = range_distance_costs(hops, [1.0, 1.0])
        assert cost[0, 1] == math.inf

    def test_hop_scale(self):
        hops = np.array([[0, 3], [3, 0]])
        cost = range_distance_costs(hops, [0.0, 0.0], hop_scale=70.0)
        assert cost[0, 1] == pytest.approx(210.0)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            range_distance_costs(np.zeros((2, 3)), [0, 0])

    def test_range_length_mismatch(self):
        with pytest.raises(ValueError):
            range_distance_costs(np.zeros((2, 2)), [0.0])

    def test_negative_range_rejected(self):
        with pytest.raises(ValueError):
            range_distance_costs(np.zeros((2, 2)), [-1.0, 0.0])


class TestBuildStorageUFL:
    def test_default_weight_is_papers_1000(self):
        assert DEFAULT_FDC_WEIGHT == 1000.0

    def test_weighting_applied(self):
        hops = np.zeros((2, 2))
        problem = build_storage_ufl([125, 0], [250, 250], hops, [0, 0])
        assert problem.facility_costs[0] == pytest.approx(1000.0)
        assert problem.facility_costs[1] == 0.0

    def test_exclusion(self):
        hops = np.zeros((2, 2))
        problem = build_storage_ufl(
            [0, 0], [250, 250], hops, [0, 0], exclude_nodes=[1]
        )
        assert problem.facility_costs[1] == math.inf
        assert list(problem.openable_facilities()) == [0]

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            build_storage_ufl([0], [1], np.zeros((1, 1)), [0], fdc_weight=-1)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_storage_ufl([0, 0], [1, 1], np.zeros((3, 3)), [0, 0, 0])
