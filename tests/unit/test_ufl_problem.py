"""Unit tests for the UFL problem/solution model."""

import math

import numpy as np
import pytest

from repro.facility.problem import (
    UFLProblem,
    UFLSolution,
    assign_to_open,
    solution_cost_of_open_set,
)


@pytest.fixture
def tiny():
    """2 facilities, 3 clients."""
    return UFLProblem(
        facility_costs=np.array([10.0, 4.0]),
        connection_costs=np.array([[1.0, 2.0, 3.0], [3.0, 1.0, 2.0]]),
    )


class TestUFLProblem:
    def test_shape_accessors(self, tiny):
        assert tiny.num_facilities == 2
        assert tiny.num_clients == 3

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            UFLProblem(np.ones(2), np.ones((3, 4)))

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            UFLProblem(np.array([-1.0]), np.ones((1, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            UFLProblem(np.ones(0), np.ones((0, 2)))

    def test_openable_excludes_inf(self):
        problem = UFLProblem(
            np.array([1.0, math.inf, 2.0]), np.zeros((3, 2))
        )
        assert list(problem.openable_facilities()) == [0, 2]

    def test_feasible(self, tiny):
        assert tiny.is_feasible()

    def test_infeasible_all_full(self):
        problem = UFLProblem(np.array([math.inf]), np.zeros((1, 2)))
        assert not problem.is_feasible()

    def test_infeasible_unreachable_client(self):
        problem = UFLProblem(
            np.array([1.0, math.inf]),
            np.array([[0.0, math.inf], [math.inf, 0.0]]),
        )
        assert not problem.is_feasible()


class TestUFLSolution:
    def test_costs(self, tiny):
        solution = UFLSolution(open_facilities=(1,), assignment=(1, 1, 1))
        assert solution.facility_cost(tiny) == 4.0
        assert solution.connection_cost(tiny) == 6.0
        assert solution.total_cost(tiny) == 10.0

    def test_replica_count(self, tiny):
        assert UFLSolution((0, 1), (0, 1, 1)).replica_count == 2

    def test_validate_ok(self, tiny):
        UFLSolution((0, 1), (0, 1, 1)).validate(tiny)

    def test_validate_rejects_closed_assignment(self, tiny):
        with pytest.raises(ValueError):
            UFLSolution((0,), (0, 1, 0)).validate(tiny)

    def test_validate_rejects_wrong_length(self, tiny):
        with pytest.raises(ValueError):
            UFLSolution((0,), (0, 0)).validate(tiny)

    def test_validate_rejects_empty_open_set(self, tiny):
        with pytest.raises(ValueError):
            UFLSolution((), (0, 0, 0)).validate(tiny)

    def test_validate_rejects_infinite_facility(self):
        problem = UFLProblem(
            np.array([math.inf, 1.0]), np.zeros((2, 1))
        )
        with pytest.raises(ValueError):
            UFLSolution((0,), (0,)).validate(problem)

    def test_open_set_deduplicated_and_sorted(self):
        solution = UFLSolution((2, 0, 2), (0, 0))
        assert solution.open_facilities == (0, 2)


class TestAssignToOpen:
    def test_assigns_cheapest(self, tiny):
        solution = assign_to_open(tiny, [0, 1])
        assert solution.assignment == (0, 1, 1)

    def test_single_facility(self, tiny):
        solution = assign_to_open(tiny, [0])
        assert solution.assignment == (0, 0, 0)

    def test_empty_rejected(self, tiny):
        with pytest.raises(ValueError):
            assign_to_open(tiny, [])

    def test_unreachable_client_rejected(self):
        problem = UFLProblem(
            np.array([1.0, 1.0]),
            np.array([[0.0, math.inf], [math.inf, 0.0]]),
        )
        with pytest.raises(ValueError):
            assign_to_open(problem, [0])


class TestOpenSetCost:
    def test_matches_solution_cost(self, tiny):
        for open_set in ([0], [1], [0, 1]):
            expected = assign_to_open(tiny, open_set).total_cost(tiny)
            assert solution_cost_of_open_set(tiny, open_set) == pytest.approx(expected)

    def test_empty_is_inf(self, tiny):
        assert solution_cost_of_open_set(tiny, []) == math.inf

    def test_unopenable_is_inf(self):
        problem = UFLProblem(np.array([math.inf, 1.0]), np.zeros((2, 1)))
        assert solution_cost_of_open_set(problem, [0]) == math.inf

    def test_unreachable_is_inf(self):
        problem = UFLProblem(
            np.array([1.0, 1.0]),
            np.array([[0.0, math.inf], [math.inf, 0.0]]),
        )
        assert solution_cost_of_open_set(problem, [0]) == math.inf
