"""Unit tests for the epidemic gossip fabric."""

import pytest

from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.gossip import GossipFabric
from repro.simnet.topology import Position, Topology


@pytest.fixture
def fabric():
    engine = EventEngine(seed=3)
    positions = [Position(50.0 * i, 0.0) for i in range(5)]
    topology = Topology(positions, comm_range=70.0)
    fabric = GossipFabric(engine, topology, ChannelModel(bandwidth=None))
    received = []
    fabric.on_receive(lambda node, origin, payload: received.append((node, origin, payload)))
    return engine, fabric, received


class TestGossip:
    def test_reaches_every_node_once(self, fabric):
        engine, gossip, received = fabric
        gossip.originate(0, "msg", 100, "test")
        engine.run()
        nodes = [node for node, _, _ in received]
        assert sorted(nodes) == [1, 2, 3, 4]
        assert len(nodes) == len(set(nodes))  # no duplicate deliveries

    def test_nodes_reached_tracks_origin(self, fabric):
        engine, gossip, _ = fabric
        mid = gossip.originate(2, "m", 10, "t")
        engine.run()
        assert gossip.nodes_reached(mid) == {0, 1, 2, 3, 4}

    def test_latency_matches_hop_distance(self, fabric):
        engine, gossip, received = fabric
        gossip.originate(0, "m", 0, "t")
        engine.run_until(0.015)
        assert {n for n, _, _ in received} == {1}
        engine.run_until(0.045)
        assert {n for n, _, _ in received} == {1, 2, 3, 4}

    def test_offline_node_not_reached(self, fabric):
        engine, gossip, received = fabric
        gossip.set_online(2, False)
        gossip.originate(0, "m", 10, "t")
        engine.run()
        assert {n for n, _, _ in received} == {1}

    def test_origin_offline_rejected(self, fabric):
        _, gossip, _ = fabric
        gossip.set_online(0, False)
        with pytest.raises(ValueError):
            gossip.originate(0, "m", 10, "t")

    def test_flooding_bills_redundant_edges(self, fabric):
        engine, gossip, _ = fabric
        gossip.originate(0, "m", 100, "t")
        engine.run()
        # Line graph: node 0 sends 1; nodes 1-3 forward to both neighbours;
        # node 4 forwards back.  8 transmissions total.
        assert gossip.trace.total_bytes() == 800

    def test_distinct_message_ids(self, fabric):
        _, gossip, _ = fabric
        assert gossip.originate(0, "a", 1, "t") != gossip.originate(0, "b", 1, "t")

    def test_two_concurrent_gossips_do_not_interfere(self, fabric):
        engine, gossip, received = fabric
        gossip.originate(0, "a", 1, "t")
        gossip.originate(4, "b", 1, "t")
        engine.run()
        payload_a = [n for n, _, p in received if p == "a"]
        payload_b = [n for n, _, p in received if p == "b"]
        assert sorted(payload_a) == [1, 2, 3, 4]
        assert sorted(payload_b) == [0, 1, 2, 3]
