"""Multi-process trace stitching and `repro trace merge` over federated
``c{k}_``-prefixed artefacts."""

import json

import pytest

from repro.cli import main
from repro.obs.export import write_perfetto_jsonl
from repro.obs.live.context import (
    MERGED_TRACE_NAME,
    merge_trace_events,
    merge_trace_files,
    read_merged_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import METRICS_NAME, TRACE_NAME
from repro.obs.tracer import TraceContext, Tracer

pytestmark = pytest.mark.obs


def traced_pair(tmp_path):
    """Two per-process obs dirs with one cross-process trace between them."""
    sender = Tracer(origin="n0")
    with sender.span("net.timer", "net"):
        with sender.span("consensus.mine", "pos"):
            pass
        ctx = sender.current_context()
    # An unrelated local-only trace on the sender.
    with sender.span("engine.tick", "engine"):
        pass

    receiver = Tracer(origin="n1")
    with receiver.remote_span("net.deliver", "net", ctx):
        with receiver.span("node.handle", "node"):
            pass

    dirs = []
    for name, tracer in (("node0", sender), ("node1", receiver)):
        directory = tmp_path / name
        directory.mkdir()
        write_perfetto_jsonl(
            tracer.finished, directory / TRACE_NAME, origin=tracer.origin
        )
        dirs.append(directory)
    return dirs, ctx


class TestMergeTraceFiles:
    def test_stats_count_cross_process_traces(self, tmp_path):
        dirs, ctx = traced_pair(tmp_path)
        stats = merge_trace_files(dirs)
        assert stats["files"] == 2
        assert stats["origins"] == ["n0", "n1"]
        assert stats["events"] == 5
        # Two distinct trace ids: the cross-process one plus the local-only
        # engine.tick; net.deliver joined the sender's trace, not a new one.
        assert stats["traces"] == 2
        assert stats["cross_process_traces"] == 1
        assert stats["remote_linked_spans"] == 1

    def test_merged_file_has_process_tracks_and_origin_args(self, tmp_path):
        dirs, ctx = traced_pair(tmp_path)
        stats = merge_trace_files(dirs, out=tmp_path / MERGED_TRACE_NAME)
        merged = read_merged_trace(stats["out"])

        names = {
            e["args"]["name"] for e in merged
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert names == {"repro node n0", "repro node n1"}
        spans = [e for e in merged if e.get("ph") == "X"]
        assert {e["args"]["origin"] for e in spans} == {"n0", "n1"}
        # Both halves of the cross-process trace share the trace id, and
        # the receive side still links the exact send-side span.
        halves = [e for e in spans if e["args"].get("trace_id") == ctx.trace_id]
        assert {e["args"]["origin"] for e in halves} == {"n0", "n1"}
        deliver = next(e for e in spans if e["name"] == "net.deliver")
        assert deliver["args"]["remote_parent"] == ctx.span_id
        assert deliver["args"]["remote_origin"] == "n0"

    def test_overlapping_files_merge_without_double_counting(self, tmp_path):
        """The same process file listed twice still yields one pid."""
        dirs, _ = traced_pair(tmp_path)
        stats = merge_trace_files([dirs[0], dirs[0], dirs[1]])
        assert stats["origins"] == ["n0", "n1"]
        assert stats["files"] == 3
        # Duplicate events do appear (3 + 3 + 2) but under one n0 track.
        assert stats["events"] == 8

    def test_files_without_origin_metadata_get_positional_names(self, tmp_path):
        events = [
            {"name": "s", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1,
             "args": {"trace_id": "x:1"}}
        ]
        path = tmp_path / "anon.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        stats = merge_trace_files([path])
        assert stats["origins"] == ["p0"]

    def test_merge_trace_events_empty(self):
        merged, stats = merge_trace_events([])
        assert merged == []
        assert stats["cross_process_traces"] == 0


class TestTraceMergeCli:
    def _federated_obs_dir(self, directory, cluster_prefixes, origin):
        """An obs dir whose metrics carry federated c{k}_ prefixes."""
        directory.mkdir()
        registry = MetricsRegistry()
        for prefix in cluster_prefixes:
            registry.counter(f"{prefix}net.messages_sent").inc(5)
            registry.counter("engine.events").inc(10)
        registry.write_json(directory / METRICS_NAME)
        tracer = Tracer(origin=origin)
        with tracer.span("engine.tick", "engine"):
            pass
        write_perfetto_jsonl(tracer.finished, directory / TRACE_NAME, origin=origin)

    def test_merges_federated_metrics_and_stitches_traces(self, tmp_path, capsys):
        self._federated_obs_dir(tmp_path / "shard_a", ["c0_", "c1_"], "n0")
        self._federated_obs_dir(tmp_path / "shard_b", ["c0_"], "n1")
        out = tmp_path / "merged_metrics.json"
        trace_out = tmp_path / "merged_trace.json"

        assert main([
            "trace", "merge",
            str(tmp_path / "shard_a"), str(tmp_path / "shard_b"),
            "--out", str(out),
            "--trace-out", str(trace_out),
        ]) == 0

        merged = json.loads(out.read_text(encoding="utf-8"))
        instruments = merged["instruments"]
        # Per-cluster counters merge additively across shards.
        assert instruments["c0_net.messages_sent"]["value"] == 10
        assert instruments["c1_net.messages_sent"]["value"] == 5
        assert instruments["engine.events"]["value"] == 30
        # And the traces were stitched into one two-origin file.
        spans = [
            e for e in read_merged_trace(trace_out) if e.get("ph") == "X"
        ]
        assert {e["args"]["origin"] for e in spans} == {"n0", "n1"}
        captured = capsys.readouterr().out
        assert "cross-process traces: 0" in captured

    def test_trace_out_with_no_trace_files_fails(self, tmp_path):
        source = tmp_path / "metrics_only"
        source.mkdir()
        MetricsRegistry().write_json(source / METRICS_NAME)
        with pytest.raises(SystemExit):
            main([
                "trace", "merge", str(source),
                "--out", str(tmp_path / "m.json"),
                "--trace-out", str(tmp_path / "t.json"),
            ])
