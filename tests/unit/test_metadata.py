"""Unit tests for metadata items."""

import dataclasses

import pytest

from repro.core.account import Account
from repro.core.metadata import METADATA_WIRE_BYTES, MetadataItem, create_metadata


@pytest.fixture
def item(account):
    return create_metadata(
        account=account,
        producer=3,
        sequence=0,
        created_at=100.0,
        data_type="AirQuality/PM2.5",
        location="NewYork,NY/40.72,-74.00",
        valid_time_minutes=1440.0,
    )


class TestCreateMetadata:
    def test_fields_populated(self, item, account):
        assert item.producer == 3
        assert item.producer_address == account.address
        assert item.data_type == "AirQuality/PM2.5"
        assert item.storing_nodes == ()

    def test_data_id_unique_per_sequence(self, account):
        a = create_metadata(account, 3, 0, 0.0)
        b = create_metadata(account, 3, 1, 0.0)
        assert a.data_id != b.data_id

    def test_data_id_unique_per_producer(self):
        acc_a = Account.for_node(0, 1)
        acc_b = Account.for_node(0, 2)
        a = create_metadata(acc_a, 1, 0, 0.0)
        b = create_metadata(acc_b, 2, 0, 0.0)
        assert a.data_id != b.data_id


class TestSignature:
    def test_fresh_item_verifies(self, item):
        assert item.verify_signature()

    def test_tampered_type_fails(self, item):
        tampered = dataclasses.replace(item, data_type="Video/Fake")
        assert not tampered.verify_signature()

    def test_tampered_location_fails(self, item):
        tampered = dataclasses.replace(item, location="Nowhere/0,0")
        assert not tampered.verify_signature()

    def test_tampered_size_fails(self, item):
        tampered = dataclasses.replace(item, size_bytes=item.size_bytes + 1)
        assert not tampered.verify_signature()

    def test_garbage_signature_fails(self, item):
        tampered = dataclasses.replace(item, signature_hex="00" * 64)
        assert not tampered.verify_signature()

    def test_garbage_public_key_fails(self, item):
        tampered = dataclasses.replace(item, producer_public_key_hex="02" + "00" * 32)
        assert not tampered.verify_signature()

    def test_storing_nodes_not_signed(self, item):
        # The miner adds the placement after signing; it must not break
        # the producer's signature.
        placed = item.with_storing_nodes((1, 2, 3))
        assert placed.verify_signature()


class TestLifecycle:
    def test_expiry_time(self, item):
        assert item.expires_at == pytest.approx(100.0 + 1440 * 60)

    def test_is_expired(self, item):
        assert not item.is_expired(item.expires_at - 1)
        assert item.is_expired(item.expires_at)

    def test_invalid_valid_time_rejected(self, account):
        with pytest.raises(ValueError):
            create_metadata(account, 1, 0, 0.0, valid_time_minutes=0.0)

    def test_with_storing_nodes_sorts_and_dedups(self, item):
        placed = item.with_storing_nodes((3, 1, 3, 2))
        assert placed.storing_nodes == (1, 2, 3)

    def test_wire_size_grows_with_placement(self, item):
        assert item.wire_size() == METADATA_WIRE_BYTES
        assert item.with_storing_nodes((1, 2)).wire_size() == METADATA_WIRE_BYTES + 8

    def test_negative_created_at_rejected(self, account):
        with pytest.raises(ValueError):
            create_metadata(account, 1, 0, -1.0)
