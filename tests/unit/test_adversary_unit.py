"""Unit-level tests for adversarial node behaviour and claim messages."""

import pytest

from repro.core.adversary import DenyingNode, SilentNode
from repro.core.config import SystemConfig
from repro.core.messages import CONTROL_BYTES, InvalidStorageClaim
from repro.sim.cluster import build_cluster


@pytest.fixture
def world(fast_config):
    return build_cluster(
        5, fast_config, seed=29, node_classes={2: DenyingNode, 3: SilentNode}
    )


class TestClaimMessage:
    def test_wire_size(self):
        claim = InvalidStorageClaim(data_id="d", storing_node=2, claimer=0)
        assert claim.wire_size() == CONTROL_BYTES

    def test_immutable(self):
        claim = InvalidStorageClaim(data_id="d", storing_node=2, claimer=0)
        with pytest.raises(AttributeError):
            claim.storing_node = 5  # type: ignore[misc]


class TestAdversaryClasses:
    def test_cluster_plants_requested_classes(self, world):
        assert isinstance(world.nodes[2], DenyingNode)
        assert isinstance(world.nodes[3], SilentNode)
        assert not isinstance(world.nodes[0], (DenyingNode, SilentNode))

    def test_denying_node_nacks_requests(self, world):
        from repro.core.messages import DataRequest

        world.start()
        request = DataRequest(data_id="whatever", requester=0, request_id=1)
        before = world.nodes[2].counters.data_nacks_sent
        world.nodes[2]._on_data_request(0, request)
        assert world.nodes[2].counters.data_nacks_sent == before + 1

    def test_silent_node_sends_nothing(self, world):
        from repro.core.messages import DataRequest

        world.start()
        sent_before = world.network.messages_sent
        request = DataRequest(data_id="whatever", requester=0, request_id=1)
        world.nodes[3]._on_data_request(0, request)
        assert world.network.messages_sent == sent_before

    def test_adversaries_still_mine(self, world):
        world.start()
        deadline = world.engine.now + 40 * world.config.expected_block_interval
        world.engine.run_until(deadline)
        # The chain advances with adversaries present.
        assert world.longest_chain_node().chain.height > 5


class TestClaimHandling:
    def test_claim_recorded_on_receipt(self, world):
        node = world.nodes[0]
        claim = InvalidStorageClaim(data_id="item-x", storing_node=2, claimer=4)
        node.handle(4, claim, "storage_claim")
        assert ("item-x", 2) in node.invalid_storage

    def test_invalid_pair_skipped_in_candidates(self, world, account):
        from repro.core.metadata import create_metadata

        node = world.nodes[0]
        metadata = create_metadata(
            account, producer=4, sequence=0, created_at=0.0
        ).with_storing_nodes((1, 2, 3))
        node.invalid_storage.add((metadata.data_id, 2))
        candidates = node._candidates_for(metadata)
        assert 2 not in candidates
        assert 1 in candidates and 3 in candidates
        assert candidates[-1] == 4  # producer fallback stays last

    def test_invalid_producer_also_skipped(self, world, account):
        from repro.core.metadata import create_metadata

        node = world.nodes[0]
        metadata = create_metadata(
            account, producer=4, sequence=1, created_at=0.0
        ).with_storing_nodes((1,))
        node.invalid_storage.add((metadata.data_id, 4))
        assert 4 not in node._candidates_for(metadata)
