"""Unit tests for repro.crypto.hashing."""

import hashlib

import pytest

from repro.crypto.hashing import (
    DIGEST_SIZE,
    checksum8,
    combine_hex,
    hash_concat,
    hash_items,
    hash_items_hex,
    hash_to_int,
    iter_hash,
    sha256,
    sha256_hex,
)


class TestSha256:
    def test_matches_hashlib(self):
        assert sha256(b"abc") == hashlib.sha256(b"abc").digest()

    def test_hex_matches_hashlib(self):
        assert sha256_hex(b"abc") == hashlib.sha256(b"abc").hexdigest()

    def test_digest_size(self):
        assert len(sha256(b"")) == DIGEST_SIZE

    def test_empty_input(self):
        assert sha256(b"") == hashlib.sha256(b"").digest()


class TestHashItems:
    def test_deterministic(self):
        assert hash_items("a", 1, b"x") == hash_items("a", 1, b"x")

    def test_framing_prevents_concatenation_collisions(self):
        assert hash_items("ab", "c") != hash_items("a", "bc")

    def test_type_tags_prevent_cross_type_collisions(self):
        assert hash_items("1") != hash_items(1)
        assert hash_items(b"x") != hash_items("x")

    def test_order_matters(self):
        assert hash_items("a", "b") != hash_items("b", "a")

    def test_negative_integers(self):
        assert hash_items(-5) != hash_items(5)

    def test_zero_and_empty(self):
        assert hash_items(0) != hash_items("")
        assert hash_items(0) != hash_items(b"")

    def test_large_integers(self):
        big = 2**300
        assert hash_items(big) != hash_items(big + 1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            hash_items(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            hash_items(3.14)

    def test_hex_variant(self):
        assert hash_items_hex("x") == hash_items("x").hex()

    def test_no_fields(self):
        # Hash of nothing is still a valid digest and deterministic.
        assert hash_items() == hash_items()
        assert len(hash_items()) == DIGEST_SIZE


class TestHashToInt:
    def test_round_trip(self):
        digest = bytes.fromhex("ff" * 32)
        assert hash_to_int(digest) == 2**256 - 1

    def test_zero(self):
        assert hash_to_int(b"\x00" * 32) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hash_to_int(b"")

    def test_big_endian(self):
        assert hash_to_int(b"\x01\x00") == 256


class TestHelpers:
    def test_hash_concat_is_sha256_of_concat(self):
        left, right = sha256(b"l"), sha256(b"r")
        assert hash_concat(left, right) == sha256(left + right)

    def test_checksum8_length(self):
        assert len(checksum8(b"anything")) == 8

    def test_iter_hash_zero_rounds_is_identity(self):
        assert iter_hash(b"seed", 0) == b"seed"

    def test_iter_hash_one_round(self):
        assert iter_hash(b"seed", 1) == sha256(b"seed")

    def test_iter_hash_composes(self):
        assert iter_hash(b"seed", 5) == iter_hash(iter_hash(b"seed", 2), 3)

    def test_iter_hash_negative_rejected(self):
        with pytest.raises(ValueError):
            iter_hash(b"x", -1)

    def test_combine_hex_order_sensitive(self):
        a, b = sha256_hex(b"a"), sha256_hex(b"b")
        assert combine_hex([a, b]) != combine_hex([b, a])

    def test_combine_hex_deterministic(self):
        parts = [sha256_hex(b"a"), sha256_hex(b"b")]
        assert combine_hex(parts) == combine_hex(parts)
