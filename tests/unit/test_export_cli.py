"""Unit tests for result export and the CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.metrics.collector import collect_run_metrics
from repro.metrics.export import (
    metrics_to_record,
    read_json,
    write_csv,
    write_json,
)
from repro.simnet.trace import TransmissionTrace


@pytest.fixture
def sample_metrics():
    trace = TransmissionTrace()
    trace.record_hop(0, 1, 1000, "data_response")
    return collect_run_metrics(
        node_count=2,
        duration_seconds=60.0,
        trace=trace,
        storage_used=[3, 4],
        delivery_times=[0.5],
        failed_requests=0,
        block_timestamps=[0.0, 30.0],
        blocks_mined={0: 1},
    )


class TestExport:
    def test_record_contains_labels_and_metrics(self, sample_metrics):
        record = metrics_to_record(sample_metrics, solver="greedy", seed=7)
        assert record["solver"] == "greedy"
        assert record["seed"] == 7
        assert record["chain_height"] == 1
        assert record["storage_gini"] == pytest.approx(
            sample_metrics.storage_gini()
        )
        assert record["category_bytes"] == {"data_response": 1000}

    def test_json_round_trip(self, sample_metrics, tmp_path):
        records = [metrics_to_record(sample_metrics, seed=1)]
        path = write_json(records, tmp_path / "out" / "run.json")
        loaded = read_json(path)
        assert loaded[0]["seed"] == 1
        assert loaded[0]["chain_height"] == 1

    def test_csv_written_with_union_header(self, sample_metrics, tmp_path):
        records = [
            metrics_to_record(sample_metrics, seed=1),
            {**metrics_to_record(sample_metrics, seed=2), "extra": "x"},
        ]
        path = write_csv(records, tmp_path / "run.csv")
        lines = path.read_text().splitlines()
        assert "extra" in lines[0]
        assert len(lines) == 3

    def test_csv_encodes_nested_dicts(self, sample_metrics, tmp_path):
        path = write_csv([metrics_to_record(sample_metrics)], tmp_path / "r.csv")
        body = path.read_text()
        assert "data_response" in body

    def test_empty_csv_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "empty.csv")


class TestCLI:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        for command in ("run", "fig4", "fig5", "fig6"):
            args = parser.parse_args([command] if command == "fig6" else [command])
            assert args.command == command

    def test_run_command_executes_and_exports(self, tmp_path, capsys):
        json_path = tmp_path / "run.json"
        exit_code = main(
            [
                "run",
                "--nodes", "5",
                "--minutes", "5",
                "--seed", "3",
                "--block-interval", "15",
                "--json", str(json_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "chain height" in output
        record = json.loads(json_path.read_text())[0]
        assert record["node_count"] == 5

    def test_fig4_command_runs_reduced_sweep(self, tmp_path, capsys):
        csv_path = tmp_path / "fig4.csv"
        exit_code = main(
            ["fig4", "--node-counts", "6", "--rates", "1", "--seed", "2",
             "--csv", str(csv_path)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Gini" in output
        assert csv_path.exists()

    def test_fig5_command_runs_reduced_sweep(self, capsys):
        assert main(["fig5", "--node-counts", "6", "--seed", "2"]) == 0
        output = capsys.readouterr().out
        assert "opt delivery" in output and "rand delivery" in output

    def test_fig6_command_prints_series(self, capsys):
        assert main(["fig6", "--minutes", "12"]) == 0
        output = capsys.readouterr().out
        assert "PoW blocks" in output and "PoS battery" in output

    def test_run_command_rejects_unknown_solver(self):
        with pytest.raises(SystemExit):
            main(["run", "--solver", "quantum"])
