"""Unit tests for the allocation engine and recent-block selection."""

import math

import numpy as np
import pytest

from repro.core.allocation import AllocationEngine
from repro.core.config import SystemConfig
from repro.core.errors import AllocationError
from repro.core.recent_blocks import recent_block_coverage, select_recent_cache_nodes


@pytest.fixture
def engine():
    return AllocationEngine(SystemConfig(), rng=np.random.default_rng(0))


@pytest.fixture
def state():
    """(used, total, hop_matrix, ranges) for a 5-node line network."""
    n = 5
    hops = np.abs(np.subtract.outer(np.arange(n), np.arange(n))).astype(float)
    used = [2.0] * n
    total = [250.0] * n
    ranges = [30.0] * n
    return used, total, hops, ranges


class TestPlaceItem:
    def test_returns_nonempty_placement(self, engine, state):
        decision = engine.place_item(*state)
        assert decision.replica_count >= 1
        assert decision.storing_nodes

    def test_deterministic_for_same_state(self, engine, state):
        a = engine.place_item(*state)
        b = engine.place_item(*state)
        assert a.storing_nodes == b.storing_nodes

    def test_prefers_less_loaded_nodes(self, engine):
        n = 3
        hops = np.zeros((n, n))  # co-located: RDC irrelevant except ranges
        np.fill_diagonal(hops, 0.0)
        used = [240.0, 1.0, 240.0]
        total = [250.0] * n
        decision = engine.place_item(used, total, hops, [0.0] * n)
        assert decision.storing_nodes == (1,)

    def test_full_nodes_never_chosen(self, engine, state):
        used, total, hops, ranges = state
        used = [250.0, 2.0, 2.0, 2.0, 250.0]
        decision = engine.place_item(used, total, hops, ranges)
        assert 0 not in decision.storing_nodes
        assert 4 not in decision.storing_nodes

    def test_exclusion_respected(self, engine, state):
        used, total, hops, ranges = state
        decision = engine.place_item(used, total, hops, ranges, exclude_nodes=[2])
        assert 2 not in decision.storing_nodes

    def test_fallback_when_infeasible(self, engine, state):
        used, total, hops, ranges = state
        # Clients 0..4 exist but every facility except node 3 is full.
        used = [250.0, 250.0, 250.0, 100.0, 250.0]
        hops = np.full((5, 5), -1.0)  # fully partitioned
        np.fill_diagonal(hops, 0.0)
        decision = engine.place_item(used, total, hops, ranges)
        assert decision.storing_nodes == (3,)
        assert engine.fallback_placements == 1
        assert decision.total_cost == math.inf

    def test_all_full_raises(self, engine, state):
        used, total, hops, ranges = state
        used = [250.0] * 5
        with pytest.raises(AllocationError):
            engine.place_item(used, total, hops, ranges)

    def test_random_solver_matches_greedy_replica_count(self, state):
        config = SystemConfig(placement_solver="random")
        random_engine = AllocationEngine(config, rng=np.random.default_rng(1))
        greedy_engine = AllocationEngine(SystemConfig(), rng=np.random.default_rng(1))
        greedy = greedy_engine.place_item(*state)
        random_decision = random_engine.place_item(*state)
        assert random_decision.replica_count == greedy.replica_count

    def test_all_solvers_produce_valid_decisions(self, state):
        for solver in ("greedy", "local_search", "lp_rounding", "random"):
            config = SystemConfig(placement_solver=solver)
            engine = AllocationEngine(config, rng=np.random.default_rng(2))
            decision = engine.place_item(*state)
            assert decision.replica_count == len(decision.storing_nodes)


class TestRecentCacheSelection:
    def test_excludes_already_storing(self, engine, state):
        used, total, hops, ranges = state
        chosen = select_recent_cache_nodes(
            engine, used, total, hops, ranges, already_storing=[0, 1]
        )
        assert 0 not in chosen and 1 not in chosen
        assert chosen  # someone gets the cache assignment

    def test_empty_when_everyone_stores(self, engine, state):
        used, total, hops, ranges = state
        chosen = select_recent_cache_nodes(
            engine, used, total, hops, ranges, already_storing=list(range(5))
        )
        assert chosen == ()

    def test_offline_nodes_excluded(self, engine, state):
        used, total, hops, ranges = state
        chosen = select_recent_cache_nodes(
            engine, used, total, hops, ranges,
            already_storing=[0], offline_nodes=[1, 2],
        )
        assert not set(chosen) & {0, 1, 2}

    def test_graceful_when_infeasible(self, engine, state):
        used, total, hops, ranges = state
        used = [250.0] * 5
        chosen = select_recent_cache_nodes(
            engine, used, total, hops, ranges, already_storing=[0]
        )
        assert chosen == ()


class TestCoverage:
    def test_recent_block_coverage(self):
        holders = [[1, 2], [2], [2, 3], []]
        assert recent_block_coverage(holders, 2) == pytest.approx(0.75)
        assert recent_block_coverage(holders, 9) == 0.0
        assert recent_block_coverage([], 1) == 0.0
