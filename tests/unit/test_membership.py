"""Unit tests for the SWIM membership substrate."""

import pytest

from repro.membership.messages import (
    Ack,
    MembershipUpdate,
    MemberStatus,
    Ping,
    PingReq,
)
from repro.membership.state import DisseminationBuffer, MembershipTable


def update(member, status, incarnation=0):
    return MembershipUpdate(member=member, status=status, incarnation=incarnation)


class TestMembershipTable:
    def test_all_alive_initially(self):
        table = MembershipTable(0, [0, 1, 2])
        assert table.alive_members() == [1, 2]
        assert table.status(1) is MemberStatus.ALIVE

    def test_self_must_be_member(self):
        with pytest.raises(ValueError):
            MembershipTable(9, [0, 1])

    def test_suspect_overrides_alive_same_incarnation(self):
        table = MembershipTable(0, [0, 1])
        applied = table.apply(update(1, MemberStatus.SUSPECT, 0), now=1.0)
        assert applied is not None
        assert table.status(1) is MemberStatus.SUSPECT

    def test_alive_refutes_suspect_with_higher_incarnation(self):
        table = MembershipTable(0, [0, 1])
        table.apply(update(1, MemberStatus.SUSPECT, 0), now=1.0)
        applied = table.apply(update(1, MemberStatus.ALIVE, 1), now=2.0)
        assert applied is not None
        assert table.status(1) is MemberStatus.ALIVE

    def test_stale_alive_does_not_refute(self):
        table = MembershipTable(0, [0, 1])
        table.apply(update(1, MemberStatus.SUSPECT, 3), now=1.0)
        assert table.apply(update(1, MemberStatus.ALIVE, 3), now=2.0) is None
        assert table.status(1) is MemberStatus.SUSPECT

    def test_dead_is_final(self):
        table = MembershipTable(0, [0, 1])
        table.apply(update(1, MemberStatus.DEAD, 0), now=1.0)
        assert table.apply(update(1, MemberStatus.ALIVE, 99), now=2.0) is None
        assert table.status(1) is MemberStatus.DEAD

    def test_self_suspicion_triggers_refutation(self):
        table = MembershipTable(0, [0, 1])
        refutation = table.apply(update(0, MemberStatus.SUSPECT, 0), now=1.0)
        assert refutation is not None
        assert refutation.status is MemberStatus.ALIVE
        assert refutation.incarnation == 1
        assert table.status(0) is MemberStatus.ALIVE
        assert table.incarnation == 1

    def test_dynamic_join(self):
        table = MembershipTable(0, [0, 1])
        applied = table.apply(update(7, MemberStatus.ALIVE, 0), now=1.0)
        assert applied is not None
        assert 7 in table.members()

    def test_expire_suspects(self):
        table = MembershipTable(0, [0, 1, 2])
        table.apply(update(1, MemberStatus.SUSPECT, 0), now=1.0)
        table.apply(update(2, MemberStatus.SUSPECT, 0), now=4.0)
        declared = table.expire_suspects(now=6.5, suspicion_timeout=5.0)
        assert [d.member for d in declared] == [1]
        assert table.status(1) is MemberStatus.DEAD
        assert table.status(2) is MemberStatus.SUSPECT

    def test_suspects_listing(self):
        table = MembershipTable(0, [0, 1, 2])
        table.apply(update(2, MemberStatus.SUSPECT, 0), now=1.0)
        assert table.suspects() == [2]


class TestDisseminationBuffer:
    def test_take_returns_pushed(self):
        buffer = DisseminationBuffer()
        u = update(1, MemberStatus.SUSPECT)
        buffer.push(u)
        assert buffer.take() == (u,)

    def test_retransmit_budget_exhausts(self):
        buffer = DisseminationBuffer(retransmit_budget=3)
        buffer.push(update(1, MemberStatus.SUSPECT))
        for _ in range(3):
            assert len(buffer.take()) == 1
        assert buffer.take() == ()

    def test_newer_update_replaces_queued(self):
        buffer = DisseminationBuffer()
        buffer.push(update(1, MemberStatus.SUSPECT, 0))
        newer = update(1, MemberStatus.ALIVE, 1)
        buffer.push(newer)
        assert buffer.take() == (newer,)
        assert len(buffer) == 1

    def test_max_per_message(self):
        buffer = DisseminationBuffer(max_per_message=2)
        for member in range(5):
            buffer.push(update(member, MemberStatus.ALIVE, 1))
        assert len(buffer.take()) == 2

    def test_least_transmitted_first(self):
        buffer = DisseminationBuffer(max_per_message=1, retransmit_budget=10)
        old = update(1, MemberStatus.SUSPECT)
        buffer.push(old)
        buffer.take()  # old now has 1 transmission
        fresh = update(2, MemberStatus.SUSPECT)
        buffer.push(fresh)
        assert buffer.take() == (fresh,)

    def test_invalid_budgets(self):
        with pytest.raises(ValueError):
            DisseminationBuffer(retransmit_budget=0)
        with pytest.raises(ValueError):
            DisseminationBuffer(max_per_message=0)


class TestMessageSizes:
    def test_sizes_scale_with_updates(self):
        updates = (update(1, MemberStatus.ALIVE), update(2, MemberStatus.DEAD))
        assert Ping(0, 1).wire_size() < Ping(0, 1, updates).wire_size()
        assert Ack(0, 1, 0).wire_size() < Ack(0, 1, 0, updates).wire_size()
        assert PingReq(0, 1, 2).wire_size() < PingReq(0, 1, 2, updates).wire_size()

    def test_messages_are_small(self):
        # The point of SWIM: constant, tiny messages.
        assert Ping(0, 1).wire_size() < 100
