"""Unit tests: fog-tier defenses — attestation, scoring, failover, admission.

The fog tier's byzantine tolerance rests on a few small mechanisms that
must be individually airtight: gateway attestation over the canonical
summary body, the weighted misbehavior ledger and its quarantine
threshold, deterministic failover of a quarantined peer's home clusters,
the lookup driver's bounded retry/fallback budget, and structural
admission of migrated metadata at the receiving gateway.
"""

import math
from dataclasses import replace

import pytest

from repro.core.account import Account
from repro.core.admission import FOREIGN_METADATA, foreign_metadata_admissible
from repro.core.metadata import create_metadata
from repro.federation.fog import (
    FOG_BAD_ATTESTATION,
    FOG_STALE_HOME,
    LOOKUP_FALLBACK_RETRIES,
    LOOKUP_MAX_RETRIES,
    LOOKUP_RETRY_SECONDS,
    CrossLookupDriver,
    FogAdmission,
    FogCounters,
)
from repro.federation.runtime import build_federation_runtime
from repro.federation.spec import FederationSpec, FederationSpecError
from repro.obs.monitors import (
    DirectoryDivergenceMonitor,
    DirectoryStalenessMonitor,
    FogQuarantineMonitor,
)
from repro.sim.cluster import build_cluster
from repro.simnet.engine import EventEngine
from tests.helpers import make_config

pytestmark = pytest.mark.fed


def small_fed_spec(**overrides):
    params = dict(
        cluster_count=2,
        nodes_per_cluster=2,
        config=make_config(),
        seed=5,
        duration_minutes=4.0,
    )
    params.update(overrides)
    return FederationSpec(**params)


@pytest.fixture(scope="module")
def fed_runtime():
    """A built (not run) federation; read-only tests share it."""
    return build_federation_runtime(small_fed_spec())


class TestAttestation:
    def test_built_summary_verifies(self, fed_runtime):
        fog = fed_runtime.fog
        summary = fog.build_summary(0, 1, 0.0)
        assert summary.attestation_hex
        assert fog.summary_attested(summary)

    def test_tampered_body_fails(self, fed_runtime):
        fog = fed_runtime.fog
        summary = fog.build_summary(0, 2, 0.0)
        for tampered in (
            replace(summary, height=summary.height + 50),
            replace(summary, chain_digest="f" * 32),
            replace(summary, checkpoint_digest="f" * 64),
            replace(summary, version=summary.version + 1),
        ):
            assert not fog.summary_attested(tampered)

    def test_substituted_attestor_key_fails(self, fed_runtime):
        """A forger signing with its own key can't impersonate the gateway."""
        fog = fed_runtime.fog
        summary = fog.build_summary(0, 3, 0.0)
        imposter = Account.for_node(simulation_seed=999, node_id=7)
        forged = replace(
            summary,
            attestor_public_key_hex=imposter.public_key.hex(),
            attestation_hex=imposter.sign(summary.attestation_payload()).hex(),
        )
        assert not fog.summary_attested(forged)

    def test_missing_or_garbage_attestation_fails(self, fed_runtime):
        fog = fed_runtime.fog
        summary = fog.build_summary(0, 4, 0.0)
        assert not fog.summary_attested(replace(summary, attestation_hex=""))
        assert not fog.summary_attested(
            replace(summary, attestation_hex="zz-not-hex")
        )


class TestFogAdmission:
    def test_heavy_reasons_quarantine_at_two(self):
        ledger = FogAdmission()
        assert not ledger.charge(0, FOG_BAD_ATTESTATION, 1.0)
        assert ledger.charge(0, FOG_BAD_ATTESTATION, 2.0)
        assert ledger.is_quarantined(0)
        assert ledger.quarantined_at[0] == 2.0

    def test_stale_charges_accrue_slowly(self):
        ledger = FogAdmission()
        for _ in range(3):
            assert not ledger.charge(1, FOG_STALE_HOME, 0.0)
        assert ledger.charge(1, FOG_STALE_HOME, 10.0)

    def test_charges_after_quarantine_do_not_requarantine(self):
        ledger = FogAdmission()
        ledger.charge(0, FOG_BAD_ATTESTATION, 1.0)
        ledger.charge(0, FOG_BAD_ATTESTATION, 2.0)
        assert not ledger.charge(0, FOG_BAD_ATTESTATION, 3.0)
        assert ledger.quarantined_at[0] == 2.0

    def test_snapshot_shape(self):
        ledger = FogAdmission()
        ledger.charge(0, FOG_BAD_ATTESTATION, 1.0)
        snap = ledger.snapshot()
        assert snap["rejections"] == {FOG_BAD_ATTESTATION: 1}
        assert snap["scores"] == {"0": 4.0}
        assert snap["quarantined"] == []


class TestSpecValidation:
    def test_super_peer_count_must_be_positive(self):
        with pytest.raises(FederationSpecError):
            small_fed_spec(super_peer_count=0)

    def test_typed_error_is_a_value_error(self):
        """Old `except ValueError` call sites (the CLI) keep working."""
        assert issubclass(FederationSpecError, ValueError)
        with pytest.raises(ValueError):
            small_fed_spec(super_peer_count=-1)

    def test_fog_peer_class_ids_validated(self):
        with pytest.raises(FederationSpecError):
            small_fed_spec(fog_peer_classes={5: object})


class TestQuarantineFailover:
    @pytest.fixture()
    def runtime(self):
        """A private runtime — these tests mutate fog state."""
        return build_federation_runtime(small_fed_spec(seed=9))

    def test_quarantine_rehomes_to_deterministic_sibling(self, runtime):
        fog = runtime.fog
        fog.start()
        assert fog.home_of == {0: 0, 1: 1}
        fog.charge(0, FOG_BAD_ATTESTATION)
        fog.charge(0, FOG_BAD_ATTESTATION)
        assert fog.admission.is_quarantined(0)
        assert fog.home_of[0] == 1
        assert fog.rehomed == {0: 1}
        assert 0 in fog.peers[1].home_clusters
        assert fog.peers[0].home_clusters == []
        assert fog.counters.quarantines == 1
        assert fog.counters.rehomed_clusters == 1
        # The new home rebuilt the entry immediately, at a version past
        # anything it had seen, so its copy wins the monotone merge.
        entry = fog.peers[1].replica.entries[0]
        assert entry.version > 0
        assert fog.summary_attested(entry)

    def test_staleness_skips_quarantined_replicas(self, runtime):
        fog = runtime.fog
        fog.start()
        fog.charge(0, FOG_BAD_ATTESTATION)
        fog.charge(0, FOG_BAD_ATTESTATION)
        # Peer 0's frozen replica must not feed the staleness monitor.
        assert fog.directory_staleness(1e6) == (
            fog.peers[1].replica.staleness(1e6, 2)
        )

    def test_staleness_defaults_to_zero_with_no_active_peers(self, runtime):
        fog = runtime.fog
        fog.peers = []
        assert fog.directory_staleness(123.0) == 0.0


class _StubFog:
    """Just enough FogTier surface for driving CrossLookupDriver."""

    def __init__(self, engine, fallback_peer=None):
        self.engine = engine
        self.counters = FogCounters()
        self.lookup_attempts = 0
        self.fallback_attempts = 0
        self._fallback = fallback_peer
        self.peers = {} if fallback_peer is None else {
            fallback_peer.peer_id: fallback_peer
        }

    def lookup(self, origin_cluster, data_id, via_peer=None):
        if via_peer is None:
            self.lookup_attempts += 1
        else:
            self.fallback_attempts += 1
        return None

    def fallback_peer_for(self, origin_cluster):
        return self._fallback


class _StubPeer:
    peer_id = 1


class TestCrossLookupDriver:
    def test_retry_exhaustion_counts_exactly_one_failure(self):
        engine = EventEngine(seed=0)
        fog = _StubFog(engine)
        driver = CrossLookupDriver(fog)
        driver.schedule(0, "missing-id", 1.0, migrate=False)
        engine.run_until(1.0 + LOOKUP_RETRY_SECONDS * (LOOKUP_MAX_RETRIES + 2))
        assert fog.lookup_attempts == LOOKUP_MAX_RETRIES + 1
        assert fog.counters.lookups_failed == 1
        assert fog.counters.lookups_ok == 0
        assert fog.counters.lookup_fallbacks == 0

    def test_fallback_budget_then_exactly_one_failure(self):
        engine = EventEngine(seed=0)
        fog = _StubFog(engine, fallback_peer=_StubPeer())
        driver = CrossLookupDriver(fog)
        driver.schedule(0, "missing-id", 1.0, migrate=False)
        # Primary retries plus the jittered fallback budget (≤ 1.5×retry
        # interval per attempt) all land well inside this horizon.
        engine.run_until(
            LOOKUP_RETRY_SECONDS
            * (LOOKUP_MAX_RETRIES + LOOKUP_FALLBACK_RETRIES + 4)
            * 2
        )
        assert fog.lookup_attempts == LOOKUP_MAX_RETRIES + 1
        assert fog.fallback_attempts == LOOKUP_FALLBACK_RETRIES + 1
        assert fog.counters.lookup_fallbacks == 1
        assert fog.counters.lookups_failed == 1


class TestFogMonitors:
    def test_staleness_monitor_warn_critical_edges(self):
        monitor = DirectoryStalenessMonitor(30.0)  # warn > 90, critical > 300
        assert monitor.check({"t": 0.0, "fed_directory_staleness": 90.0}) == []
        warn = monitor.check({"t": 1.0, "fed_directory_staleness": 90.1})
        assert [e.severity for e in warn] == ["warning"]
        assert monitor.check({"t": 2.0, "fed_directory_staleness": 200.0}) == []
        crit = monitor.check({"t": 3.0, "fed_directory_staleness": 300.1})
        assert [e.severity for e in crit] == ["critical"]
        recovered = monitor.check({"t": 4.0, "fed_directory_staleness": 10.0})
        assert [e.severity for e in recovered] == ["info"]
        assert "recovered" in recovered[0].message

    def test_quarantine_monitor_warns_while_quarantined(self):
        monitor = FogQuarantineMonitor()
        assert monitor.check({"t": 0.0, "fed_fog_quarantined": 0}) == []
        events = monitor.check({"t": 1.0, "fed_fog_quarantined": 1})
        assert [e.severity for e in events] == ["warning"]
        assert monitor.check({"t": 2.0, "fed_fog_quarantined": 1}) == []

    def test_divergence_monitor_critical_and_recovery(self):
        monitor = DirectoryDivergenceMonitor()
        events = monitor.check({"t": 0.0, "fed_directory_divergence": 2})
        assert [e.severity for e in events] == ["critical"]
        recovered = monitor.check({"t": 1.0, "fed_directory_divergence": 0})
        assert [e.severity for e in recovered] == ["info"]

    def test_monitors_ignore_non_federated_samples(self):
        assert FogQuarantineMonitor().check({"t": 0.0}) == []
        assert DirectoryDivergenceMonitor().check({"t": 0.0}) == []


class TestForeignMetadataAdmission:
    @pytest.fixture()
    def item(self):
        account = Account.for_node(simulation_seed=77, node_id=3)
        return create_metadata(
            account=account,
            producer=3,
            sequence=0,
            created_at=0.0,
            valid_time_minutes=10.0,
        )

    def test_honest_item_admissible(self, item):
        assert foreign_metadata_admissible(item, now=1.0) is None

    def test_tampered_content_rejected(self, item):
        forged = replace(item, data_type="Forged/Tampered")
        assert foreign_metadata_admissible(forged, now=1.0) == FOREIGN_METADATA

    def test_forged_producer_address_rejected(self, item):
        forged = replace(item, producer_address="f0" * 20)
        assert foreign_metadata_admissible(forged, now=1.0) == FOREIGN_METADATA

    def test_garbage_key_rejected(self, item):
        forged = replace(item, producer_public_key_hex="zz-not-a-key")
        assert foreign_metadata_admissible(forged, now=1.0) == FOREIGN_METADATA

    def test_expired_item_rejected(self, item):
        assert (
            foreign_metadata_admissible(item, now=10.0 * 60.0 + 1.0)
            == FOREIGN_METADATA
        )

    def test_gateway_counts_rejected_migration(self, fast_config):
        cluster = build_cluster(2, fast_config, seed=3)
        gateway = cluster.nodes[min(cluster.node_ids)]
        foreign = Account.for_node(simulation_seed=88, node_id=9)
        honest = create_metadata(
            account=foreign, producer=9, sequence=0, created_at=0.0
        )
        assert gateway.adopt_foreign_metadata(honest) is not None
        forged = replace(
            create_metadata(
                account=foreign, producer=9, sequence=1, created_at=0.0
            ),
            data_type="Forged/Tampered",
        )
        assert gateway.adopt_foreign_metadata(forged) is None
        assert gateway.admission.rejections[FOREIGN_METADATA] == 1
        assert forged.data_id not in gateway.mempool
