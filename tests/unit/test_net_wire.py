"""Unit tests for the live wire protocol: frames and message codec."""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import messages as m
from repro.core.account import Account
from repro.core.blockchain import Blockchain
from repro.core.config import SystemConfig
from repro.core.errors import ValidationError
from repro.core.metadata import create_metadata
from repro.net.wire import (
    FRAME_HEADER_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    WireError,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    hello_frame,
    ping_frame,
    pong_frame,
)


@pytest.fixture
def item(account):
    return create_metadata(
        account, producer=0, sequence=0, created_at=5.0, properties="Camera"
    ).with_storing_nodes((0, 3))


@pytest.fixture
def genesis():
    accounts = {i: Account.for_node(66, i) for i in range(3)}
    address_of = {i: a.address for i, a in accounts.items()}
    chain = Blockchain(list(range(3)), SystemConfig(), address_of)
    return chain.block_at(0)


# -- frame codec ---------------------------------------------------------------


class TestFrameCodec:
    def test_round_trip(self):
        payload = {"v": 1, "kind": "ping", "t": 3.25}
        assert decode_frame(encode_frame(payload)) == payload

    def test_header_is_big_endian_length(self):
        frame = encode_frame({"a": 1})
        (length,) = struct.unpack(">I", frame[:FRAME_HEADER_BYTES])
        assert length == len(frame) - FRAME_HEADER_BYTES

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(WireError):
            encode_frame({"blob": "x" * 64}, max_bytes=32)

    def test_unserialisable_payload_rejected(self):
        with pytest.raises(WireError):
            encode_frame({"raw": b"bytes are not json"})

    def test_truncated_frame_stays_buffered(self):
        frame = encode_frame({"kind": "ping"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-2]) == []
        assert decoder.pending_bytes == len(frame) - 2
        assert decoder.feed(frame[-2:]) == [{"kind": "ping"}]
        assert decoder.pending_bytes == 0

    def test_oversized_frame_rejected_from_header_alone(self):
        # Only the 4-byte header arrives; the decoder must refuse without
        # waiting to buffer the announced (hostile) payload.
        decoder = FrameDecoder(max_bytes=1024)
        with pytest.raises(WireError):
            decoder.feed(struct.pack(">I", 1 << 30))

    def test_garbage_payload_rejected(self):
        body = b"\xff\xfenot json"
        decoder = FrameDecoder()
        with pytest.raises(WireError):
            decoder.feed(struct.pack(">I", len(body)) + body)

    def test_non_object_payload_rejected(self):
        body = json.dumps([1, 2, 3]).encode()
        with pytest.raises(WireError):
            decode_frame(struct.pack(">I", len(body)) + body)

    def test_multiple_frames_in_one_chunk(self):
        chunk = encode_frame({"n": 1}) + encode_frame({"n": 2})
        assert FrameDecoder().feed(chunk) == [{"n": 1}, {"n": 2}]

    @given(payloads=st.lists(
        st.dictionaries(
            st.text(max_size=8),
            st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=16)),
            max_size=4,
        ),
        min_size=1,
        max_size=5,
    ), chunk_size=st.integers(min_value=1, max_value=7))
    @settings(max_examples=50, deadline=None)
    def test_byte_at_a_time_reassembly(self, payloads, chunk_size):
        # Any split of the byte stream reassembles the same frame sequence.
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for start in range(0, len(stream), chunk_size):
            out.extend(decoder.feed(stream[start:start + chunk_size]))
        assert out == payloads
        assert decoder.pending_bytes == 0


# -- message codec -------------------------------------------------------------


def _round_trip(payload, category, source=2, size_bytes=123, sent_at=7.5):
    frame = decode_frame(encode_message(
        source, payload, category, size_bytes=size_bytes, sent_at=sent_at
    ))
    got_source, got, got_category, got_size, got_t = decode_message(frame)
    assert (got_source, got_category, got_size, got_t) == (
        source, category, size_bytes, sent_at
    )
    return got


class TestMessageCodec:
    def test_metadata_announce(self, item):
        got = _round_trip(m.MetadataAnnounce(metadata=item), m.CATEGORY_METADATA)
        assert got.metadata == item

    def test_block_announce(self, genesis):
        got = _round_trip(m.BlockAnnounce(block=genesis), m.CATEGORY_BLOCK)
        assert got.block == genesis

    def test_block_request_response(self, genesis):
        request = m.BlockRequest(indices=(3, 5), origin=1, ttl=2)
        assert _round_trip(request, m.CATEGORY_BLOCK_RECOVERY) == request
        response = m.BlockResponse(blocks=(genesis,))
        assert _round_trip(response, m.CATEGORY_BLOCK_RECOVERY) == response

    def test_chain_request_response(self, genesis):
        assert _round_trip(m.ChainRequest(origin=4), m.CATEGORY_CHAIN_SYNC) == (
            m.ChainRequest(origin=4)
        )
        response = m.ChainResponse(blocks=(genesis,))
        assert _round_trip(response, m.CATEGORY_CHAIN_SYNC) == response

    @pytest.mark.parametrize("payload,category", [
        (m.DataRequest(data_id="d1", requester=3, request_id=9),
         m.CATEGORY_DATA_REQUEST),
        (m.DataResponse(data_id="d1", request_id=9, size_bytes=4096),
         m.CATEGORY_DATA_RESPONSE),
        (m.DataNack(data_id="d1", request_id=9), m.CATEGORY_DATA_RESPONSE),
        (m.DisseminationRequest(data_id="d1", requester=3),
         m.CATEGORY_DISSEMINATION_REQUEST),
        (m.DisseminationResponse(data_id="d1", size_bytes=4096),
         m.CATEGORY_DISSEMINATION),
        (m.InvalidStorageClaim(data_id="d1", storing_node=2, claimer=5),
         m.CATEGORY_STORAGE_CLAIM),
    ])
    def test_scalar_messages(self, payload, category):
        assert _round_trip(payload, category) == payload

    def test_unknown_message_type_rejected_on_encode(self):
        with pytest.raises(WireError):
            encode_message(0, object(), "junk")

    def test_unknown_type_rejected_on_decode(self):
        frame = decode_frame(encode_message(
            0, m.ChainRequest(origin=0), m.CATEGORY_CHAIN_SYNC
        ))
        frame["type"] = "NoSuchMessage"
        with pytest.raises(WireError):
            decode_message(frame)

    def test_version_mismatch_rejected(self):
        frame = decode_frame(encode_message(
            0, m.ChainRequest(origin=0), m.CATEGORY_CHAIN_SYNC
        ))
        frame["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(WireError):
            decode_message(frame)

    def test_tampered_block_rejected(self, genesis):
        frame = decode_frame(encode_message(
            0, m.BlockAnnounce(block=genesis), m.CATEGORY_BLOCK
        ))
        frame["body"]["block"]["miner"] = 1  # hash no longer recomputes
        with pytest.raises(ValidationError):
            decode_message(frame)

    def test_malformed_body_rejected(self):
        frame = decode_frame(encode_message(
            0, m.ChainRequest(origin=0), m.CATEGORY_CHAIN_SYNC
        ))
        frame["body"] = {"wrong_field": 1}
        with pytest.raises(WireError):
            decode_message(frame)

    def test_defaulted_envelope_fields(self):
        # Frames from peers that omit size/t (same protocol version) still
        # decode, with neutral defaults.
        frame = decode_frame(encode_message(
            0, m.ChainRequest(origin=0), m.CATEGORY_CHAIN_SYNC
        ))
        del frame["size"], frame["t"]
        _, _, _, size_bytes, sent_at = decode_message(frame)
        assert (size_bytes, sent_at) == (0, 0.0)

    def test_message_frame_within_limit(self, genesis):
        with pytest.raises(WireError):
            encode_message(
                0, m.BlockAnnounce(block=genesis), m.CATEGORY_BLOCK, max_bytes=16
            )


# -- control frames ------------------------------------------------------------


class TestControlFrames:
    def test_hello_round_trip(self):
        frame = decode_frame(encode_frame(
            hello_frame(3, "abc123", 46203, sent_at=1.5)
        ))
        assert frame == {
            "v": PROTOCOL_VERSION, "kind": "hello", "node": 3,
            "genesis": "abc123", "port": 46203, "t": 1.5,
        }

    def test_ping_pong(self):
        assert decode_frame(encode_frame(ping_frame(2.0)))["kind"] == "ping"
        assert decode_frame(encode_frame(pong_frame(2.0)))["t"] == 2.0
