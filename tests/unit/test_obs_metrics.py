"""Metrics: counters, gauges, log2 histogram bucket edges, and merging."""

import math

import pytest

from repro.obs.metrics import (
    BUCKET_COUNT,
    MAX_EXP,
    MIN_EXP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_lower_edge,
    merge_snapshots,
)

pytestmark = pytest.mark.obs


class TestBucketEdges:
    def test_powers_of_two_land_on_their_lower_edge(self):
        # Half-open buckets [2^e, 2^(e+1)): 2^e starts bucket e - MIN_EXP.
        for exponent in range(MIN_EXP, MAX_EXP):
            index = bucket_index(2.0**exponent)
            assert index == exponent - MIN_EXP
            assert bucket_lower_edge(index) == 2.0**exponent

    def test_just_below_an_edge_stays_in_the_previous_bucket(self):
        assert bucket_index(math.nextafter(8.0, 0.0)) == bucket_index(4.0)
        assert bucket_index(8.0) == bucket_index(4.0) + 1

    def test_integer_and_float_agree(self):
        for value in (1, 2, 3, 7, 8, 1023, 1024, 2**53):
            assert bucket_index(value) == bucket_index(float(value))

    def test_huge_ints_are_exact_beyond_float_precision(self):
        # bit_length keeps arbitrary-size ints exact; 2^63 is the last
        # regular bucket, anything ≥ 2^64 overflows into it too.
        assert bucket_index(2**63) == BUCKET_COUNT - 1
        assert bucket_index(2**63 - 1) == BUCKET_COUNT - 2
        assert bucket_index(2**100) == BUCKET_COUNT - 1

    def test_zero_negative_and_underflow_go_to_bucket_zero(self):
        assert bucket_index(0) == 0
        assert bucket_index(-5.0) == 0
        assert bucket_index(2.0 ** (MIN_EXP - 3)) == 0

    def test_lower_edge_bounds(self):
        with pytest.raises(IndexError):
            bucket_lower_edge(-1)
        with pytest.raises(IndexError):
            bucket_lower_edge(BUCKET_COUNT)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_tracks_extrema(self):
        gauge = Gauge()
        assert gauge.to_dict() == {
            "type": "gauge", "value": 0.0, "min": None, "max": None, "updates": 0,
        }
        for value in (3.0, -1.0, 7.0, 2.0):
            gauge.set(value)
        dumped = gauge.to_dict()
        assert dumped["value"] == 2.0
        assert dumped["min"] == -1.0
        assert dumped["max"] == 7.0
        assert dumped["updates"] == 4

    def test_histogram_counts_sum_and_extrema(self):
        histogram = Histogram()
        for value in (1.0, 1.5, 4.0, 0.0):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.sum == 6.5
        assert histogram.min == 0.0
        assert histogram.max == 4.0
        assert histogram.mean() == pytest.approx(1.625)
        dumped = histogram.to_dict()
        # 1.0 and 1.5 share the [1, 2) bucket; 0.0 is in bucket 0.
        assert dumped["buckets"][str(bucket_index(1.0))] == 2
        assert dumped["buckets"][str(bucket_index(4.0))] == 1
        assert dumped["buckets"]["0"] == 1

    def test_histogram_merge_is_elementwise(self):
        a, b, both = Histogram(), Histogram(), Histogram()
        for value in (0.5, 2.0, 1024.0):
            a.record(value)
            both.record(value)
        for value in (2.0, 3.0):
            b.record(value)
            both.record(value)
        a.merge(b)
        assert a.buckets == both.buckets
        assert a.count == both.count
        assert a.sum == both.sum
        assert (a.min, a.max) == (both.min, both.max)

    def test_empty_histogram_mean_is_nan(self):
        assert math.isnan(Histogram().mean())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert "a" in registry
        assert len(registry) == 1

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_schema_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b.events").inc(2)
        registry.gauge("a.depth").set(3)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == "repro.obs.metrics/v1"
        assert list(snapshot["instruments"]) == ["a.depth", "b.events"]
        assert snapshot["instruments"]["b.events"]["value"] == 2

    def test_write_json_round_trips(self, tmp_path):
        import json

        registry = MetricsRegistry()
        registry.histogram("h").record(2.0)
        path = registry.write_json(tmp_path / "metrics.json")
        assert json.loads(path.read_text()) == registry.snapshot()


class TestMergeSnapshots:
    def test_counters_add(self):
        registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
        registry_a.counter("events").inc(3)
        registry_b.counter("events").inc(4)
        merged = merge_snapshots([registry_a.snapshot(), registry_b.snapshot()])
        assert merged["instruments"]["events"]["value"] == 7

    def test_disjoint_names_union(self):
        registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
        registry_a.counter("only.a").inc()
        registry_b.counter("only.b").inc()
        merged = merge_snapshots([registry_a.snapshot(), registry_b.snapshot()])
        assert set(merged["instruments"]) == {"only.a", "only.b"}

    def test_gauges_keep_global_extrema(self):
        registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
        registry_a.gauge("depth").set(5)
        registry_a.gauge("depth").set(1)
        registry_b.gauge("depth").set(-2)
        merged = merge_snapshots([registry_a.snapshot(), registry_b.snapshot()])
        gauge = merged["instruments"]["depth"]
        assert gauge["min"] == -2.0
        assert gauge["max"] == 5.0
        assert gauge["updates"] == 3

    def test_histograms_merge_matches_single_registry(self):
        shard_a, shard_b, single = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for value in (1, 2, 3):
            shard_a.histogram("lat").record(value)
            single.histogram("lat").record(value)
        for value in (3, 4096):
            shard_b.histogram("lat").record(value)
            single.histogram("lat").record(value)
        merged = merge_snapshots([shard_a.snapshot(), shard_b.snapshot()])
        assert merged["instruments"]["lat"] == single.snapshot()["instruments"]["lat"]

    def test_type_conflict_across_snapshots_raises(self):
        registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
        registry_a.counter("x").inc()
        registry_b.gauge("x").set(1)
        with pytest.raises(ValueError):
            merge_snapshots([registry_a.snapshot(), registry_b.snapshot()])

    def test_merge_does_not_mutate_inputs(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(1)
        snapshot = registry.snapshot()
        merge_snapshots([snapshot, snapshot])
        assert snapshot["instruments"]["events"]["value"] == 1
