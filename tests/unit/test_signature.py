"""Unit tests for ECDSA signing."""

import pytest

from repro.crypto.keys import N, PrivateKey, generate_keypair
from repro.crypto.signature import Signature, sign, verify


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(seed=("sig-tests", 0))


class TestSignVerify:
    def test_round_trip(self, keypair):
        private, public = keypair
        signature = sign(private, b"message")
        assert verify(public, b"message", signature)

    def test_wrong_message_rejected(self, keypair):
        private, public = keypair
        signature = sign(private, b"message")
        assert not verify(public, b"other message", signature)

    def test_wrong_key_rejected(self, keypair):
        private, _ = keypair
        _, other_public = generate_keypair(seed=("sig-tests", 1))
        signature = sign(private, b"message")
        assert not verify(other_public, b"message", signature)

    def test_deterministic_signatures(self, keypair):
        private, _ = keypair
        assert sign(private, b"m") == sign(private, b"m")

    def test_distinct_messages_distinct_nonces(self, keypair):
        # Same r for two messages would reveal nonce reuse.
        private, _ = keypair
        sig_a = sign(private, b"a")
        sig_b = sign(private, b"b")
        assert sig_a.r != sig_b.r

    def test_low_s_canonical_form(self, keypair):
        private, _ = keypair
        for message in (b"1", b"2", b"3", b"4", b"5"):
            assert sign(private, message).s <= N // 2

    def test_empty_message(self, keypair):
        private, public = keypair
        signature = sign(private, b"")
        assert verify(public, b"", signature)

    def test_large_message(self, keypair):
        private, public = keypair
        message = b"x" * 100_000
        assert verify(public, message, sign(private, message))

    def test_tampered_r_rejected(self, keypair):
        private, public = keypair
        signature = sign(private, b"m")
        tampered = Signature(r=(signature.r % (N - 1)) + 1, s=signature.s)
        if tampered.r != signature.r:
            assert not verify(public, b"m", tampered)

    def test_tampered_s_rejected(self, keypair):
        private, public = keypair
        signature = sign(private, b"m")
        tampered = Signature(r=signature.r, s=(signature.s % (N - 1)) + 1)
        if tampered.s != signature.s:
            assert not verify(public, b"m", tampered)


class TestSignatureEncoding:
    def test_round_trip(self, keypair):
        private, _ = keypair
        signature = sign(private, b"encode me")
        assert Signature.decode(signature.encode()) == signature

    def test_hex_round_trip(self, keypair):
        private, _ = keypair
        signature = sign(private, b"hex me")
        assert Signature.from_hex(signature.hex()) == signature

    def test_fixed_width(self, keypair):
        private, _ = keypair
        assert len(sign(private, b"w").encode()) == 64

    def test_zero_components_rejected(self):
        with pytest.raises(ValueError):
            Signature(0, 1)
        with pytest.raises(ValueError):
            Signature(1, 0)

    def test_overflow_components_rejected(self):
        with pytest.raises(ValueError):
            Signature(N, 1)

    def test_decode_wrong_length(self):
        with pytest.raises(ValueError):
            Signature.decode(b"\x01" * 63)
