"""Cross-process trace identity: TraceContext, trace ids, remote spans,
and the optional ``"tc"`` field on the wire envelope."""

import pytest

from repro.core.messages import CATEGORY_METADATA, DataRequest
from repro.net.wire import decode_frame, decode_message, encode_message
from repro.obs import runtime as obs_runtime
from repro.obs.tracer import NullTracer, TraceContext, Tracer

pytestmark = pytest.mark.obs


class TestTraceContextWire:
    def test_round_trip(self):
        ctx = TraceContext(trace_id="n3:7", span_id=7, origin="n3", sent_at=12.5)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_wire_form_is_a_flat_json_array(self):
        wire = TraceContext("n0:1", 1, "n0", 0.0).to_wire()
        assert wire == ["n0:1", 1, "n0", 0.0]

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "n0:1",
            [],
            ["n0:1", 1, "n0"],  # too short
            ["n0:1", 1, "n0", 0.0, "extra"],
            [1, 1, "n0", 0.0],  # trace_id not a string
            ["n0:1", "1", "n0", 0.0],  # span_id not an int
            ["n0:1", True, "n0", 0.0],  # bool is not a span id
            ["n0:1", 1, 0, 0.0],  # origin not a string
            ["n0:1", 1, "n0", "now"],  # sent_at not numeric
        ],
    )
    def test_malformed_wire_forms_parse_to_none(self, bad):
        assert TraceContext.from_wire(bad) is None


class TestTracerTraceIds:
    def test_root_span_mints_origin_qualified_trace_id(self):
        tracer = Tracer(origin="n5")
        with tracer.span("root") as handle:
            assert handle.span.trace_id == f"n5:{handle.span.span_id}"

    def test_children_inherit_the_root_trace_id(self):
        tracer = Tracer(origin="n5")
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert child.span.trace_id == root.span.trace_id
        assert grandchild.span.trace_id == root.span.trace_id

    def test_sibling_roots_get_distinct_trace_ids(self):
        tracer = Tracer(origin="n0")
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.span.trace_id != second.span.trace_id

    def test_current_context_snapshots_the_innermost_open_span(self):
        tracer = Tracer(origin="n2", sim_clock=lambda: 42.0)
        assert tracer.current_context() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                ctx = tracer.current_context()
        assert ctx is not None
        assert ctx.span_id == inner.span.span_id
        assert ctx.trace_id == inner.span.trace_id
        assert ctx.origin == "n2"
        assert ctx.sent_at == 42.0

    def test_current_context_without_sim_clock_stamps_zero(self):
        tracer = Tracer(origin="n2")
        with tracer.span("s"):
            assert tracer.current_context().sent_at == 0.0

    def test_remote_span_joins_the_senders_trace(self):
        sender = Tracer(origin="n0", sim_clock=lambda: 3.0)
        with sender.span("net.timer"):
            ctx = sender.current_context()

        receiver = Tracer(origin="n1")
        with receiver.remote_span("net.deliver", "net", ctx) as handle:
            span = handle.span
        assert span.trace_id == ctx.trace_id
        assert span.remote_parent == ctx.span_id
        assert span.remote_origin == "n0"
        # Lexical parentage stays local: this was a root span here.
        assert span.parent_id is None

    def test_remote_span_children_stay_in_the_remote_trace(self):
        ctx = TraceContext("n9:4", 4, "n9", 1.0)
        receiver = Tracer(origin="n1")
        with receiver.remote_span("deliver", "net", ctx):
            with receiver.span("handler") as child:
                pass
        assert child.span.trace_id == "n9:4"

    def test_null_tracer_context_surface(self):
        tracer = NullTracer()
        assert tracer.current_context() is None
        handle = tracer.remote_span("x", "net", TraceContext("n0:1", 1, "n0"))
        with handle:
            pass  # shared no-op handle


class TestWireEnvelopeTc:
    def _payload(self):
        return DataRequest(data_id="d1", requester=0, request_id=3)

    def test_tc_absent_by_default(self):
        frame = decode_frame(
            encode_message(0, self._payload(), CATEGORY_METADATA, sent_at=1.0)
        )
        assert "tc" not in frame

    def test_tc_rides_the_envelope_without_touching_decode(self):
        ctx = TraceContext("n0:9", 9, "n0", 5.5)
        frame = decode_frame(
            encode_message(
                0,
                self._payload(),
                CATEGORY_METADATA,
                size_bytes=64,
                sent_at=5.5,
                trace_ctx=ctx.to_wire(),
            )
        )
        assert frame["tc"] == ["n0:9", 9, "n0", 5.5]
        # The 5-tuple decode contract is unchanged by the extra key.
        source, payload, category, size, sent_at = decode_message(frame)
        assert (source, category, size, sent_at) == (0, CATEGORY_METADATA, 64, 5.5)
        assert payload == self._payload()
        assert TraceContext.from_wire(frame["tc"]) == ctx

    def test_runtime_helper_returns_none_when_disabled(self):
        obs_runtime.disable()
        assert obs_runtime.current_trace_context() is None

    def test_runtime_helpers_round_trip_when_enabled(self):
        session = obs_runtime.enable(origin="n7")
        try:
            with obs_runtime.span("net.timer", "net"):
                ctx = obs_runtime.current_trace_context()
                assert ctx is not None and ctx.origin == "n7"
            with obs_runtime.remote_span("net.deliver", "net", ctx) as handle:
                pass
            assert handle.span.remote_origin == "n7"
            # ctx=None degrades to a plain local span.
            with obs_runtime.remote_span("net.deliver", "net", None) as plain:
                pass
            assert plain.span.remote_parent is None
            assert session.tracer.depth == 0
        finally:
            obs_runtime.disable()
