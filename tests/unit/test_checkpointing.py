"""Unit tests for checkpoint blocks (the §V-D nothing-at-stake mitigation)."""

import pytest

from repro.core.account import Account
from repro.core.block import Block
from repro.core.blockchain import Blockchain
from repro.core.config import SystemConfig
from repro.core.errors import ValidationError
from repro.core.pos import compute_hit, compute_pos_hash, mining_delay


def make_world(checkpoint_interval, checkpoint_lag=0):
    # lag 0: blocks checkpoint as soon as the chain reaches them (the
    # simplest semantics for unit-testing the reorg rules; the network
    # tests exercise the default confirmation lag).
    config = SystemConfig(
        expected_block_interval=10.0,
        checkpoint_interval=checkpoint_interval,
        checkpoint_lag=checkpoint_lag,
    )
    accounts = {i: Account.for_node(55, i) for i in range(3)}
    address_of = {i: a.address for i, a in accounts.items()}
    chain = Blockchain(list(range(3)), config, address_of)
    return config, accounts, chain


def mine(chain, accounts, miner):
    parent = chain.tip
    address = accounts[miner].address
    state = chain.state
    hit = compute_hit(parent.pos_hash, address, chain.config.hit_modulus)
    amendment = state.amendment(parent.timestamp)
    delay = mining_delay(
        hit,
        state.tokens(miner),
        state.stored_items(miner, parent.timestamp),
        amendment,
    )
    return Block(
        index=parent.index + 1,
        timestamp=parent.timestamp + delay,
        previous_hash=parent.current_hash,
        pos_hash=compute_pos_hash(parent.pos_hash, address),
        miner=miner,
        miner_address=address,
        hit=hit,
        target_b=amendment,
        storing_nodes=(miner,),
        previous_storing_nodes=tuple(state.block_storing.get(parent.index, ())),
    )


def grow(chain, accounts, miners):
    for miner in miners:
        chain.append_block(mine(chain, accounts, miner))


class TestLastCheckpoint:
    def test_disabled_by_default(self):
        _, accounts, chain = make_world(checkpoint_interval=0)
        grow(chain, accounts, [0, 1, 2, 0, 1])
        assert chain.last_checkpoint() == 0

    def test_advances_in_intervals(self):
        _, accounts, chain = make_world(checkpoint_interval=3)
        assert chain.last_checkpoint() == 0
        grow(chain, accounts, [0, 1])
        assert chain.last_checkpoint() == 0
        grow(chain, accounts, [2])  # height 3
        assert chain.last_checkpoint() == 3
        grow(chain, accounts, [0, 1])  # height 5
        assert chain.last_checkpoint() == 3
        grow(chain, accounts, [2])  # height 6
        assert chain.last_checkpoint() == 6


class TestCheckpointedReorg:
    def test_shallow_reorg_still_allowed(self):
        _, accounts, chain = make_world(checkpoint_interval=3)
        _, _, other = make_world(checkpoint_interval=3)
        shared = [mine(chain, accounts, 0), ]
        chain.append_block(shared[0])
        other.append_block(shared[0])
        # Our chain: height 2 via miner 1.  Other: height 3 via miner 2.
        grow(chain, accounts, [1])
        grow(other, accounts, [2, 0])
        # Checkpoint is still 0 (height 2 < interval), so the longer fork
        # that diverges at height 2 is acceptable.
        assert chain.consider_chain(other.blocks)
        assert chain.tip.current_hash == other.tip.current_hash

    def test_reorg_across_checkpoint_refused(self):
        _, accounts, chain = make_world(checkpoint_interval=2)
        _, _, other = make_world(checkpoint_interval=2)
        shared = mine(chain, accounts, 0)
        chain.append_block(shared)
        other.append_block(shared)
        # Diverge at height 2, then our chain passes the checkpoint.
        grow(chain, accounts, [1, 2])  # height 3, checkpoint at 2
        grow(other, accounts, [2, 0, 1, 2])  # height 5, different block 2
        assert chain.last_checkpoint() == 2
        with pytest.raises(ValidationError):
            chain.consider_chain(other.blocks)
        # Our chain is untouched.
        assert chain.height == 3

    def test_reorg_agreeing_through_checkpoint_allowed(self):
        _, accounts, chain = make_world(checkpoint_interval=2)
        _, _, other = make_world(checkpoint_interval=2)
        for miner in (0, 1, 2):
            block = mine(chain, accounts, miner)
            chain.append_block(block)
            other.append_block(block)
        # Fork only above the checkpoint (height 3+).
        grow(other, accounts, [0, 1])
        assert chain.last_checkpoint() == 2
        assert chain.consider_chain(other.blocks)
        assert chain.height == 5

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(checkpoint_interval=-1)
        with pytest.raises(ValueError):
            SystemConfig(checkpoint_interval=2, checkpoint_lag=-1)


class TestConfirmationLag:
    def test_default_lag_is_twice_interval(self):
        _, accounts, chain = make_world(checkpoint_interval=3, checkpoint_lag=None)
        grow(chain, accounts, [0, 1, 2])  # height 3
        # Block 3 is a checkpoint candidate but not yet 6 deep.
        assert chain.last_checkpoint() == 0
        grow(chain, accounts, [0, 1, 2, 0, 1, 2])  # height 9
        # Confirmed height = 9 − 6 = 3 → checkpoint at 3.
        assert chain.last_checkpoint() == 3

    def test_explicit_lag(self):
        _, accounts, chain = make_world(checkpoint_interval=2, checkpoint_lag=1)
        grow(chain, accounts, [0, 1, 2])  # height 3, confirmed 2
        assert chain.last_checkpoint() == 2

    def test_lagged_checkpoint_permits_recent_reorg(self):
        _, accounts, chain = make_world(checkpoint_interval=2, checkpoint_lag=4)
        _, _, other = make_world(checkpoint_interval=2, checkpoint_lag=4)
        shared = mine(chain, accounts, 0)
        chain.append_block(shared)
        other.append_block(shared)
        grow(chain, accounts, [1, 2])  # height 3; confirmed height < 0 → no ckpt
        grow(other, accounts, [2, 0, 1, 2])  # height 5, diverges at 2
        assert chain.last_checkpoint() == 0
        assert chain.consider_chain(other.blocks)  # recent fork still resolvable
