"""Unit tests for the ASCII plotting helpers."""

import math

import pytest

from repro.metrics.ascii_plot import bar_chart, series_plot, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_values_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_values_mid_level(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_extremes_hit_bounds(self):
        line = sparkline([0, 100])
        assert line[0] == "▁" and line[-1] == "█"

    def test_nan_renders_as_space(self):
        assert sparkline([1.0, float("nan"), 2.0])[1] == " "

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "

    def test_single_point_renders_mid_level(self):
        line = sparkline([42.0])
        assert len(line) == 1
        assert line in "▁▂▃▄▅▆▇█"

    def test_single_nan(self):
        assert sparkline([float("nan")]) == " "

    def test_infinity_treated_as_missing(self):
        line = sparkline([1.0, float("inf"), 2.0])
        assert line[1] == " "
        assert line[0] != " " and line[2] != " "


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        chart = bar_chart(["short", "a-very-long-label"], [1.0, 2.0])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_values_shown(self):
        chart = bar_chart(["x"], [3.25])
        assert "3.25" in chart

    def test_unit_suffix(self):
        assert "MB" in bar_chart(["x"], [7.0], unit="MB")

    def test_empty(self):
        assert bar_chart([], []) == ""

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)

    def test_zero_values_empty_bars(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert "█" not in chart

    def test_single_bar_fills_the_width(self):
        chart = bar_chart(["only"], [2.5], width=8)
        assert chart.count("█") == 8

    def test_nan_value_gets_empty_bar(self):
        chart = bar_chart(["a", "b"], [float("nan"), 4.0], width=8)
        lines = chart.splitlines()
        assert "█" not in lines[0] and "nan" in lines[0]
        assert lines[1].count("█") == 8


class TestSeriesPlot:
    def test_one_line_per_series(self):
        plot = series_plot(
            [0, 10, 20], [[1, 2, 3], [3, 2, 1]], ["up", "down"]
        )
        lines = plot.splitlines()
        assert len(lines) == 3  # 2 series + caption
        assert lines[0].startswith("  up") or lines[0].startswith("up")

    def test_caption_shows_range(self):
        plot = series_plot([0, 84], [[100, 50]], ["battery"])
        assert "0 … 84" in plot

    def test_endpoints_annotated(self):
        plot = series_plot([0, 1], [[100.0, 49.2]], ["pow"])
        assert "100" in plot and "49.2" in plot

    def test_mismatched_names(self):
        with pytest.raises(ValueError):
            series_plot([0], [[1.0]], ["a", "b"])

    def test_no_series_no_labels_is_empty(self):
        assert series_plot([], [], []) == ""

    def test_single_point_series(self):
        plot = series_plot([7], [[3.0]], ["lone"])
        assert "lone" in plot
        assert "[3 → 3]" in plot
        assert "x: 7 … 7" in plot

    def test_empty_series_is_skipped_but_caption_remains(self):
        plot = series_plot([0, 1], [[]], ["empty"])
        assert "empty" not in plot
        assert "x: 0 … 1" in plot

    def test_nan_only_series_renders_blank_sparkline(self):
        plot = series_plot([0, 1], [[math.nan, math.nan]], ["gone"])
        assert "gone" in plot  # present, just blank glyphs
