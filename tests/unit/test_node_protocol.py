"""Surgical unit tests for EdgeNode protocol branches.

The end-to-end tests cover the happy paths; these tests drive the specific
branches — fork detection on announce, buffer-drain escalation, response
timeouts, dissemination NACK behaviour — with hand-built inputs.
"""

import dataclasses

import pytest

from repro.core.blockchain import BlockOutcome
from repro.core.config import SystemConfig
from repro.core.messages import (
    BlockRequest,
    BlockResponse,
    ChainRequest,
    ChainResponse,
    DataNack,
    DataRequest,
    DisseminationRequest,
)
from repro.sim.cluster import build_cluster


@pytest.fixture
def world(fast_config):
    cluster = build_cluster(6, fast_config, seed=51)
    cluster.start()
    return cluster


def run_to_height(cluster, height):
    deadline = cluster.engine.now + height * cluster.config.expected_block_interval * 20
    while cluster.engine.now < deadline:
        cluster.engine.run_until(
            cluster.engine.now + cluster.config.expected_block_interval
        )
        if cluster.longest_chain_node().chain.height >= height:
            return
    raise AssertionError("chain stalled")


class TestForkHandling:
    def test_fork_announce_triggers_chain_request(self, world):
        """A block at height+1 with a foreign parent hash must trigger a
        ChainRequest to the sender, not a validation-error rejection."""
        run_to_height(world, 2)
        world.engine.run_until(world.engine.now + 5.0)
        node = world.nodes[0]
        tip = node.chain.tip
        fake = dataclasses.replace(
            tip,
            index=tip.index + 1,
            previous_hash="ff" * 32,
            current_hash="",
        )
        sync_before = world.network.trace.category_bytes("chain_sync")
        node._on_block_announce(source=1, block=fake)
        assert world.network.trace.category_bytes("chain_sync") > sync_before
        # Tip unchanged (the fake never validated).
        assert node.chain.tip.current_hash == tip.current_hash

    def test_stale_block_ignored_quietly(self, world):
        run_to_height(world, 3)
        world.engine.run_until(world.engine.now + 5.0)
        node = world.nodes[0]
        old = node.chain.blocks[1]
        # A *different* miner's late competitor at an old height is plain
        # stale — dropped without a rejection (first-received wins).
        other = next(
            n
            for n in world.node_ids
            if n != old.miner and (1, n) not in node.admission.equivocation.seen
        )
        competitor = dataclasses.replace(
            old,
            miner=other,
            miner_address=node.chain.address_of[other],
            timestamp=old.timestamp + 0.5,
            current_hash="",
        )
        rejected_before = node.counters.blocks_rejected
        node._on_block_announce(source=other, block=competitor)
        assert node.counters.blocks_rejected == rejected_before
        assert node.chain.blocks[1].current_hash == old.current_hash

    def test_same_miner_twin_rejected_as_equivocation(self, world):
        run_to_height(world, 3)
        world.engine.run_until(world.engine.now + 5.0)
        node = world.nodes[0]
        mined = next(
            (
                b
                for b in reversed(node.chain.blocks)
                if b.miner not in (-1, node.node_id)
                and (b.index, b.miner) in node.admission.equivocation.seen
            ),
            None,
        )
        if mined is None:
            pytest.skip("node 0 mined every block at this seed")
        twin = dataclasses.replace(
            mined, timestamp=mined.timestamp + 0.5, current_hash=""
        )
        tip_before = node.chain.tip.current_hash
        node._on_block_announce(source=mined.miner, block=twin)
        assert node.admission.rejections.get("equivocation", 0) >= 1
        assert node.admission.scores.get(mined.miner, 0.0) > 0
        assert node.chain.tip.current_hash == tip_before


class TestBlockRequestServing:
    def test_serves_stored_blocks(self, world):
        run_to_height(world, 2)
        world.engine.run_until(world.engine.now + 5.0)
        server = world.nodes[1]
        held = sorted(server.storage.stored_block_indices())
        assert held, "every node at least holds the last block"
        request = BlockRequest(indices=(held[-1],), origin=0)
        bytes_before = world.network.trace.category_bytes("block_recovery")
        server._on_block_request(source=0, request=request)
        assert world.network.trace.category_bytes("block_recovery") > bytes_before

    def test_forwards_unheld_blocks_with_ttl(self, world):
        run_to_height(world, 4)
        world.engine.run_until(world.engine.now + 5.0)
        server = world.nodes[1]
        # Find an index the server does NOT hold but the chain records.
        missing = [
            index
            for index in range(1, server.chain.height)
            if server.storage.get_block(index) is None
        ]
        if not missing:
            pytest.skip("server happens to hold every block at this seed")
        request = BlockRequest(indices=(missing[0],), origin=0, ttl=2)
        sent_before = world.network.messages_sent
        server._on_block_request(source=0, request=request)
        assert world.network.messages_sent > sent_before  # forwarded

    def test_ttl_zero_stops_forwarding(self, world):
        run_to_height(world, 4)
        world.engine.run_until(world.engine.now + 5.0)
        server = world.nodes[1]
        missing = [
            index
            for index in range(1, server.chain.height)
            if server.storage.get_block(index) is None
        ]
        if not missing:
            pytest.skip("server holds everything")
        request = BlockRequest(indices=(missing[0],), origin=0, ttl=0)
        sent_before = world.network.messages_sent
        server._on_block_request(source=0, request=request)
        assert world.network.messages_sent == sent_before


class TestResponseTimeout:
    def test_timeout_claims_and_fails_over(self, world, account):
        run_to_height(world, 2)
        world.engine.run_until(world.engine.now + 10.0)
        # Publish from node 0, then request from node 5 but have the serving
        # candidate never answer (we intercept by taking it offline right
        # after the send — the message is dropped, so no response arrives).
        producer = world.nodes[0]
        item = producer.produce_data()
        run_to_height(world, world.longest_chain_node().chain.height + 2)
        world.engine.run_until(world.engine.now + 15.0)
        requester = world.nodes[5]
        request_id = requester.request_data(item.data_id)
        if request_id is None:
            pytest.skip("request resolved locally at this seed")
        pending = requester._pending[request_id]
        target = pending.current_target
        # Drop the in-flight exchange: target goes offline before replying.
        world.network.set_online(target, False)
        world.engine.run_until(world.engine.now + 60.0)
        world.network.set_online(target, True)
        world.engine.run_until(world.engine.now + 120.0)
        # The requester either got the data from another replica or failed
        # cleanly — no stuck pending state either way.
        assert request_id not in requester._pending
        served = requester.counters.data_requests_served
        failed = requester.counters.data_requests_failed
        assert served + failed >= 1


class TestDisseminationEdgeCases:
    def test_nack_for_unknown_data(self, world):
        node = world.nodes[2]
        nacks_before = node.counters.data_nacks_sent
        node._on_data_request(
            source=0, request=DataRequest(data_id="ghost", requester=0, request_id=7)
        )
        assert node.counters.data_nacks_sent == nacks_before + 1

    def test_dissemination_request_for_unknown_data_ignored(self, world):
        node = world.nodes[2]
        sent_before = world.network.messages_sent
        node._on_dissemination_request(
            DisseminationRequest(data_id="ghost", requester=0)
        )
        assert world.network.messages_sent == sent_before

    def test_chain_request_served_with_full_chain(self, world):
        run_to_height(world, 2)
        node = world.nodes[3]
        bytes_before = world.network.trace.category_bytes("chain_sync")
        node._on_chain_request(0, ChainRequest(origin=0))
        assert world.network.trace.category_bytes("chain_sync") > bytes_before

    def test_unsolicited_nack_ignored(self, world):
        node = world.nodes[2]
        node._on_data_nack(source=1, nack=DataNack(data_id="x", request_id=999))
        assert node.counters.claims_broadcast == 0

    def test_stale_block_response_discarded(self, world):
        run_to_height(world, 3)
        world.engine.run_until(world.engine.now + 5.0)
        node = world.nodes[4]
        stale = BlockResponse(blocks=(node.chain.blocks[1],))
        node._on_block_response(0, stale)
        assert not node.sync.buffered
