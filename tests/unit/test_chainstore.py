"""Unit tests for the SQLite chain store."""

import json
import sqlite3
from dataclasses import replace

import pytest

from repro.core.config import PAPER_CONFIG
from repro.core.errors import PersistError
from repro.metrics.export import store_chain_record
from repro.persist.chainstore import KIND_BLOCK, KIND_RECENT, ChainStore
from repro.sim.runner import ExperimentSpec, run_experiment

pytestmark = pytest.mark.persist


@pytest.fixture(scope="module")
def finished_run():
    """One short real run whose chain exercises every store column."""
    config = replace(
        PAPER_CONFIG, simulation_minutes=12.0, data_items_per_minute=2.0
    )
    return run_experiment(ExperimentSpec(node_count=5, config=config, seed=11))


@pytest.fixture(scope="module")
def chain(finished_run):
    return finished_run.cluster.longest_chain_node().chain


@pytest.fixture
def store(tmp_path, finished_run, chain):
    with ChainStore(tmp_path / "chain.sqlite") as handle:
        for block in chain.blocks:
            handle.put_block(block)
        handle.put_accounts(finished_run.cluster.accounts)
        yield handle


class TestReads:
    def test_height_and_counts(self, store, chain):
        assert store.height() == chain.height
        assert store.block_count() == chain.height + 1
        assert store.metadata_count() == sum(
            len(block.metadata_items) for block in chain.blocks
        )
        assert store.metadata_count() > 0

    def test_tip_hash(self, store, chain):
        assert store.tip_hash() == chain.tip.current_hash

    def test_empty_store(self, tmp_path):
        with ChainStore(tmp_path / "empty.sqlite") as empty:
            assert empty.height() == -1
            assert empty.tip_hash() is None
            assert empty.block_by_index(0) is None
            assert empty.verify_integrity() == []

    def test_block_round_trip_by_index_and_hash(self, store, chain):
        for block in chain.blocks:
            assert store.block_by_index(block.index) == block
            assert store.block_by_hash(block.current_hash) == block
        assert store.block_by_hash("no-such-hash") is None

    def test_iter_blocks_in_chain_order(self, store, chain):
        assert list(store.iter_blocks(verify_hashes=True)) == list(chain.blocks)

    def test_block_timestamps_sorted(self, store, chain):
        timestamps = store.block_timestamps()
        assert timestamps == [block.timestamp for block in chain.blocks]
        assert timestamps == sorted(timestamps)

    def test_miner_distribution_excludes_genesis(self, store, chain):
        distribution = store.miner_distribution()
        assert sum(distribution.values()) == chain.height  # genesis excluded
        assert all(node >= 0 for node in distribution)

    def test_accounts_round_trip(self, store, finished_run):
        stored = store.accounts()
        for node_id, account in finished_run.cluster.accounts.items():
            address, public_key = stored[node_id]
            assert address == account.address
            assert public_key == account.public_key.hex()


class TestCache:
    def test_repeated_reads_hit_cache(self, store):
        store.block_by_index(1)
        misses = store.cache_misses
        store.block_by_index(1)
        store.block_by_index(1)
        assert store.cache_hits >= 2
        assert store.cache_misses == misses

    def test_cache_eviction_is_lru(self, tmp_path, chain):
        with ChainStore(tmp_path / "tiny.sqlite", cache_blocks=2) as tiny:
            for block in chain.blocks:
                tiny.put_block(block)
            tiny.block_by_index(0)  # faults block 0 back in, evicting the LRU
            hits = tiny.cache_hits
            tiny.block_by_index(0)
            assert tiny.cache_hits == hits + 1

    def test_cache_size_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ChainStore(tmp_path / "bad.sqlite", cache_blocks=0)


class TestMetadataSearch:
    def test_find_by_type(self, store, chain):
        items = store.find_metadata(data_type="Sensor")
        assert all("Sensor" in item.data_type for item in items)
        expected = sum(
            1
            for block in chain.blocks
            for item in block.metadata_items
            if "Sensor" in item.data_type
        )
        assert len(items) == expected

    def test_find_by_producer(self, store, chain):
        producer = next(
            item.producer
            for block in chain.blocks
            for item in block.metadata_items
        )
        items = store.find_metadata(producer=producer)
        assert items and all(item.producer == producer for item in items)

    def test_find_newest_first_with_limit(self, store):
        items = store.find_metadata(limit=3)
        assert len(items) <= 3
        stamps = [item.created_at for item in items]
        assert stamps == sorted(stamps, reverse=True)

    def test_find_created_after(self, store):
        items = store.find_metadata(created_after=300.0)
        assert all(item.created_at >= 300.0 for item in items)


class TestAssignments:
    def test_assignments_match_blocks(self, store, chain):
        node = chain.blocks[1].storing_nodes[0]
        kinds = dict()
        for block_idx, kind in store.assignments_of(node):
            kinds.setdefault(kind, []).append(block_idx)
        for idx in kinds.get(KIND_BLOCK, []):
            assert node in chain.blocks[idx].storing_nodes
        for idx in kinds.get(KIND_RECENT, []):
            assert node in chain.blocks[idx].recent_cache_nodes

    def test_put_block_replaces_satellites(self, store, chain):
        block = chain.blocks[1]
        store.put_block(block)  # idempotent re-put
        rows = store.assignments_of(block.storing_nodes[0])
        assert len([r for r in rows if r[0] == 1 and r[1] == KIND_BLOCK]) == 1
        assert store.metadata_count() == sum(
            len(b.metadata_items) for b in chain.blocks
        )


class TestIntegrity:
    def test_clean_store_verifies(self, store):
        assert store.verify_integrity() == []

    def _raw(self, store):
        store.close()
        return sqlite3.connect(str(store.path))

    def test_payload_tamper_detected(self, store):
        conn = self._raw(store)
        payload = json.loads(
            conn.execute("SELECT payload FROM blocks WHERE idx = 1").fetchone()[0]
        )
        payload["miner"] = payload["miner"] + 1
        conn.execute(
            "UPDATE blocks SET payload = ? WHERE idx = 1",
            (json.dumps(payload, sort_keys=True),),
        )
        conn.commit()
        conn.close()
        with ChainStore(store.path) as reopened:
            problems = reopened.verify_integrity()
        assert any("block 1" in problem for problem in problems)

    def test_hash_column_tamper_detected(self, store):
        conn = self._raw(store)
        conn.execute("UPDATE blocks SET hash = 'deadbeef' WHERE idx = 2")
        conn.commit()
        conn.close()
        with ChainStore(store.path) as reopened:
            problems = reopened.verify_integrity()
        assert any("hash column" in problem for problem in problems)

    def test_missing_block_detected_as_gap(self, store):
        conn = self._raw(store)
        conn.execute("DELETE FROM blocks WHERE idx = 1")
        conn.commit()
        conn.close()
        with ChainStore(store.path) as reopened:
            problems = reopened.verify_integrity()
        assert any("gap" in problem for problem in problems)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "future.sqlite"
        with ChainStore(path) as handle:
            handle.set_meta("schema_version", "999")
        with pytest.raises(PersistError, match="schema"):
            ChainStore(path)


class TestExportFromStore:
    def test_store_chain_record_matches_chain(self, store, chain):
        record = store_chain_record(store)
        assert record["chain_height"] == chain.height
        assert record["tip_hash"] == chain.tip.current_hash
        assert record["accounts"] == 5
        assert sum(record["blocks_mined"].values()) == chain.height
        assert record["mean_block_interval_s"] > 0
