"""Unit tests for range-bounded mobility."""

import math

import pytest

from repro.simnet.mobility import MobilityProfile, RangeBoundedMobility
from repro.simnet.topology import Position, Topology


class TestMobilityProfile:
    def test_negative_range_rejected(self):
        with pytest.raises(ValueError):
            MobilityProfile(home=Position(0, 0), wander_range=-1.0)

    def test_zero_range_allowed(self):
        MobilityProfile(home=Position(0, 0), wander_range=0.0)


class TestRangeBoundedMobility:
    def test_initial_positions_are_homes(self, rng):
        homes = [Position(10, 10), Position(100, 100)]
        mobility = RangeBoundedMobility.uniform(homes, rng, wander_range=30.0)
        assert mobility.current_positions() == homes

    def test_epoch_stays_within_range(self, rng):
        homes = [Position(150, 150)] * 20
        mobility = RangeBoundedMobility.uniform(homes, rng, wander_range=30.0)
        for _ in range(10):
            for home, pos in zip(homes, mobility.advance_epoch()):
                assert home.distance_to(pos) <= 30.0 + 1e-9

    def test_zero_range_never_moves(self, rng):
        homes = [Position(50, 50)]
        mobility = RangeBoundedMobility.uniform(homes, rng, wander_range=0.0)
        assert mobility.advance_epoch() == homes

    def test_positions_clipped_to_field(self, rng):
        homes = [Position(0, 0), Position(300, 300)]
        mobility = RangeBoundedMobility.uniform(
            homes, rng, wander_range=30.0, field_size=300.0
        )
        for _ in range(20):
            for pos in mobility.advance_epoch():
                assert 0 <= pos.x <= 300 and 0 <= pos.y <= 300

    def test_epoch_updates_topology(self, rng):
        homes = [Position(0, 0), Position(60, 0)]
        mobility = RangeBoundedMobility.uniform(homes, rng, wander_range=10.0)
        topo = Topology(homes, comm_range=70.0)
        mobility.advance_epoch(topo)
        # Positions moved at most 10 m each; distance stays within 80 m but
        # the topology object must reflect the new coordinates.
        assert topo.positions == mobility.current_positions()

    def test_wander_range_accessor(self, rng):
        mobility = RangeBoundedMobility(
            [
                MobilityProfile(Position(0, 0), 5.0),
                MobilityProfile(Position(1, 1), 25.0),
            ],
            rng,
        )
        assert mobility.wander_range(0) == 5.0
        assert mobility.wander_range(1) == 25.0

    def test_relocate_home(self, rng):
        mobility = RangeBoundedMobility.uniform([Position(0, 0)], rng, wander_range=30.0)
        mobility.relocate_home(0, Position(200, 200), new_range=10.0)
        assert mobility.profile(0).home == Position(200, 200)
        assert mobility.wander_range(0) == 10.0
        assert mobility.current_positions()[0] == Position(200, 200)

    def test_node_count(self, rng):
        mobility = RangeBoundedMobility.uniform([Position(0, 0)] * 7, rng)
        assert mobility.node_count == 7

    def test_epoch_distribution_covers_disk(self, rng):
        # Over many epochs a node should visit all quadrants of its disk.
        mobility = RangeBoundedMobility.uniform([Position(150, 150)], rng, wander_range=30.0)
        quadrants = set()
        for _ in range(200):
            pos = mobility.advance_epoch()[0]
            quadrants.add((pos.x >= 150, pos.y >= 150))
        assert len(quadrants) == 4
