"""Unit tests for the UFL solvers (greedy, local search, LP, MILP, random)."""

import math

import numpy as np
import pytest

from repro.facility.greedy import solve_greedy
from repro.facility.local_search import solve_local_search
from repro.facility.lp_rounding import solve_lp_relaxation, solve_lp_rounding
from repro.facility.mip import solve_milp
from repro.facility.problem import UFLProblem
from repro.facility.random_baseline import solve_random


def make_instance(num_facilities, num_clients, seed):
    rng = np.random.default_rng(seed)
    return UFLProblem(
        facility_costs=rng.uniform(1, 20, size=num_facilities),
        connection_costs=rng.uniform(0, 10, size=(num_facilities, num_clients)),
    )


@pytest.fixture
def trivial():
    """One obviously-best facility."""
    return UFLProblem(
        facility_costs=np.array([1.0, 100.0]),
        connection_costs=np.array([[1.0, 1.0], [1.0, 1.0]]),
    )


ALL_SOLVERS = [solve_greedy, solve_local_search, solve_lp_rounding, solve_milp]


class TestAllSolvers:
    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_trivial_instance(self, trivial, solver):
        solution = solver(trivial)
        solution.validate(trivial)
        assert solution.open_facilities == (0,)
        assert solution.total_cost(trivial) == pytest.approx(3.0)

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_solutions_valid_on_random_instances(self, solver, seed):
        problem = make_instance(6, 8, seed)
        solver(problem).validate(problem)

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_infeasible_raises(self, solver):
        problem = UFLProblem(np.array([math.inf]), np.zeros((1, 1)))
        with pytest.raises(ValueError):
            solver(problem)

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_full_facility_never_opened(self, solver):
        problem = UFLProblem(
            facility_costs=np.array([math.inf, 5.0]),
            connection_costs=np.array([[0.0, 0.0], [1.0, 1.0]]),
        )
        solution = solver(problem)
        assert 0 not in solution.open_facilities

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_heuristics_close_to_optimal(self, seed):
        problem = make_instance(7, 9, seed)
        optimum = solve_milp(problem).total_cost(problem)
        for solver in (solve_greedy, solve_local_search, solve_lp_rounding):
            cost = solver(problem).total_cost(problem)
            assert cost >= optimum - 1e-9
            assert cost <= 2.0 * optimum  # far inside the theory bounds

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_local_search_never_worse_than_greedy(self, seed):
        problem = make_instance(8, 10, seed)
        greedy_cost = solve_greedy(problem).total_cost(problem)
        ls_cost = solve_local_search(problem).total_cost(problem)
        assert ls_cost <= greedy_cost + 1e-9


class TestLPRelaxation:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lower_bound_below_optimum(self, seed):
        problem = make_instance(6, 8, seed)
        lp = solve_lp_relaxation(problem)
        optimum = solve_milp(problem).total_cost(problem)
        assert lp.lower_bound <= optimum + 1e-6

    def test_fractional_coverage(self):
        problem = make_instance(5, 7, 0)
        lp = solve_lp_relaxation(problem)
        assert np.all(lp.x.sum(axis=0) >= 1 - 1e-6)

    def test_linking_constraint(self):
        problem = make_instance(5, 7, 1)
        lp = solve_lp_relaxation(problem)
        assert np.all(lp.x <= lp.y[:, None] + 1e-6)


class TestLocalSearch:
    def test_accepts_initial_open_set(self, trivial):
        solution = solve_local_search(trivial, initial=[1])
        solution.validate(trivial)
        # The drop/swap moves must escape the bad start.
        assert solution.open_facilities == (0,)

    def test_infeasible_initial_rejected(self):
        problem = UFLProblem(
            np.array([1.0, math.inf]), np.zeros((2, 1))
        )
        with pytest.raises(ValueError):
            solve_local_search(problem, initial=[1])

    def test_empty_initial_open_set_rejected(self, trivial):
        # Zero facilities open serves nobody: infeasible, not a crash.
        with pytest.raises(ValueError):
            solve_local_search(trivial, initial=[])

    def test_all_equal_costs_collapse_to_single_facility(self):
        # Fully symmetric instance: every drop ties, every swap ties.
        # The drop loop must still collapse the bloated start down to one
        # facility and then terminate (no improvement ping-pong on ties).
        problem = UFLProblem(
            facility_costs=np.full(4, 7.0),
            connection_costs=np.full((4, 5), 3.0),
        )
        solution = solve_local_search(problem, initial=[0, 1, 2, 3])
        solution.validate(problem)
        assert len(solution.open_facilities) == 1
        assert solution.total_cost(problem) == pytest.approx(7.0 + 5 * 3.0)

    def test_single_node_problem(self):
        # One facility, one client: nothing to add, drop, or swap.
        problem = UFLProblem(
            facility_costs=np.array([2.0]),
            connection_costs=np.array([[0.5]]),
        )
        solution = solve_local_search(problem)
        solution.validate(problem)
        assert solution.open_facilities == (0,)
        assert solution.total_cost(problem) == pytest.approx(2.5)

    def test_sole_open_facility_never_dropped(self):
        # The drop guard: even when the facility cost dominates the
        # objective, the last open facility must stay open.
        problem = UFLProblem(
            facility_costs=np.array([50.0]),
            connection_costs=np.array([[1.0, 1.0, 1.0]]),
        )
        solution = solve_local_search(problem)
        solution.validate(problem)
        assert solution.open_facilities == (0,)


class TestMILP:
    def test_instance_size_guard(self):
        problem = make_instance(10, 10, 0)
        with pytest.raises(ValueError):
            solve_milp(problem, max_variables=5)


class TestRandomBaseline:
    def test_replica_count_respected(self, rng):
        problem = make_instance(8, 8, 3)
        solution = solve_random(problem, 3, rng)
        solution.validate(problem)
        assert solution.replica_count == 3

    def test_invalid_replica_count(self, rng):
        problem = make_instance(3, 3, 0)
        with pytest.raises(ValueError):
            solve_random(problem, 0, rng)
        with pytest.raises(ValueError):
            solve_random(problem, 10, rng)

    def test_repair_covers_partitioned_clients(self, rng):
        # Two components: facilities {0,1} serve clients {0,1}; facility 2
        # serves client 2.  Any 1-replica sample must be repaired to 2.
        inf = math.inf
        problem = UFLProblem(
            facility_costs=np.array([1.0, 1.0, 1.0]),
            connection_costs=np.array(
                [[0.0, 1.0, inf], [1.0, 0.0, inf], [inf, inf, 0.0]]
            ),
        )
        solution = solve_random(problem, 1, rng)
        solution.validate(problem)
        assert solution.replica_count == 2

    def test_unrepairable_raises(self, rng):
        inf = math.inf
        problem = UFLProblem(
            facility_costs=np.array([1.0, inf]),
            connection_costs=np.array([[0.0, inf], [inf, 0.0]]),
        )
        with pytest.raises(ValueError):
            solve_random(problem, 1, rng)

    def test_randomness_varies_open_set(self):
        problem = make_instance(10, 10, 5)
        rng = np.random.default_rng(0)
        sets = {solve_random(problem, 2, rng).open_facilities for _ in range(20)}
        assert len(sets) > 1
