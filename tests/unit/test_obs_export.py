"""Perfetto/Chrome-trace export: event schema, file shape, round-trip."""

import json

import pytest

from repro.obs.export import (
    TRACE_PID,
    TRACE_TID,
    read_trace_events,
    span_to_event,
    summarize_events,
    write_perfetto_jsonl,
    write_strict_json,
)
from repro.obs.tracer import Span

pytestmark = pytest.mark.obs

#: Fields the Trace Event Format requires on a complete ("X") event.
REQUIRED_EVENT_FIELDS = {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}


def make_span(**overrides):
    base = dict(
        span_id=1,
        parent_id=None,
        name="engine.event",
        category="engine",
        wall_start_ns=1_000_000,
        wall_end_ns=3_500_000,
        sim_start=10.0,
        sim_end=10.25,
        attrs={"callback": "EdgeNode.on_block"},
    )
    base.update(overrides)
    return Span(**base)


class TestSpanToEvent:
    def test_complete_event_schema(self):
        event = span_to_event(make_span())
        assert REQUIRED_EVENT_FIELDS <= set(event)
        assert event["ph"] == "X"
        assert event["pid"] == TRACE_PID
        assert event["tid"] == TRACE_TID
        assert isinstance(event["ts"], float)
        assert isinstance(event["dur"], float)
        assert event["dur"] >= 0

    def test_wall_timebase_microseconds(self):
        event = span_to_event(make_span(), timebase="wall")
        assert event["ts"] == pytest.approx(1_000.0)  # 1 ms in µs
        assert event["dur"] == pytest.approx(2_500.0)
        # The sim interval rides along in args.
        assert event["args"]["sim_start_s"] == 10.0
        assert event["args"]["sim_dur_s"] == pytest.approx(0.25)

    def test_sim_timebase_flips_the_axes(self):
        event = span_to_event(make_span(), timebase="sim")
        assert event["ts"] == pytest.approx(10.0 * 1e6)
        assert event["dur"] == pytest.approx(0.25 * 1e6)
        assert event["args"]["wall_dur_us"] == pytest.approx(2_500.0)

    def test_unknown_timebase_rejected(self):
        with pytest.raises(ValueError):
            span_to_event(make_span(), timebase="lunar")

    def test_attrs_and_lineage_in_args(self):
        event = span_to_event(make_span(span_id=7, parent_id=3))
        assert event["args"]["span_id"] == 7
        assert event["args"]["parent_id"] == 3
        assert event["args"]["callback"] == "EdgeNode.on_block"

    def test_empty_category_becomes_uncategorized(self):
        event = span_to_event(make_span(category=""))
        assert event["cat"] == "uncategorized"


class TestTraceFile:
    def test_file_is_jsonl_after_the_opening_bracket(self, tmp_path):
        spans = [make_span(span_id=i) for i in (1, 2, 3)]
        path = write_perfetto_jsonl(spans, tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert lines[0] == "["
        # Every subsequent line is one JSON object (trailing comma trimmed).
        for line in lines[1:]:
            parsed = json.loads(line.rstrip(","))
            assert isinstance(parsed, dict)

    def test_first_event_is_process_name_metadata(self, tmp_path):
        path = write_perfetto_jsonl([make_span()], tmp_path / "trace.jsonl")
        events = read_trace_events(path)
        assert events[0]["ph"] == "M"
        assert events[0]["name"] == "process_name"

    def test_round_trip_preserves_spans(self, tmp_path):
        spans = [make_span(span_id=i, name=f"s{i}") for i in (1, 2)]
        path = write_perfetto_jsonl(spans, tmp_path / "trace.jsonl")
        complete = [e for e in read_trace_events(path) if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["s1", "s2"]
        assert complete == [span_to_event(s) for s in spans]

    def test_strict_json_also_readable(self, tmp_path):
        events = [span_to_event(make_span())]
        path = write_strict_json(events, tmp_path / "trace.json")
        assert json.loads(path.read_text()) == events
        assert read_trace_events(path) == events

    def test_empty_file_reads_as_no_events(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert read_trace_events(empty) == []


class TestSummarize:
    def test_rows_aggregate_by_category_and_name(self):
        spans = [
            make_span(span_id=1, name="solve", category="facility",
                      wall_start_ns=0, wall_end_ns=4_000_000),
            make_span(span_id=2, name="solve", category="facility",
                      wall_start_ns=0, wall_end_ns=2_000_000),
            make_span(span_id=3, name="fsync", category="persist",
                      wall_start_ns=0, wall_end_ns=1_000_000),
        ]
        rows = summarize_events([span_to_event(s) for s in spans])
        assert [(r["category"], r["name"], r["count"]) for r in rows] == [
            ("facility", "solve", 2),
            ("persist", "fsync", 1),
        ]
        assert rows[0]["wall_ms"] == pytest.approx(6.0)

    def test_metadata_events_are_ignored(self, tmp_path):
        path = write_perfetto_jsonl([make_span()], tmp_path / "trace.jsonl")
        rows = summarize_events(read_trace_events(path))
        assert len(rows) == 1
        assert rows[0]["name"] == "engine.event"
