"""Unit tests for the blockchain and chain state."""

import dataclasses

import pytest

from repro.core.account import Account
from repro.core.block import Block
from repro.core.blockchain import Blockchain, BlockOutcome, ChainState
from repro.core.config import SystemConfig
from repro.core.errors import ChainLinkError, ConsensusError, ValidationError
from repro.core.metadata import create_metadata
from repro.core.pos import compute_hit, compute_pos_hash, mining_delay


@pytest.fixture
def config():
    return SystemConfig(
        storage_capacity=50,
        expected_block_interval=10.0,
        recent_cache_capacity=3,
        token_rescale_interval=5,
        token_rescale_ratio=0.5,
    )


@pytest.fixture
def world(config):
    """(config, accounts, address_of, chain) for a 4-node network."""
    accounts = {i: Account.for_node(7, i) for i in range(4)}
    address_of = {i: a.address for i, a in accounts.items()}
    chain = Blockchain(list(range(4)), config, address_of)
    return accounts, address_of, chain


def mine_next(chain, accounts, miner, metadata_items=(), storing=(0,),
              recent=(), timestamp=None):
    """Construct a valid child block for ``miner``."""
    parent = chain.tip
    address = accounts[miner].address
    state = chain.state
    hit = compute_hit(parent.pos_hash, address, chain.config.hit_modulus)
    amendment = state.amendment(parent.timestamp)
    stake = state.tokens(miner)
    stored = state.stored_items(miner, parent.timestamp)
    delay = mining_delay(hit, stake, stored, amendment)
    return Block(
        index=parent.index + 1,
        timestamp=parent.timestamp + delay if timestamp is None else timestamp,
        previous_hash=parent.current_hash,
        pos_hash=compute_pos_hash(parent.pos_hash, address),
        miner=miner,
        miner_address=address,
        hit=hit,
        target_b=amendment,
        metadata_items=tuple(metadata_items),
        storing_nodes=tuple(storing),
        previous_storing_nodes=tuple(state.block_storing.get(parent.index, ())),
        recent_cache_nodes=tuple(recent),
    )


class TestGenesisState:
    def test_initial_tokens(self, world, config):
        _, _, chain = world
        for node in range(4):
            assert chain.state.tokens(node) == config.initial_tokens

    def test_initial_stored_items_is_one(self, world):
        # "the number of data stored in a new node is also one" (Section V-A).
        _, _, chain = world
        for node in range(4):
            assert chain.state.stored_items(node, 0.0) == 1

    def test_initial_amendment(self, world, config):
        _, _, chain = world
        expected = config.hit_modulus / (5 * config.expected_block_interval * 1.0)
        assert chain.state.amendment(0.0) == pytest.approx(expected)


class TestAppend:
    def test_valid_block_appends(self, world):
        accounts, _, chain = world
        block = mine_next(chain, accounts, miner=2)
        chain.append_block(block)
        assert chain.height == 1
        assert chain.tip is block

    def test_miner_earns_token(self, world, config):
        accounts, _, chain = world
        chain.append_block(mine_next(chain, accounts, miner=2))
        assert chain.state.tokens(2) == config.initial_tokens + config.mining_incentive

    def test_storing_nodes_earn_incentive_and_slots(self, world, config):
        accounts, _, chain = world
        chain.append_block(mine_next(chain, accounts, miner=2, storing=(1, 3)))
        assert chain.state.tokens(1) == config.initial_tokens + config.storage_incentive
        assert chain.state.stored_items(1, chain.tip.timestamp) == 2  # tip + block

    def test_metadata_assignment_counts_until_expiry(self, world, config):
        accounts, _, chain = world
        item = create_metadata(
            accounts[0], 0, 0, created_at=0.0, valid_time_minutes=1.0
        ).with_storing_nodes((1,))
        chain.append_block(mine_next(chain, accounts, miner=2, metadata_items=[item]))
        at = chain.tip.timestamp
        assert chain.state.stored_items(1, at) == 2
        assert chain.state.stored_items(1, item.expires_at + 1) == 1

    def test_recent_cache_fifo(self, world, config):
        accounts, _, chain = world
        for _ in range(5):
            chain.append_block(mine_next(chain, accounts, miner=2, recent=(3,)))
        # Capacity 3: only the 3 newest blocks stay cached.
        assert len(chain.state.recent_cache_of(3)) == 3
        assert chain.state.recent_cache_of(3) == (3, 4, 5)

    def test_metadata_index(self, world):
        accounts, _, chain = world
        item = create_metadata(accounts[0], 0, 0, 0.0).with_storing_nodes((1,))
        chain.append_block(mine_next(chain, accounts, miner=1, metadata_items=[item]))
        assert chain.metadata_of(item.data_id) is not None
        assert chain.metadata_of("missing") is None

    def test_token_rescaling(self, world, config):
        accounts, _, chain = world
        tokens_before = None
        for i in range(config.token_rescale_interval):
            chain.append_block(mine_next(chain, accounts, miner=0))
            if i == config.token_rescale_interval - 2:
                tokens_before = chain.state.tokens(1)
        # Block index 5 (= interval) triggers the halving.
        assert chain.state.tokens(1) == pytest.approx(
            tokens_before * config.token_rescale_ratio
        )


class TestValidation:
    def test_wrong_parent_hash_rejected(self, world):
        accounts, _, chain = world
        block = mine_next(chain, accounts, miner=2)
        bad = dataclasses.replace(block, previous_hash="0" * 64, current_hash="")
        with pytest.raises(ChainLinkError):
            chain.append_block(bad)

    def test_tampered_hash_rejected(self, world):
        accounts, _, chain = world
        block = mine_next(chain, accounts, miner=2)
        bad = dataclasses.replace(block, hit=block.hit)  # keeps stale hash? no —
        # replace() preserves current_hash while we alter storing_nodes:
        bad = dataclasses.replace(block, storing_nodes=(0, 1))
        with pytest.raises(ValidationError):
            chain.append_block(bad)

    def test_forged_hit_rejected(self, world):
        accounts, _, chain = world
        block = mine_next(chain, accounts, miner=2)
        forged = dataclasses.replace(block, hit=0, timestamp=block.timestamp, current_hash="")
        with pytest.raises(ConsensusError):
            chain.append_block(forged)

    def test_wrong_miner_address_rejected(self, world):
        accounts, _, chain = world
        block = mine_next(chain, accounts, miner=2)
        forged = dataclasses.replace(
            block, miner_address=accounts[3].address, current_hash=""
        )
        with pytest.raises(ConsensusError):
            chain.append_block(forged)

    def test_wrong_amendment_rejected(self, world):
        accounts, _, chain = world
        block = mine_next(chain, accounts, miner=2)
        forged = dataclasses.replace(block, target_b=block.target_b * 2, current_hash="")
        with pytest.raises(ConsensusError):
            chain.append_block(forged)

    def test_premature_timestamp_rejected(self, world):
        # Claiming the win before R_i caught up with the hit must fail.
        accounts, _, chain = world
        block = mine_next(chain, accounts, miner=2)
        if block.timestamp - chain.tip.timestamp > 1:
            early = dataclasses.replace(
                block, timestamp=chain.tip.timestamp + 1.0, current_hash=""
            )
            with pytest.raises(ConsensusError):
                chain.append_block(early)

    def test_timestamp_not_after_parent_rejected(self, world):
        accounts, _, chain = world
        block = mine_next(chain, accounts, miner=2, timestamp=chain.tip.timestamp)
        with pytest.raises(ConsensusError):
            chain.append_block(block)

    def test_unknown_miner_rejected(self, world):
        accounts, address_of, chain = world
        block = mine_next(chain, accounts, miner=2)
        forged = dataclasses.replace(block, miner=99, current_hash="")
        with pytest.raises(ConsensusError):
            chain.append_block(forged)


class TestConsiderBlock:
    def test_appended(self, world):
        accounts, _, chain = world
        assert chain.consider_block(mine_next(chain, accounts, 1)) is BlockOutcome.APPENDED

    def test_duplicate(self, world):
        accounts, _, chain = world
        block = mine_next(chain, accounts, 1)
        chain.consider_block(block)
        assert chain.consider_block(block) is BlockOutcome.DUPLICATE

    def test_stale_competitor(self, world):
        accounts, _, chain = world
        ours = mine_next(chain, accounts, 1)
        theirs = mine_next(chain, accounts, 2)
        chain.consider_block(ours)
        assert chain.consider_block(theirs) is BlockOutcome.STALE

    def test_gap_detected(self, world):
        accounts, _, chain = world
        b1 = mine_next(chain, accounts, 1)
        chain.append_block(b1)
        b2 = mine_next(chain, accounts, 2)
        chain.append_block(b2)
        # A fresh chain receiving b2 first sees a gap.
        fresh = Blockchain(list(range(4)), chain.config, chain.address_of)
        assert fresh.consider_block(b2) is BlockOutcome.GAP
        assert fresh.missing_indices(2) == [1, 2]


class TestConsiderChain:
    def test_adopts_longer_chain(self, world, config):
        accounts, address_of, chain = world
        other = Blockchain(list(range(4)), config, address_of)
        for _ in range(3):
            other.append_block(mine_next(other, accounts, 3))
        assert chain.consider_chain(other.blocks)
        assert chain.height == 3
        assert chain.tip.current_hash == other.tip.current_hash

    def test_rejects_shorter_or_equal(self, world, config):
        accounts, address_of, chain = world
        chain.append_block(mine_next(chain, accounts, 1))
        other = Blockchain(list(range(4)), config, address_of)
        other.append_block(mine_next(other, accounts, 2))
        assert not chain.consider_chain(other.blocks)
        assert chain.tip.miner == 1

    def test_rejects_different_genesis(self, world, config):
        accounts, address_of, chain = world
        other_config = dataclasses.replace(config, expected_block_interval=99.0)
        other = Blockchain(list(range(4)), other_config, address_of)
        other.append_block(mine_next(other, accounts, 2))
        other.append_block(mine_next(other, accounts, 2))
        with pytest.raises(ValidationError):
            chain.consider_chain(other.blocks)

    def test_rejects_invalid_candidate(self, world):
        accounts, _, chain = world
        good = mine_next(chain, accounts, 1)
        forged = dataclasses.replace(good, hit=0, current_hash="")
        candidate = [chain.blocks[0], forged, good]
        with pytest.raises(ValidationError):
            chain.consider_chain(candidate)


class TestChainStateGuards:
    def test_out_of_order_apply_rejected(self, world, config):
        accounts, _, chain = world
        block = mine_next(chain, accounts, 1)
        state = ChainState(range(4), config)
        with pytest.raises(ValueError):
            state.apply_block(block)  # genesis not applied yet

    def test_storage_snapshot(self, world):
        accounts, _, chain = world
        chain.append_block(mine_next(chain, accounts, 1, storing=(0, 1)))
        snapshot = chain.state.storage_snapshot(chain.tip.timestamp)
        assert snapshot[0] == 2 and snapshot[1] == 2
        assert snapshot[2] == 1 and snapshot[3] == 1
