"""Unit tests for the reconnect backoff schedule and peer tunables."""

import asyncio
import random

import pytest

from repro.net.peer import HandshakeInfo, PeerConfig, PeerManager, reconnect_backoff
from repro.net.wire import FrameDecoder


class TestReconnectBackoff:
    def test_jitter_free_schedule_doubles_to_cap(self):
        delays = [
            reconnect_backoff(a, base=0.05, cap=2.0, rng=None) for a in range(10)
        ]
        assert delays[:6] == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
        assert delays[6:] == [2.0, 2.0, 2.0, 2.0]

    def test_monotone_nondecreasing_without_jitter(self):
        delays = [reconnect_backoff(a, rng=None) for a in range(20)]
        assert all(a <= b for a, b in zip(delays, delays[1:]))

    def test_jitter_bounds(self):
        rng = random.Random(7)
        for attempt in range(12):
            delay = reconnect_backoff(
                attempt, base=0.05, cap=2.0, jitter=0.25, rng=rng
            )
            floor = min(2.0, 0.05 * 2.0 ** attempt)
            assert floor <= delay <= floor * 1.25 + 1e-12
            assert delay <= 2.0 * 1.25  # jittered cap

    def test_deterministic_for_seeded_rng(self):
        first = [reconnect_backoff(a, rng=random.Random(3)) for a in range(6)]
        second = [reconnect_backoff(a, rng=random.Random(3)) for a in range(6)]
        assert first == second

    def test_huge_attempt_does_not_overflow(self):
        assert reconnect_backoff(10_000, base=0.05, cap=2.0, rng=None) == 2.0

    def test_zero_jitter_with_rng_is_exact(self):
        delay = reconnect_backoff(3, base=0.1, cap=5.0, jitter=0.0,
                                  rng=random.Random(1))
        assert delay == pytest.approx(0.8)

    @pytest.mark.parametrize("kwargs", [
        {"attempt": -1},
        {"attempt": 0, "base": 0.0},
        {"attempt": 0, "cap": -1.0},
        {"attempt": 0, "jitter": 1.5},
        {"attempt": 0, "jitter": -0.1},
    ])
    def test_invalid_inputs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            reconnect_backoff(**kwargs)


def test_peer_config_defaults_are_sane():
    config = PeerConfig()
    assert config.handshake_timeout > 0
    assert config.heartbeat_interval > 0
    assert config.heartbeat_misses >= 1
    assert config.send_queue_frames > 0
    assert config.reconnect_base < config.reconnect_cap


class TestDialAttemptSchedule:
    """The per-peer attempt counter drives the backoff and resets on handshake."""

    def _manager(self):
        config = PeerConfig(
            reconnect_base=0.05, reconnect_cap=2.0, reconnect_jitter=0.0
        )
        return PeerManager(
            node_id=0,
            genesis_digest="g",
            on_message=lambda source, frame: None,
            config=config,
        )

    def test_delays_advance_per_peer(self):
        manager = self._manager()
        delays = [manager._next_dial_delay(7) for _ in range(6)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
        # Each peer gets its own schedule.
        assert manager._next_dial_delay(8) == 0.05
        assert manager._dial_attempts == {7: 6, 8: 1}

    def test_schedule_persists_across_dial_loops(self):
        # Unlike a loop-local counter, the schedule survives a dial loop
        # restarting: a peer that keeps failing handshakes does not get
        # the base delay back just because a fresh loop started.
        manager = self._manager()
        for _ in range(4):
            manager._next_dial_delay(3)
        assert manager._next_dial_delay(3) == 0.8

    def test_successful_handshake_resets_schedule(self):
        class _DummyWriter:
            def write(self, data):
                pass

            async def drain(self):
                pass

            def close(self):
                pass

        async def scenario():
            manager = self._manager()
            for _ in range(5):
                manager._next_dial_delay(7)
            reader = asyncio.StreamReader()
            reader.feed_eof()
            info = HandshakeInfo(node_id=7, genesis_digest="g", listen_port=1)
            manager._adopt(info, reader, _DummyWriter(), FrameDecoder(), [])
            assert 7 not in manager._dial_attempts
            # The next failure after a reset starts from the base delay.
            assert manager._next_dial_delay(7) == 0.05
            await manager.close()

        asyncio.run(scenario())
