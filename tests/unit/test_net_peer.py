"""Unit tests for the reconnect backoff schedule and peer tunables."""

import random

import pytest

from repro.net.peer import PeerConfig, reconnect_backoff


class TestReconnectBackoff:
    def test_jitter_free_schedule_doubles_to_cap(self):
        delays = [
            reconnect_backoff(a, base=0.05, cap=2.0, rng=None) for a in range(10)
        ]
        assert delays[:6] == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
        assert delays[6:] == [2.0, 2.0, 2.0, 2.0]

    def test_monotone_nondecreasing_without_jitter(self):
        delays = [reconnect_backoff(a, rng=None) for a in range(20)]
        assert all(a <= b for a, b in zip(delays, delays[1:]))

    def test_jitter_bounds(self):
        rng = random.Random(7)
        for attempt in range(12):
            delay = reconnect_backoff(
                attempt, base=0.05, cap=2.0, jitter=0.25, rng=rng
            )
            floor = min(2.0, 0.05 * 2.0 ** attempt)
            assert floor <= delay <= floor * 1.25 + 1e-12
            assert delay <= 2.0 * 1.25  # jittered cap

    def test_deterministic_for_seeded_rng(self):
        first = [reconnect_backoff(a, rng=random.Random(3)) for a in range(6)]
        second = [reconnect_backoff(a, rng=random.Random(3)) for a in range(6)]
        assert first == second

    def test_huge_attempt_does_not_overflow(self):
        assert reconnect_backoff(10_000, base=0.05, cap=2.0, rng=None) == 2.0

    def test_zero_jitter_with_rng_is_exact(self):
        delay = reconnect_backoff(3, base=0.1, cap=5.0, jitter=0.0,
                                  rng=random.Random(1))
        assert delay == pytest.approx(0.8)

    @pytest.mark.parametrize("kwargs", [
        {"attempt": -1},
        {"attempt": 0, "base": 0.0},
        {"attempt": 0, "cap": -1.0},
        {"attempt": 0, "jitter": 1.5},
        {"attempt": 0, "jitter": -0.1},
    ])
    def test_invalid_inputs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            reconnect_backoff(**kwargs)


def test_peer_config_defaults_are_sane():
    config = PeerConfig()
    assert config.handshake_timeout > 0
    assert config.heartbeat_interval > 0
    assert config.heartbeat_misses >= 1
    assert config.send_queue_frames > 0
    assert config.reconnect_base < config.reconnect_cap
