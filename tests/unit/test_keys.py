"""Unit tests for the pure-Python secp256k1 implementation."""

import pytest

from repro.crypto.keys import (
    GENERATOR,
    GX,
    GY,
    INFINITY,
    N,
    P,
    CurvePoint,
    PrivateKey,
    PublicKey,
    generate_keypair,
)


class TestCurvePoint:
    def test_generator_is_on_curve(self):
        # Constructor validates the curve equation.
        CurvePoint(GX, GY)

    def test_off_curve_point_rejected(self):
        with pytest.raises(ValueError):
            CurvePoint(GX, GY + 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CurvePoint(P, 0)

    def test_infinity_identity_left(self):
        assert INFINITY + GENERATOR == GENERATOR

    def test_infinity_identity_right(self):
        assert GENERATOR + INFINITY == GENERATOR

    def test_point_plus_negation_is_infinity(self):
        assert (GENERATOR + (-GENERATOR)).is_infinity

    def test_doubling_matches_addition(self):
        assert GENERATOR + GENERATOR == GENERATOR * 2

    def test_addition_commutes(self):
        p2 = GENERATOR * 2
        p3 = GENERATOR * 3
        assert p2 + p3 == p3 + p2

    def test_addition_associates(self):
        a, b, c = GENERATOR * 2, GENERATOR * 5, GENERATOR * 11
        assert (a + b) + c == a + (b + c)

    def test_scalar_mul_distributes(self):
        assert GENERATOR * 7 == GENERATOR * 3 + GENERATOR * 4

    def test_order_annihilates_generator(self):
        assert (GENERATOR * N).is_infinity

    def test_scalar_mod_order(self):
        assert GENERATOR * (N + 5) == GENERATOR * 5

    def test_negative_scalar(self):
        assert GENERATOR * (-3) == -(GENERATOR * 3)

    def test_known_2g(self):
        # Well-known secp256k1 vector for 2·G.
        p2 = GENERATOR * 2
        assert p2.x == 0xC6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5
        assert p2.y == 0x1AE168FEA63DC339A3C58419466CEAEEF7F632653266D0E1236431A950CFE52A

    def test_compressed_round_trip(self):
        for k in (1, 2, 3, 12345, N - 1):
            point = GENERATOR * k
            assert CurvePoint.decode(point.encode()) == point

    def test_infinity_encoding(self):
        assert CurvePoint.decode(INFINITY.encode()).is_infinity

    def test_decode_rejects_bad_prefix(self):
        data = b"\x05" + (1).to_bytes(32, "big")
        with pytest.raises(ValueError):
            CurvePoint.decode(data)

    def test_decode_rejects_non_residue(self):
        # x = 5 on secp256k1: 5³+7 = 132 is a QR? Find a non-point instead:
        # x = P - 1 gives (P-1)^3 + 7; just check errors are raised cleanly
        # for an x whose rhs is a non-residue.
        for x in range(1, 40):
            data = b"\x02" + x.to_bytes(32, "big")
            try:
                CurvePoint.decode(data)
            except ValueError:
                break
        else:
            pytest.fail("expected at least one non-residue x in 1..39")


class TestKeys:
    def test_private_out_of_range(self):
        with pytest.raises(ValueError):
            PrivateKey(0)
        with pytest.raises(ValueError):
            PrivateKey(N)

    def test_public_key_derivation_deterministic(self):
        private = PrivateKey(12345)
        assert private.public_key() == private.public_key()

    def test_public_key_round_trip(self):
        public = PrivateKey(9876).public_key()
        assert PublicKey.from_hex(public.hex()) == public

    def test_infinity_public_key_rejected(self):
        with pytest.raises(ValueError):
            PublicKey(INFINITY)

    def test_from_seed_deterministic(self):
        a = PrivateKey.from_seed("node", 7)
        b = PrivateKey.from_seed("node", 7)
        assert a == b

    def test_from_seed_distinct(self):
        assert PrivateKey.from_seed("node", 7) != PrivateKey.from_seed("node", 8)

    def test_generate_keypair_seeded(self):
        priv1, pub1 = generate_keypair(seed=("s", 1))
        priv2, pub2 = generate_keypair(seed=("s", 1))
        assert priv1 == priv2 and pub1 == pub2

    def test_generate_keypair_random_unique(self):
        _, pub1 = generate_keypair()
        _, pub2 = generate_keypair()
        assert pub1 != pub2

    def test_private_encode_round_trip(self):
        private = PrivateKey(31337)
        assert PrivateKey.decode(private.encode()) == private

    def test_private_decode_wrong_length(self):
        with pytest.raises(ValueError):
            PrivateKey.decode(b"\x01" * 31)

    def test_fingerprint_is_short(self):
        public = PrivateKey(5).public_key()
        assert len(public.fingerprint()) == 12
