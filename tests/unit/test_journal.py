"""Crash-injection tests for the write-ahead run journal."""

import json

import pytest

from repro.core.errors import PersistError
from repro.persist.journal import (
    JOURNAL_FORMAT_VERSION,
    REC_BLOCK,
    REC_RUN_START,
    JournalRecord,
    RunJournal,
    recover_journal,
)

pytestmark = pytest.mark.persist


@pytest.fixture
def journal_path(tmp_path):
    return tmp_path / "journal.jsonl"


def write_records(path, count: int) -> None:
    with RunJournal.open(path) as journal:
        for index in range(count):
            journal.append(REC_BLOCK, float(index), {"index": index})


class TestAppendAndRecover:
    def test_round_trip(self, journal_path):
        with RunJournal.open(journal_path) as journal:
            journal.append(REC_RUN_START, 0.0, {"seed": 7})
            journal.append(REC_BLOCK, 60.0, {"index": 1, "hash": "abc"})
        recovery = recover_journal(journal_path)
        assert not recovery.corrupt
        assert recovery.torn_tail_bytes == 0
        assert [r.type for r in recovery.records] == [REC_RUN_START, REC_BLOCK]
        assert recovery.records[1].payload == {"index": 1, "hash": "abc"}
        assert recovery.records[1].clock == 60.0

    def test_sequence_numbers_are_contiguous(self, journal_path):
        write_records(journal_path, 5)
        recovery = recover_journal(journal_path)
        assert [r.seq for r in recovery.records] == [0, 1, 2, 3, 4]
        assert recovery.next_seq == 5

    def test_reopen_continues_sequence(self, journal_path):
        write_records(journal_path, 3)
        with RunJournal.open(journal_path) as journal:
            assert journal.next_seq == 3
            assert journal.append(REC_BLOCK, 9.0, {}) == 3

    def test_append_after_close_rejected(self, journal_path):
        journal = RunJournal.open(journal_path)
        journal.close()
        with pytest.raises(PersistError):
            journal.append(REC_BLOCK, 0.0, {})

    def test_fsync_every_validated(self, journal_path):
        with pytest.raises(ValueError):
            RunJournal(journal_path, fsync_every=0)


class TestEmptyJournals:
    def test_missing_file_is_empty_journal(self, journal_path):
        recovery = recover_journal(journal_path)
        assert recovery.records == []
        assert not recovery.corrupt
        assert recovery.next_seq == 0

    def test_zero_length_file_is_empty_journal(self, journal_path):
        journal_path.write_bytes(b"")
        recovery = recover_journal(journal_path)
        assert recovery.records == []
        assert not recovery.corrupt
        assert recovery.torn_tail_bytes == 0
        # ... and a writer opens it cleanly.
        with RunJournal.open(journal_path) as journal:
            assert journal.next_seq == 0


class TestTornTail:
    def test_unterminated_final_record_dropped(self, journal_path):
        write_records(journal_path, 4)
        with journal_path.open("ab") as handle:
            handle.write(b'{"v": 1, "seq": 4, "type": "blo')  # died mid-write
        recovery = recover_journal(journal_path)
        assert not recovery.corrupt
        assert recovery.torn_tail_bytes > 0
        assert len(recovery.records) == 4

    def test_terminated_but_crc_broken_final_record_is_torn_tail(
        self, journal_path
    ):
        write_records(journal_path, 4)
        record = JournalRecord(seq=4, type=REC_BLOCK, clock=1.0, payload={})
        encoded = bytearray(record.encode())
        encoded[10] ^= 0xFF  # flip a byte, keep the newline
        with journal_path.open("ab") as handle:
            handle.write(bytes(encoded))
        recovery = recover_journal(journal_path)
        assert not recovery.corrupt
        assert recovery.torn_tail_bytes == len(encoded)
        assert len(recovery.records) == 4

    def test_open_truncates_torn_tail_and_resumes(self, journal_path):
        write_records(journal_path, 4)
        clean_size = journal_path.stat().st_size
        with journal_path.open("ab") as handle:
            handle.write(b"garbage tail with no newline")
        with RunJournal.open(journal_path) as journal:
            assert journal.next_seq == 4
            journal.append(REC_BLOCK, 5.0, {"index": 4})
        assert journal_path.stat().st_size > clean_size
        recovery = recover_journal(journal_path)
        assert not recovery.corrupt
        assert [r.seq for r in recovery.records] == [0, 1, 2, 3, 4]


class TestMidFileCorruption:
    def corrupt_record(self, journal_path, index: int) -> None:
        lines = journal_path.read_bytes().splitlines(keepends=True)
        lines[index] = b'{"not": "a valid record"}\n'
        journal_path.write_bytes(b"".join(lines))

    def test_crc_mismatch_mid_file_marks_corrupt(self, journal_path):
        write_records(journal_path, 6)
        lines = journal_path.read_bytes().splitlines(keepends=True)
        body = json.loads(lines[2])
        body["clock"] = 999.0  # payload no longer matches the stored crc
        lines[2] = json.dumps(body, sort_keys=True).encode() + b"\n"
        journal_path.write_bytes(b"".join(lines))
        recovery = recover_journal(journal_path)
        assert recovery.corrupt
        assert "CRC" in recovery.reason
        assert len(recovery.records) == 2
        assert recovery.dropped_records == 4

    def test_structural_damage_mid_file_marks_corrupt(self, journal_path):
        write_records(journal_path, 6)
        self.corrupt_record(journal_path, 1)
        recovery = recover_journal(journal_path)
        assert recovery.corrupt
        assert len(recovery.records) == 1
        assert recovery.dropped_records == 5

    def test_open_refuses_corrupt_journal(self, journal_path):
        write_records(journal_path, 6)
        self.corrupt_record(journal_path, 1)
        with pytest.raises(PersistError, match="corrupt"):
            RunJournal.open(journal_path)

    def test_sequence_break_marks_corrupt(self, journal_path):
        write_records(journal_path, 3)
        skipped = JournalRecord(seq=7, type=REC_BLOCK, clock=1.0, payload={})
        with journal_path.open("ab") as handle:
            handle.write(skipped.encode())
        write_tail = JournalRecord(seq=8, type=REC_BLOCK, clock=2.0, payload={})
        with journal_path.open("ab") as handle:
            handle.write(write_tail.encode())
        recovery = recover_journal(journal_path)
        assert recovery.corrupt
        assert "sequence" in recovery.reason
        assert len(recovery.records) == 3

    def test_wrong_format_version_rejected(self, journal_path):
        body = {
            "v": JOURNAL_FORMAT_VERSION + 1,
            "seq": 0,
            "type": REC_BLOCK,
            "clock": 0.0,
            "payload": {},
        }
        import zlib

        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        body["crc"] = format(zlib.crc32(canonical.encode()) & 0xFFFFFFFF, "08x")
        line = json.dumps(body, sort_keys=True, separators=(",", ":")) + "\n"
        journal_path.write_text(line + line)
        recovery = recover_journal(journal_path)
        assert recovery.corrupt
        assert "format" in recovery.reason
