"""Unit tests for run reports (terminal + HTML) and the run comparator."""

import json
import math

import pytest

from repro.obs.diff import (
    RULES,
    MetricRule,
    _badness,
    _compare_alerts,
    _compare_metric,
    _compare_verdicts,
    _final_value,
    compare_runs,
    render_comparison,
)
from repro.obs.report import (
    REPORT_NAME,
    _svg_line_chart,
    load_run,
    render_html_report,
    render_terminal_report,
    write_html_report,
)
from repro.obs.timeline import Timeline

pytestmark = pytest.mark.obs


def healthy_samples(count=6, height_step=1):
    return [
        {
            "t": 30.0 * i,
            "height": height_step * i,
            "interval_ewma": 30.0,
            "interval_ratio": 1.0,
            "intervals_seen": i,
            "fairness_max": 0.5 + 0.05 * i,
            "fairness_margin_min": 40.0,
            "saturated_nodes": 0,
            "storage_gini": 0.1,
            "stake_topk_share": 0.5,
            "coverage_recent": 0.9,
            "queue_depth": 3,
        }
        for i in range(count)
    ]


def write_run(directory, samples, events=None, verdict=None):
    """Materialise an obs directory from synthetic data."""
    directory.mkdir(parents=True, exist_ok=True)
    timeline = Timeline(30.0)
    timeline.samples = list(samples)
    timeline.write_jsonl(directory / "timeline.jsonl")
    if events is not None:
        with (directory / "events.jsonl").open("w") as handle:
            handle.write(json.dumps({"schema": "repro.obs.events/v1"}) + "\n")
            for event in events:
                handle.write(json.dumps(event) + "\n")
    if verdict is not None:
        (directory / "verdict.json").write_text(json.dumps(verdict))
    return directory


HEALTHY_VERDICT = {
    "schema": "repro.obs.verdict/v1",
    "status": "healthy",
    "alerts": 0,
    "events_total": 0,
    "degraded_now": [],
    "by_monitor": {"chain-stall": {"events": 0, "worst": None, "current_level": "ok"}},
}

CRITICAL_VERDICT = {
    "schema": "repro.obs.verdict/v1",
    "status": "critical",
    "alerts": 1,
    "events_total": 1,
    "degraded_now": ["chain-stall"],
    "by_monitor": {
        "chain-stall": {"events": 1, "worst": "critical", "current_level": "critical"}
    },
}

STALL_EVENT = {
    "time": 150.0,
    "monitor": "chain-stall",
    "severity": "critical",
    "message": "chain stalled at height 2 for 150s",
    "value": 150.0,
    "threshold": 100.0,
}


class TestLoadRun:
    def test_missing_timeline_raises_with_hint(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--obs"):
            load_run(tmp_path)

    def test_events_and_verdict_are_optional(self, tmp_path):
        write_run(tmp_path / "run", healthy_samples())
        run = load_run(tmp_path / "run")
        assert len(run["samples"]) == 6
        assert run["events"] is None and run["verdict"] is None

    def test_full_directory_loads_everything(self, tmp_path):
        write_run(
            tmp_path / "run", healthy_samples(),
            events=[STALL_EVENT], verdict=CRITICAL_VERDICT,
        )
        run = load_run(tmp_path / "run")
        assert run["header"]["schema"] == "repro.obs.timeline/v1"
        assert run["events"] == [STALL_EVENT]
        assert run["verdict"]["status"] == "critical"


class TestTerminalReport:
    def test_full_report_sections(self, tmp_path):
        write_run(
            tmp_path / "run", healthy_samples(),
            events=[STALL_EVENT], verdict=CRITICAL_VERDICT,
        )
        text = render_terminal_report(load_run(tmp_path / "run"))
        assert "verdict: CRITICAL" in text
        assert "chain-stall" in text
        assert "chain stalled at height 2" in text
        assert "chain height" in text        # the sparkline table caption
        assert "series statistics" in text
        assert "6 samples" in text

    def test_empty_timeline_degrades_gracefully(self, tmp_path):
        write_run(tmp_path / "run", [])
        text = render_terminal_report(load_run(tmp_path / "run"))
        assert "no samples recorded" in text


class TestHtmlReport:
    def test_self_contained_page(self, tmp_path):
        write_run(
            tmp_path / "run", healthy_samples(),
            events=[STALL_EVENT], verdict=CRITICAL_VERDICT,
        )
        page = render_html_report(load_run(tmp_path / "run"))
        assert page.startswith("<!DOCTYPE html>")
        assert "<polyline" in page       # inline SVG charts
        assert "CRITICAL" in page
        assert "src=" not in page        # no external assets

    def test_event_messages_are_escaped(self, tmp_path):
        hostile = dict(STALL_EVENT, message="<script>alert(1)</script>")
        write_run(tmp_path / "run", healthy_samples(), events=[hostile])
        page = render_html_report(load_run(tmp_path / "run"))
        assert "<script>alert" not in page
        assert "&lt;script&gt;" in page

    def test_write_defaults_next_to_inputs(self, tmp_path):
        run_dir = write_run(tmp_path / "run", healthy_samples())
        target = write_html_report(load_run(run_dir))
        assert target == run_dir / REPORT_NAME
        assert target.read_text().startswith("<!DOCTYPE html>")


class TestSvgLineChart:
    def test_empty_series_renders_nothing(self):
        assert _svg_line_chart([], [], "x") == ""

    def test_single_point_falls_back_to_a_dot(self):
        chart = _svg_line_chart([0.0], [1.0], "x")
        assert "<circle" in chart and "<polyline" not in chart

    def test_nan_gap_splits_the_polyline(self):
        times = [0.0, 1.0, 2.0, 3.0, 4.0]
        values = [1.0, 2.0, math.nan, 3.0, 4.0]
        chart = _svg_line_chart(times, values, "x")
        assert chart.count("<polyline") == 2


class TestBadness:
    def test_directions(self):
        assert _badness(MetricRule("m", "higher"), 3.0) == -3.0
        assert _badness(MetricRule("m", "lower"), 3.0) == 3.0
        assert _badness(MetricRule("m", "target", target=1.0), 1.4) == pytest.approx(0.4)

    def test_unknown_direction_rejects(self):
        with pytest.raises(ValueError):
            _badness(MetricRule("m", "sideways"), 1.0)


class TestFinalValue:
    def test_skips_trailing_nulls(self):
        samples = [{"m": 1.0}, {"m": 2.0}, {"m": None}]
        assert _final_value(samples, "m") == 2.0

    def test_all_missing_is_none(self):
        assert _final_value([{"m": None}], "m") is None
        assert _final_value([], "m") is None


class TestCompareMetric:
    RULE = MetricRule("height", "higher", rel_tolerance=0.05, abs_tolerance=1.0)

    def test_drop_beyond_slack_regresses(self):
        a = [{"height": 100.0}]
        b = [{"height": 90.0}]
        comparison = _compare_metric(self.RULE, a, b)
        assert comparison.regressed
        assert "worse by" in comparison.detail

    def test_drop_within_slack_is_ok(self):
        comparison = _compare_metric(self.RULE, [{"height": 100.0}], [{"height": 96.0}])
        assert not comparison.regressed

    def test_improvement_never_regresses(self):
        comparison = _compare_metric(self.RULE, [{"height": 10.0}], [{"height": 100.0}])
        assert not comparison.regressed

    def test_missing_series_is_not_a_regression(self):
        comparison = _compare_metric(self.RULE, [{"height": 10.0}], [{}])
        assert not comparison.regressed
        assert comparison.detail == "missing in one run"


class TestCompareVerdictsAndAlerts:
    def test_worsening_status_regresses(self):
        comparison = _compare_verdicts(HEALTHY_VERDICT, CRITICAL_VERDICT)
        assert comparison.regressed and comparison.detail == "healthy → critical"

    def test_improving_status_does_not(self):
        assert not _compare_verdicts(CRITICAL_VERDICT, HEALTHY_VERDICT).regressed

    def test_missing_verdict_skips(self):
        assert _compare_verdicts(None, HEALTHY_VERDICT) is None

    def test_new_alerting_monitor_regresses(self):
        comparison = _compare_alerts(HEALTHY_VERDICT, CRITICAL_VERDICT)
        assert comparison.regressed
        assert "chain-stall" in comparison.detail

    def test_vanished_alert_is_fine(self):
        assert not _compare_alerts(CRITICAL_VERDICT, HEALTHY_VERDICT).regressed


class TestCompareRuns:
    def test_identical_synthetic_runs_compare_clean(self, tmp_path):
        samples = healthy_samples()
        a = write_run(tmp_path / "a", samples, verdict=HEALTHY_VERDICT)
        b = write_run(tmp_path / "b", samples, verdict=HEALTHY_VERDICT)
        result = compare_runs(a, b)
        assert not result.regressed
        assert {c.metric for c in result.comparisons} == (
            {rule.key for rule in RULES} | {"verdict", "alerting_monitors"}
        )
        assert "no regressions" in render_comparison(result)

    def test_degraded_candidate_is_called_out(self, tmp_path):
        degraded = healthy_samples()
        degraded[-1]["height"] = 1          # chain barely grew
        degraded[-1]["coverage_recent"] = 0.2
        a = write_run(tmp_path / "a", healthy_samples(), verdict=HEALTHY_VERDICT)
        b = write_run(tmp_path / "b", degraded, verdict=CRITICAL_VERDICT)
        result = compare_runs(a, b)
        regressed = {c.metric for c in result.regressions}
        assert {"height", "coverage_recent", "verdict", "alerting_monitors"} <= regressed
        rendered = render_comparison(result)
        assert "REGRESSED" in rendered
        record = result.to_dict()
        assert record["schema"] == "repro.obs.compare/v1"
        assert record["regressed"] is True
        assert record["regressions"] == len(result.regressions)
