"""Unit tests for the allocation-verification module."""

import numpy as np
import pytest

from repro.core.allocation import AllocationEngine
from repro.core.blockchain import ChainState
from repro.core.config import SystemConfig
from repro.core.validation import (
    DETERMINISTIC_SOLVERS,
    allocations_verifiable,
    verify_block_allocations,
)
from repro.core.block import make_genesis


class TestVerifiability:
    @pytest.mark.parametrize("solver", DETERMINISTIC_SOLVERS)
    def test_deterministic_solvers(self, solver):
        assert allocations_verifiable(solver)

    def test_random_not_verifiable(self):
        assert not allocations_verifiable("random")


class TestVerifyGenesisLike:
    def make_world(self):
        config = SystemConfig(storage_capacity=50)
        state = ChainState(range(4), config)
        genesis = make_genesis((0, 1, 2, 3), initial_b=1.0)
        state.apply_block(genesis)
        allocator = AllocationEngine(config, rng=np.random.default_rng(0))
        hops = np.abs(np.subtract.outer(np.arange(4), np.arange(4))).astype(float)
        return config, state, allocator, hops

    def test_empty_block_only_checks_block_and_recent(self):
        import dataclasses

        config, state, allocator, hops = self.make_world()
        # Build a block whose placements came from the actual solver.
        used = [min(float(state.used_slots(n, 10.0)), 50.0) for n in range(4)]
        total = [50.0] * 4
        ranges = [30.0] * 4
        block_decision = allocator.place_item(used, total, hops, ranges)
        for node in block_decision.storing_nodes:
            used[node] = min(used[node] + 1.0, 50.0)
        from repro.core.recent_blocks import select_recent_cache_nodes

        recent = select_recent_cache_nodes(
            allocator, used, total, hops, ranges,
            already_storing=tuple(block_decision.storing_nodes) + (0,),
        )
        from repro.core.block import Block

        block = Block(
            index=1,
            timestamp=10.0,
            previous_hash="00" * 32,
            pos_hash="11" * 32,
            miner=0,
            miner_address="x",
            hit=0,
            target_b=1.0,
            storing_nodes=tuple(block_decision.storing_nodes),
            recent_cache_nodes=tuple(recent),
        )
        violations = verify_block_allocations(
            block, state, allocator, hops, ranges, 50
        )
        assert violations == []

        forged = dataclasses.replace(block, storing_nodes=(0,), current_hash="")
        if tuple(block_decision.storing_nodes) != (0,):
            violations = verify_block_allocations(
                forged, state, allocator, hops, ranges, 50
            )
            assert violations and "block storage" in violations[0]

    def test_random_solver_rejected(self):
        config = SystemConfig(placement_solver="random")
        state = ChainState(range(4), config)
        state.apply_block(make_genesis((0, 1, 2, 3), initial_b=1.0))
        allocator = AllocationEngine(config, rng=np.random.default_rng(0))
        hops = np.zeros((4, 4))
        genesis = make_genesis((0, 1, 2, 3), initial_b=1.0)
        with pytest.raises(ValueError):
            verify_block_allocations(genesis, state, allocator, hops, [0.0] * 4, 50)
