"""Tests for Raft log compaction and InstallSnapshot (§7)."""

import pytest

from repro.raft.cluster import RaftCluster
from repro.raft.log import RaftLog
from repro.raft.messages import LogEntry
from repro.raft.node import RaftNode
from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.topology import Position, Topology
from repro.simnet.transport import Network


def filled_log(terms):
    log = RaftLog()
    for i, term in enumerate(terms):
        log.append(LogEntry(term, f"cmd-{i + 1}"))
    return log


class TestLogCompaction:
    def test_compact_preserves_indices(self):
        log = filled_log([1, 1, 2, 2, 3])
        log.compact_to(3)
        assert log.snapshot_index == 3
        assert log.snapshot_term == 2
        assert log.last_index == 5
        assert log.entry_at(4).command == "cmd-4"

    def test_compacted_entries_unavailable(self):
        log = filled_log([1, 1, 2])
        log.compact_to(2)
        with pytest.raises(IndexError):
            log.entry_at(1)
        with pytest.raises(IndexError):
            log.entries_from(1)

    def test_term_at_snapshot_boundary(self):
        log = filled_log([1, 2, 3])
        log.compact_to(2)
        assert log.term_at(2) == 2  # the snapshot term
        assert log.term_at(3) == 3

    def test_matches_at_snapshot_boundary(self):
        log = filled_log([1, 2, 3])
        log.compact_to(2)
        assert log.matches(2, 2)
        assert not log.matches(1, 1)  # compacted away

    def test_append_after_compaction(self):
        log = filled_log([1, 1])
        log.compact_to(2)
        assert log.append(LogEntry(2, "new")) == 3
        assert log.last_index == 3

    def test_compact_beyond_last_rejected(self):
        log = filled_log([1])
        with pytest.raises(IndexError):
            log.compact_to(5)

    def test_double_compaction_is_monotone(self):
        log = filled_log([1, 1, 1, 1])
        log.compact_to(3)
        log.compact_to(2)  # no-op (already compacted past)
        assert log.snapshot_index == 3

    def test_overwrite_skips_snapshot_covered(self):
        log = filled_log([1, 1, 1])
        log.compact_to(2)
        log.overwrite_from(1, [LogEntry(1, "a"), LogEntry(1, "b"), LogEntry(2, "c")])
        assert log.last_index == 3
        assert log.entry_at(3).term == 2

    def test_install_snapshot_resets_log(self):
        log = filled_log([1, 1])
        log.install_snapshot(10, 4)
        assert log.snapshot_index == 10
        assert log.last_index == 10
        assert log.last_term == 4
        assert len(log) == 0

    def test_install_snapshot_keeps_matching_suffix(self):
        log = filled_log([1, 1, 2, 2])
        log.install_snapshot(2, 1)
        assert log.snapshot_index == 2
        assert log.last_index == 4  # suffix retained
        assert log.entry_at(3).term == 2


class TestSnapshotOverNetwork:
    def make_cluster(self, threshold=5):
        engine = EventEngine(seed=13)
        positions = [Position(10.0 * i, 0.0) for i in range(3)]
        network = Network(engine, Topology(positions, comm_range=100.0),
                          ChannelModel(bandwidth=None))
        nodes = {}
        for node_id in range(3):
            nodes[node_id] = RaftNode(
                node_id=node_id,
                peers=[p for p in range(3) if p != node_id],
                network=network,
                engine=engine,
                compaction_threshold=threshold,
            )
        return engine, network, nodes

    def test_leader_compacts_automatically(self):
        engine, _, nodes = self.make_cluster(threshold=5)
        for node in nodes.values():
            node.start()
        # Elect and replicate more entries than the threshold.
        deadline = engine.now + 30.0
        leader = None
        while engine.now < deadline and leader is None:
            engine.run_until(engine.now + 0.5)
            leader = next((n for n in nodes.values() if n.is_leader), None)
        assert leader is not None
        for i in range(12):
            leader.submit(f"cmd-{i}")
            engine.run_until(engine.now + 0.5)
        engine.run_until(engine.now + 3.0)
        assert leader.log.snapshot_index > 0
        assert len(leader.log) <= 12

    def test_lagging_follower_catches_up_via_snapshot(self):
        engine, network, nodes = self.make_cluster(threshold=4)
        for node in nodes.values():
            node.start()
        deadline = engine.now + 30.0
        leader = None
        while engine.now < deadline and leader is None:
            engine.run_until(engine.now + 0.5)
            leader = next((n for n in nodes.values() if n.is_leader), None)
        assert leader is not None
        follower_id = next(p for p in nodes if p != leader.node_id)
        # Take the follower offline while the leader commits and compacts.
        network.set_online(follower_id, False)
        for i in range(15):
            leader.submit(f"cmd-{i}")
            engine.run_until(engine.now + 0.3)
        engine.run_until(engine.now + 2.0)
        assert leader.log.snapshot_index > 0
        # Reconnect: catch-up must go through InstallSnapshot because the
        # needed entries were compacted away.
        network.set_online(follower_id, True)
        engine.run_until(engine.now + 10.0)
        follower = nodes[follower_id]
        assert follower.committed_commands() == leader.committed_commands()
        assert follower.log.snapshot_index >= 1
