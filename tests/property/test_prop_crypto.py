"""Property-based tests for the crypto substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import hash_items, hash_to_int
from repro.crypto.keys import N, PrivateKey
from repro.crypto.merkle import MerkleTree, verify_proof
from repro.crypto.signature import sign, verify

fields = st.one_of(
    st.text(max_size=30),
    st.integers(min_value=-(2**100), max_value=2**100),
    st.binary(max_size=30),
)


class TestHashingProperties:
    @given(st.lists(fields, max_size=6))
    def test_hash_deterministic(self, items):
        assert hash_items(*items) == hash_items(*items)

    @given(st.lists(fields, min_size=1, max_size=6), st.lists(fields, min_size=1, max_size=6))
    def test_distinct_inputs_distinct_hashes(self, a, b):
        if a != b:
            assert hash_items(*a) != hash_items(*b)

    @given(st.binary(min_size=1, max_size=64))
    def test_hash_to_int_non_negative_and_bounded(self, data):
        value = hash_to_int(data)
        assert 0 <= value < 2 ** (8 * len(data))


class TestMerkleProperties:
    @given(st.lists(st.binary(max_size=20), min_size=1, max_size=40))
    def test_every_leaf_provable(self, leaves):
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            assert verify_proof(tree.root, leaf, tree.prove(index))

    @given(st.lists(st.binary(max_size=20), min_size=2, max_size=20))
    def test_root_commits_to_order(self, leaves):
        if leaves != list(reversed(leaves)):
            forward = MerkleTree(leaves).root
            backward = MerkleTree(list(reversed(leaves))).root
            assert forward != backward

    @given(
        st.lists(st.binary(max_size=10), min_size=1, max_size=10),
        st.binary(min_size=1, max_size=10),
    )
    def test_foreign_leaf_never_verifies(self, leaves, foreign):
        if foreign in leaves:
            return
        tree = MerkleTree(leaves)
        for index in range(len(leaves)):
            assert not verify_proof(tree.root, foreign, tree.prove(index))


class TestSignatureProperties:
    @settings(max_examples=10, deadline=None)  # pure-Python ECDSA is slow
    @given(st.binary(max_size=100), st.integers(min_value=1, max_value=N - 1))
    def test_sign_verify_round_trip(self, message, secret):
        private = PrivateKey(secret)
        public = private.public_key()
        assert verify(public, message, sign(private, message))

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=50), st.binary(max_size=50))
    def test_signature_does_not_transfer(self, message_a, message_b):
        if message_a == message_b:
            return
        private = PrivateKey(0xDEADBEEF)
        public = private.public_key()
        assert not verify(public, message_b, sign(private, message_a))
