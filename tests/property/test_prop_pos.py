"""Property-based tests for the PoS mechanism."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pos import (
    compute_amendment,
    compute_hit,
    mining_delay,
    per_second_mining_loop,
    satisfies_target,
)

M = 2**64

stakes = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)
counts = st.floats(min_value=1.0, max_value=1e4, allow_nan=False)
amendments = st.floats(min_value=1e-6, max_value=1e12, allow_nan=False)
hits = st.integers(min_value=0, max_value=M - 1)


class TestMiningDelayProperties:
    @given(hits, stakes, counts, amendments)
    def test_delay_satisfies_target_at_fire_time(self, hit, stake, stored, b):
        delay = mining_delay(hit, stake, stored, b)
        assert delay is not None and delay >= 1
        # float(delay) is only exact below 2^53; real protocol delays are
        # bounded by t0·(n+1) ≪ 2^53 seconds.
        if delay < 2**53:
            assert satisfies_target(hit, stake, stored, float(delay), b)

    @given(hits, stakes, counts, amendments)
    def test_delay_is_earliest_second(self, hit, stake, stored, b):
        delay = mining_delay(hit, stake, stored, b)
        # Beyond 2^40 seconds, float(delay-1) == float(delay); the earliest-
        # second claim is only meaningful within float resolution.
        if 1 < delay < 2**40:
            assert not satisfies_target(hit, stake, stored, float(delay - 1), b)

    @settings(max_examples=30)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.5, max_value=10.0),
        st.floats(min_value=1.0, max_value=10.0),
        st.floats(min_value=100.0, max_value=10000.0),
    )
    def test_closed_form_equals_per_second_loop(self, hit, stake, stored, b):
        delay = mining_delay(hit, stake, stored, b)
        ticks = list(per_second_mining_loop(hit, stake, stored, b, max_seconds=delay + 2))
        fired = [t for t, _, satisfied in ticks if satisfied]
        assert fired and fired[0] == delay

    @given(hits, stakes, counts, amendments, st.floats(min_value=1.01, max_value=100.0))
    def test_more_stake_never_slower(self, hit, stake, stored, b, factor):
        base = mining_delay(hit, stake, stored, b)
        richer = mining_delay(hit, stake * factor, stored, b)
        assert richer <= base

    @given(hits, stakes, counts, amendments, st.floats(min_value=1.01, max_value=100.0))
    def test_more_storage_never_slower(self, hit, stake, stored, b, factor):
        base = mining_delay(hit, stake, stored, b)
        more = mining_delay(hit, stake, stored * factor, b)
        assert more <= base

    @given(stakes, counts, amendments)
    def test_zero_hit_mines_at_one_second(self, stake, stored, b):
        assert mining_delay(0, stake, stored, b) == 1


class TestHitProperties:
    @given(st.text(min_size=1, max_size=40), st.text(min_size=1, max_size=40))
    def test_hit_in_range(self, prev, account):
        assert 0 <= compute_hit(prev, account, M) < M

    @given(st.text(min_size=1, max_size=40))
    def test_hit_deterministic(self, account):
        assert compute_hit("prev", account, M) == compute_hit("prev", account, M)


class TestAmendmentProperties:
    @given(
        st.integers(min_value=1, max_value=1000),
        st.floats(min_value=1.0, max_value=3600.0),
        st.floats(min_value=0.01, max_value=1e9),
    )
    def test_amendment_positive_finite(self, n, t0, mean_u):
        b = compute_amendment(M, n, t0, mean_u)
        assert b > 0 and math.isfinite(b)

    @given(
        st.integers(min_value=1, max_value=1000),
        st.floats(min_value=1.0, max_value=3600.0),
        st.floats(min_value=0.01, max_value=1e6),
        st.floats(min_value=1.01, max_value=100.0),
    )
    def test_rescaling_invariance(self, n, t0, mean_u, ratio):
        """Scaling all stakes by r scales B by 1/r — relative advantages and
        mining delays are unchanged (Section V-B's rescaling argument)."""
        b_before = compute_amendment(M, n, t0, mean_u)
        b_after = compute_amendment(M, n, t0, mean_u * ratio)
        # A node with stake s·r under b_after has the same rate s·b_before:
        assert b_after * ratio == pytest.approx(b_before, rel=1e-9)

