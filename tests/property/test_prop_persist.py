"""Property tests: kill-and-resume determinism, journal prefix recovery."""

import json
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PAPER_CONFIG
from repro.metrics.export import metrics_to_record
from repro.persist import PersistConfig, resume_run, run_persistent
from repro.persist.journal import REC_BLOCK, RunJournal, recover_journal
from repro.sim.runner import ExperimentSpec, run_experiment

pytestmark = pytest.mark.persist

FAST_PERSIST = PersistConfig(
    journal_every_seconds=20.0, snapshot_every_seconds=120.0
)

#: Uninterrupted reference records, cached per seed (runs are pure
#: functions of the spec, so the cache cannot go stale).
_REFERENCE: dict = {}


def small_spec(seed: int) -> ExperimentSpec:
    config = replace(
        PAPER_CONFIG, simulation_minutes=10.0, data_items_per_minute=2.0
    )
    return ExperimentSpec(node_count=5, config=config, seed=seed)


def record_text(metrics, seed: int) -> str:
    # NaN-stable comparison: json renders NaN identically on both sides.
    return json.dumps(metrics_to_record(metrics, seed=seed), sort_keys=True)


def reference_record(seed: int) -> tuple:
    if seed not in _REFERENCE:
        result = run_experiment(small_spec(seed))
        tip = result.cluster.longest_chain_node().chain.tip.current_hash
        _REFERENCE[seed] = (record_text(result.metrics, seed), tip)
    return _REFERENCE[seed]


class TestKillResumeDeterminism:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=3),
        kill_fraction=st.floats(min_value=0.15, max_value=0.9),
    )
    def test_resumed_run_matches_uninterrupted(
        self, tmp_path_factory, seed, kill_fraction
    ):
        spec = small_spec(seed)
        expected_record, expected_tip = reference_record(seed)
        directory = tmp_path_factory.mktemp("run")
        kill_at = kill_fraction * spec.duration_seconds
        paused = run_persistent(
            spec, directory, persist=FAST_PERSIST, stop_after_seconds=kill_at
        )
        assert not paused.completed
        resumed = resume_run(directory)
        assert resumed.completed
        assert record_text(resumed.metrics, seed) == expected_record
        tip = resumed.result.cluster.longest_chain_node().chain.tip.current_hash
        assert tip == expected_tip

    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=3),
        first=st.floats(min_value=0.1, max_value=0.4),
        second=st.floats(min_value=0.1, max_value=0.4),
    )
    def test_double_interruption_still_deterministic(
        self, tmp_path_factory, seed, first, second
    ):
        spec = small_spec(seed)
        expected_record, expected_tip = reference_record(seed)
        directory = tmp_path_factory.mktemp("run")
        duration = spec.duration_seconds
        run_persistent(
            spec,
            directory,
            persist=FAST_PERSIST,
            stop_after_seconds=first * duration,
        )
        resume_run(directory, stop_after_seconds=second * duration)
        resumed = resume_run(directory)
        assert resumed.completed
        assert record_text(resumed.metrics, seed) == expected_record
        tip = resumed.result.cluster.longest_chain_node().chain.tip.current_hash
        assert tip == expected_tip


class TestJournalPrefixRecovery:
    @settings(max_examples=40, deadline=None)
    @given(
        payloads=st.lists(
            st.dictionaries(
                st.text(min_size=1, max_size=8),
                st.integers(min_value=-(10**6), max_value=10**6),
                max_size=4,
            ),
            min_size=1,
            max_size=12,
        ),
        data=st.data(),
    )
    def test_any_byte_truncation_is_recoverable(
        self, tmp_path_factory, payloads, data
    ):
        """A journal cut at *any* byte is never corrupt — only torn."""
        path = tmp_path_factory.mktemp("journal") / "journal.jsonl"
        with RunJournal.open(path) as journal:
            for index, payload in enumerate(payloads):
                journal.append(REC_BLOCK, float(index), payload)
        raw = path.read_bytes()
        offset = data.draw(st.integers(min_value=0, max_value=len(raw)))
        path.write_bytes(raw[:offset])

        recovery = recover_journal(path)
        assert not recovery.corrupt
        assert recovery.dropped_records == 0
        assert len(recovery.records) <= len(payloads)
        for index, record in enumerate(recovery.records):
            assert record.payload == payloads[index]
        # The recovered prefix plus the torn tail accounts for every byte.
        assert recovery.valid_bytes + recovery.torn_tail_bytes == offset
        # ... and a writer can always continue from the recovered prefix.
        with RunJournal.open(path) as journal:
            assert journal.next_seq == len(recovery.records)
