"""Property-based tests for metrics (Gini and summaries)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.gini import gini_coefficient, gini_pairwise
from repro.metrics.stats import Summary

storage_vectors = st.lists(
    st.floats(min_value=0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


class TestGiniProperties:
    @given(storage_vectors)
    def test_matches_paper_footnote_formula(self, values):
        assert gini_coefficient(values) == pytest.approx(
            gini_pairwise(values), abs=1e-9
        )

    @given(storage_vectors)
    def test_bounded(self, values):
        gini = gini_coefficient(values)
        assert 0.0 <= gini < 1.0

    @given(storage_vectors, st.floats(min_value=0.01, max_value=100))
    def test_scale_invariant(self, values, scale):
        if sum(values) == 0:
            return
        scaled = [v * scale for v in values]
        assert gini_coefficient(scaled) == pytest.approx(
            gini_coefficient(values), abs=1e-9
        )

    @given(st.floats(min_value=0.1, max_value=1e6), st.integers(min_value=1, max_value=50))
    def test_equal_values_give_zero(self, value, count):
        assert gini_coefficient([value] * count) == pytest.approx(0.0, abs=1e-12)

    @given(storage_vectors)
    def test_permutation_invariant(self, values):
        rng = np.random.default_rng(0)
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert gini_coefficient(shuffled) == pytest.approx(
            gini_coefficient(values), abs=1e-9
        )

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=30))
    def test_adding_equal_share_decreases_or_keeps(self, values):
        """Adding the same constant to everyone never increases inequality."""
        base = gini_coefficient(values)
        flattened = gini_coefficient([v + 100.0 for v in values])
        assert flattened <= base + 1e-9


class TestSummaryProperties:
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), min_size=1, max_size=50))
    def test_summary_ordering(self, values):
        summary = Summary.of(values)
        slack = 1e-6 * (1.0 + abs(summary.maximum) + abs(summary.minimum))
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
        assert summary.minimum <= summary.p95 <= summary.maximum + slack
        assert summary.count == len(values)
