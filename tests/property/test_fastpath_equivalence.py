"""Differential harness: every fast path is bit-identical to its slow path.

The fast-path simulation core (incremental UFL, cached routing, batched
delivery, vectorised PoS) buys speed only — never different results.  This
suite is the enforcement: each optimisation is driven side by side with
the implementation it replaces, from Hypothesis-generated component
instances up to full seeded experiments whose ``chain_digest`` /
``ledger_digest`` / monitor verdict must match exactly.

Layers:

* **UFL** — :class:`IncrementalUFLSolver` vs :func:`solve_greedy` over
  random replay sequences (facility-cost drift between solves, occasional
  connection-matrix changes exercising the structural-change fallback).
* **Routing** — vectorised unit-disk edges and the cached BFS hop matrix
  vs the nested-loop + networkx reference, across mobility and churn.
* **Delivery** — batched vs per-event scheduling: identical execution
  order, identical RNG stream, identical traffic accounting.
* **PoS** — exact-integer ``mining_delay`` vs the Fraction reference, and
  the batched lottery vs scalar loops, including >2⁵³ hits.
* **End to end** — seeded scenarios (steady state, fast mobility, churn)
  run with every fast path on vs every fast path off.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pos import (
    _mining_delay_reference,
    compute_hit,
    compute_hits,
    lottery_delays,
    mining_delay,
    mining_delays,
)
from repro.facility.greedy import solve_greedy
from repro.facility.incremental import IncrementalUFLSolver
from repro.facility.problem import UFLProblem
from repro.sim.runner import ChurnSpec
from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.gossip import GossipFabric
from repro.simnet.topology import Position, Topology, random_positions
from repro.simnet.transport import Network
from tests.helpers import digest_run

pytestmark = pytest.mark.fastpath


# -- UFL: incremental vs from-scratch greedy ------------------------------------------


@st.composite
def ufl_replay_sequences(draw):
    """A per-item replay: one connection epoch, drifting facility costs.

    Mirrors what the allocator sees between mobility epochs — the RDC
    matrix is fixed while the FDC vector moves a little after every
    placement; occasionally the matrix itself changes (a mobility epoch)
    to exercise the structural-change fallback.
    """
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    num_f = draw(st.integers(min_value=2, max_value=8))
    num_c = draw(st.integers(min_value=1, max_value=8))
    steps = draw(st.integers(min_value=2, max_value=10))
    epoch_changes = draw(st.integers(min_value=0, max_value=2))
    return seed, num_f, num_c, steps, epoch_changes


def _random_instance(rng, num_f, num_c):
    connection = rng.uniform(0.0, 30.0, size=(num_f, num_c))
    connection[rng.random((num_f, num_c)) < 0.1] = np.inf
    facility_costs = rng.uniform(0.0, 2000.0, size=num_f)
    return facility_costs, connection


class TestIncrementalUFLEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(ufl_replay_sequences())
    def test_replay_matches_greedy_exactly(self, sequence):
        seed, num_f, num_c, steps, epoch_changes = sequence
        rng = np.random.default_rng(seed)
        solver = IncrementalUFLSolver()
        facility_costs, connection = _random_instance(rng, num_f, num_c)
        change_at = set(
            rng.integers(1, steps, size=epoch_changes).tolist()
        ) if epoch_changes else set()
        for step in range(steps):
            if step in change_at:
                _, connection = _random_instance(rng, num_f, num_c)
            # FDC drift: the previous winners' loads went up a slot.
            bump = rng.integers(0, num_f)
            facility_costs = facility_costs.copy()
            facility_costs[bump] += rng.uniform(0.0, 50.0)
            problem = UFLProblem(
                facility_costs=facility_costs.copy(),
                connection_costs=connection.copy(),
            )
            if not problem.is_feasible():
                continue
            expected = solve_greedy(problem)
            actual = solver.solve(problem)
            assert actual.open_facilities == expected.open_facilities
            assert actual.assignment == expected.assignment

    def test_memo_returns_identical_solution_object_results(self):
        rng = np.random.default_rng(3)
        solver = IncrementalUFLSolver()
        facility_costs, connection = _random_instance(rng, 5, 6)
        problem = UFLProblem(
            facility_costs=facility_costs, connection_costs=connection
        )
        first = solver.solve(problem)
        again = solver.solve(problem)
        assert again.open_facilities == first.open_facilities
        assert solver.reuse_hits >= 1

    def test_structural_change_falls_back_and_recovers(self):
        rng = np.random.default_rng(9)
        solver = IncrementalUFLSolver()
        for _ in range(3):  # three epochs: each first solve is a fallback
            facility_costs, connection = _random_instance(rng, 6, 6)
            for _ in range(4):
                facility_costs = facility_costs.copy()
                facility_costs[rng.integers(0, 6)] += 25.0
                problem = UFLProblem(
                    facility_costs=facility_costs.copy(),
                    connection_costs=connection.copy(),
                )
                assert (
                    solver.solve(problem).open_facilities
                    == solve_greedy(problem).open_facilities
                )
        assert solver.fallbacks == 3
        assert solver.fast_solves > 0


# -- Routing: vectorised edges + cached hop matrix vs reference ------------------------


def _reference_graph(positions, comm_range):
    graph = nx.Graph()
    graph.add_nodes_from(range(len(positions)))
    for i in range(len(positions)):
        for j in range(i + 1, len(positions)):
            if positions[i].distance_to(positions[j]) <= comm_range:
                graph.add_edge(i, j)
    return graph


def _reference_hop_matrix(graph, n):
    matrix = np.full((n, n), -1, dtype=np.int64)
    for source, lengths in nx.all_pairs_shortest_path_length(graph):
        for target, hops in lengths.items():
            matrix[source, target] = hops
    return matrix


class TestRoutingCacheEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=40),
    )
    def test_edges_and_hops_match_reference(self, seed, n):
        rng = np.random.default_rng(seed)
        positions = random_positions(n, rng)
        topology = Topology(positions)
        reference = _reference_graph(positions, topology.comm_range)
        assert list(topology.graph.edges) == list(reference.edges)
        assert (
            topology.hop_matrix() == _reference_hop_matrix(reference, n)
        ).all()

    def test_boundary_distance_matches_scalar_definition(self):
        # Two nodes exactly comm_range apart: an edge by the scalar
        # ``<=`` definition; the banded vector path must agree.
        positions = [Position(0.0, 0.0), Position(70.0, 0.0), Position(200.0, 200.0)]
        topology = Topology(positions, comm_range=70.0)
        assert (0, 1) in topology.graph.edges
        just_outside = [
            Position(0.0, 0.0),
            Position(float(np.nextafter(70.0, 71.0)), 0.0),
        ]
        assert (0, 1) not in Topology(just_outside, comm_range=70.0).graph.edges

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=3, max_value=25),
        st.integers(min_value=1, max_value=4),
    )
    def test_mobility_and_churn_keep_reference_equality(self, seed, n, epochs):
        rng = np.random.default_rng(seed)
        positions = random_positions(n, rng)
        topology = Topology(positions)
        for _ in range(epochs):
            action = rng.integers(0, 3)
            if action == 0:  # small jitter — often leaves the edge set alone
                positions = [
                    Position(p.x + float(rng.uniform(-1, 1)), p.y)
                    for p in positions
                ]
                topology.update_positions(positions)
            elif action == 1:  # full resample
                positions = random_positions(n, rng)
                topology.update_positions(positions)
            else:  # churn round-trip
                node = int(rng.integers(0, n))
                topology.remove_node(node)
                topology.restore_node(node)
            reference = _reference_graph(positions, topology.comm_range)
            assert sorted(topology.graph.edges) == sorted(reference.edges)
            assert (
                topology.hop_matrix() == _reference_hop_matrix(reference, n)
            ).all()

    def test_unchanged_epoch_reuses_cached_matrix(self):
        rng = np.random.default_rng(4)
        positions = random_positions(12, rng)
        topology = Topology(positions)
        before = topology.hop_matrix()
        topology.update_positions(positions)  # same coordinates
        assert topology.hop_matrix() is before  # identity: nothing recomputed

    def test_offline_node_forces_epoch_rebuild(self):
        rng = np.random.default_rng(6)
        positions = random_positions(10, rng)
        topology = Topology(positions)
        topology.remove_node(0)
        topology.update_positions(positions)  # rebuild restores node 0
        reference = _reference_graph(positions, topology.comm_range)
        assert sorted(topology.graph.edges) == sorted(reference.edges)


# -- Delivery batching: engine + transport + gossip ------------------------------------


class TestBatchedDeliveryEquivalence:
    def test_batched_calls_execute_in_scheduled_order(self):
        engine = EventEngine(seed=0)
        order = []
        engine.call_at(1.0, order.append, "pre")
        engine.call_at_batch(
            1.0, [(order.append, ("a",)), (order.append, ("b",)), (order.append, ("c",))]
        )
        engine.call_at(1.0, order.append, "post")
        engine.run()
        assert order == ["pre", "a", "b", "c", "post"]
        assert engine.events_processed == 5  # each batched call counted

    def test_batch_cancellation_cancels_every_call(self):
        engine = EventEngine(seed=0)
        order = []
        handle = engine.call_at_batch(1.0, [(order.append, ("a",)), (order.append, ("b",))])
        handle.cancel()
        engine.run()
        assert order == []

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=4, max_value=16),
    )
    def test_broadcast_batched_equals_unbatched(self, seed, n):
        outcomes = []
        for batched in (False, True):
            engine = EventEngine(seed=seed)
            positions = random_positions(n, engine.np_rng)
            topology = Topology(positions)
            network = Network(
                engine,
                topology,
                ChannelModel(loss_probability=0.05),
                batch_deliveries=batched,
            )
            deliveries = []
            for node in range(n):
                network.register(
                    node,
                    lambda s, p, c, node=node: deliveries.append((engine.now, node, p)),
                )
            network.broadcast(0, "blk", 1000, "block")
            network.send(0, n - 1, "uni", 500, "item") if n > 1 else None
            engine.run()
            outcomes.append(
                (deliveries, network.snapshot(), engine.np_rng.random())
            )
        unbatched, batched_run = outcomes
        assert batched_run[0] == unbatched[0]  # same deliveries, times, order
        assert batched_run[1] == unbatched[1]  # same traffic accounting
        assert batched_run[2] == unbatched[2]  # same RNG stream position

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=4, max_value=14),
    )
    def test_gossip_batched_equals_unbatched(self, seed, n):
        outcomes = []
        for batched in (False, True):
            engine = EventEngine(seed=seed)
            positions = random_positions(n, engine.np_rng)
            topology = Topology(positions)
            fabric = GossipFabric(
                engine,
                topology,
                ChannelModel(loss_probability=0.1),
                batch_deliveries=batched,
            )
            receipts = []
            fabric.on_receive(
                lambda node, origin, payload: receipts.append((engine.now, node))
            )
            message_id = fabric.originate(0, "gossip", 800, "item")
            engine.run()
            outcomes.append(
                (
                    receipts,
                    sorted(fabric.nodes_reached(message_id)),
                    fabric.trace.snapshot(),
                    engine.np_rng.random(),
                )
            )
        assert outcomes[0] == outcomes[1]


# -- PoS: exact-integer + batched lottery vs references --------------------------------


positive_floats = st.floats(
    min_value=1e-12, max_value=1e12, allow_nan=False, allow_infinity=False
)


class TestVectorisedPosEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**64 - 1),
        positive_floats,
        st.integers(min_value=0, max_value=500),
        positive_floats,
    )
    def test_mining_delay_matches_fraction_reference(
        self, hit, stake, stored, amendment
    ):
        assert mining_delay(hit, stake, float(stored), amendment) == (
            _mining_delay_reference(hit, stake, float(stored), amendment)
        )

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=1, max_value=30))
    def test_batched_lottery_matches_scalar_loop(self, seed, n):
        rng = np.random.default_rng(seed)
        prev_hash = "ab" * 32
        addresses = [f"addr-{seed}-{i}" for i in range(n)]
        stakes = rng.uniform(0.0, 10.0, size=n)
        stakes[rng.random(n) < 0.2] = 0.0  # some unmineable accounts
        storeds = rng.integers(0, 40, size=n).astype(float)
        amendment = float(rng.uniform(1e6, 1e14))
        modulus = 2**64

        hits = compute_hits(prev_hash, addresses, modulus)
        assert hits == [
            compute_hit(prev_hash, address, modulus) for address in addresses
        ]
        delays = mining_delays(hits, stakes, storeds, amendment)
        assert delays == [
            mining_delay(h, float(s), float(q), amendment)
            for h, s, q in zip(hits, stakes, storeds)
        ]
        assert lottery_delays(
            prev_hash, addresses, stakes, storeds, amendment, modulus
        ) == list(zip(hits, delays))

    def test_huge_hit_stays_exact(self):
        # >2^53 hit: float division would be ulps off; the integer path
        # must return the true earliest satisfying second (Eq. 9 holds at
        # ``delay`` and fails at ``delay - 1``), matching the reference.
        hit, stake, stored, amendment = 2**64 - 1, 3.0, 7.0, 1.25e-15
        delay = mining_delay(hit, stake, stored, amendment)
        assert delay == _mining_delay_reference(hit, stake, stored, amendment)
        from fractions import Fraction

        rate = Fraction(stake) * Fraction(stored) * Fraction(amendment)
        assert Fraction(hit) <= rate * delay
        assert delay == 1 or Fraction(hit) > rate * (delay - 1)


# -- End to end: all fast paths on vs all fast paths off -------------------------------


#: Three seeded scenarios: steady state, fast mobility, churn under load.
SCENARIOS = {
    "steady": dict(node_count=8, seed=5, duration_minutes=4.0),
    "mobile": dict(
        node_count=10, seed=11, duration_minutes=4.0, mobility_epoch_minutes=0.5
    ),
    "churn": dict(
        node_count=12,
        seed=3,
        duration_minutes=4.0,
        churn=ChurnSpec(
            node_fraction=0.25, events_per_node=1.0, mean_downtime_seconds=30.0
        ),
    ),
}


class TestEndToEndDigestEquivalence:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_fastpath_run_is_digest_identical(self, name):
        spec = SCENARIOS[name]
        slow = digest_run(
            placement_solver="greedy", batch_deliveries=False, **spec
        )
        fast = digest_run(
            placement_solver="incremental", batch_deliveries=True, **spec
        )
        assert fast[0] == slow[0], f"{name}: chain digests diverged"
        assert fast[1] == slow[1], f"{name}: ledger digests diverged"
        assert fast[2] == slow[2], f"{name}: monitor verdicts diverged"
