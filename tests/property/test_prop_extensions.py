"""Property-based tests for the extension modules (serialization,
migration, membership state, audit)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.account import Account
from repro.core.audit import audit_chain
from repro.core.block import make_genesis
from repro.core.blockchain import Blockchain
from repro.core.config import SystemConfig
from repro.core.metadata import create_metadata
from repro.core.migration import plan_migration
from repro.core.serialization import (
    block_from_dict,
    block_to_dict,
    chain_from_json,
    chain_to_json,
    metadata_from_dict,
    metadata_to_dict,
)
from repro.facility.problem import UFLProblem, solution_cost_of_open_set
from repro.membership.messages import MembershipUpdate, MemberStatus
from repro.membership.state import MembershipTable

_ACCOUNT = Account.for_node(4242, 0)


class TestSerializationProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=1000),
            min_size=0,
            max_size=40,
        ),
        st.floats(min_value=0.1, max_value=1e5, allow_nan=False),
        st.lists(st.integers(min_value=0, max_value=200), max_size=8),
    )
    def test_metadata_round_trip(self, seq, created, properties, valid, storers):
        item = create_metadata(
            _ACCOUNT,
            producer=0,
            sequence=seq,
            created_at=created,
            properties=properties,
            valid_time_minutes=valid,
        ).with_storing_nodes(tuple(storers))
        decoded = metadata_from_dict(metadata_to_dict(item))
        assert decoded == item
        assert decoded.signing_payload() == item.signing_payload()

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8),
        st.floats(min_value=0.1, max_value=1e9, allow_nan=False),
    )
    def test_genesis_round_trip(self, node_ids, initial_b):
        genesis = make_genesis(tuple(sorted(set(node_ids))), initial_b)
        decoded = block_from_dict(block_to_dict(genesis))
        assert decoded.current_hash == genesis.current_hash
        assert decoded.hash_is_valid()


class TestMigrationProperties:
    @st.composite
    @staticmethod
    def instances_with_start(draw):
        num_f = draw(st.integers(min_value=2, max_value=8))
        num_c = draw(st.integers(min_value=1, max_value=8))
        seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
        rng = np.random.default_rng(seed)
        problem = UFLProblem(
            facility_costs=rng.uniform(1, 15, size=num_f),
            connection_costs=rng.uniform(0, 10, size=(num_f, num_c)),
        )
        start_size = draw(st.integers(min_value=1, max_value=num_f))
        start = sorted(
            int(i) for i in rng.choice(num_f, size=start_size, replace=False)
        )
        budget = draw(st.integers(min_value=0, max_value=5))
        return problem, start, budget

    @settings(max_examples=30, deadline=None)
    @given(instances_with_start())
    def test_migration_never_increases_cost(self, case):
        problem, start, budget = case
        plan = plan_migration(problem, start, max_operations=budget)
        assert plan.final_cost <= plan.initial_cost
        assert plan.operations <= budget

    @settings(max_examples=30, deadline=None)
    @given(instances_with_start())
    def test_final_set_cost_consistent(self, case):
        problem, start, budget = case
        plan = plan_migration(problem, start, max_operations=budget)
        final_set = plan.final_open_set(start)
        assert solution_cost_of_open_set(problem, final_set) == pytest.approx(
            plan.final_cost
        )

    @settings(max_examples=30, deadline=None)
    @given(instances_with_start())
    def test_drift_never_worsens(self, case):
        # "Drift" is measured against the greedy reference, which a lucky
        # start can beat (greedy is 1.861-approximate) — so the invariant
        # is monotone improvement, not drift ≥ 1.
        problem, start, budget = case
        plan = plan_migration(problem, start, max_operations=budget)
        assert plan.final_drift <= plan.initial_drift + 1e-9


status_strategy = st.sampled_from(list(MemberStatus))
update_strategy = st.builds(
    MembershipUpdate,
    member=st.integers(min_value=0, max_value=5),
    status=status_strategy,
    incarnation=st.integers(min_value=0, max_value=10),
)


class TestMembershipTableProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(update_strategy, max_size=25))
    def test_incarnation_never_decreases_while_alive(self, updates):
        # DEAD overrides regardless of incarnation (SWIM's rules), so the
        # monotonicity invariant applies to live records only.
        table = MembershipTable(0, [0, 1, 2, 3, 4, 5])
        seen = {m: 0 for m in table.members()}
        for step, update in enumerate(updates):
            table.apply(update, now=float(step))
            record = table.record(update.member)
            if record.status is not MemberStatus.DEAD:
                assert record.incarnation >= seen[update.member] or update.member == 0
                seen[update.member] = record.incarnation

    @settings(max_examples=50, deadline=None)
    @given(st.lists(update_strategy, max_size=25))
    def test_dead_stays_dead(self, updates):
        table = MembershipTable(0, [0, 1, 2, 3, 4, 5])
        died_at = {}
        for step, update in enumerate(updates):
            table.apply(update, now=float(step))
            for member in table.members():
                if member == 0:
                    continue  # the node always refutes its own death
                status = table.status(member)
                if member in died_at:
                    assert status is MemberStatus.DEAD
                elif status is MemberStatus.DEAD:
                    died_at[member] = step

    @settings(max_examples=50, deadline=None)
    @given(st.lists(update_strategy, max_size=25))
    def test_self_never_dead(self, updates):
        table = MembershipTable(0, [0, 1, 2, 3, 4, 5])
        for step, update in enumerate(updates):
            table.apply(update, now=float(step))
            assert table.status(0) is MemberStatus.ALIVE


class TestAuditProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=8),
        st.integers(min_value=2, max_value=50),
    )
    def test_audit_always_matches_chain_state(self, miners, rescale_interval):
        from repro.core.pos import compute_hit, compute_pos_hash, mining_delay
        from repro.core.block import Block

        config = SystemConfig(
            expected_block_interval=10.0, token_rescale_interval=rescale_interval
        )
        accounts = {i: Account.for_node(88, i) for i in range(3)}
        address_of = {i: a.address for i, a in accounts.items()}
        chain = Blockchain(list(range(3)), config, address_of)
        for miner in miners:
            parent = chain.tip
            address = accounts[miner].address
            hit = compute_hit(parent.pos_hash, address, config.hit_modulus)
            amendment = chain.state.amendment(parent.timestamp)
            delay = mining_delay(
                hit,
                chain.state.tokens(miner),
                chain.state.stored_items(miner, parent.timestamp),
                amendment,
            )
            chain.append_block(
                Block(
                    index=parent.index + 1,
                    timestamp=parent.timestamp + delay,
                    previous_hash=parent.current_hash,
                    pos_hash=compute_pos_hash(parent.pos_hash, address),
                    miner=miner,
                    miner_address=address,
                    hit=hit,
                    target_b=amendment,
                    storing_nodes=(miner,),
                    previous_storing_nodes=tuple(
                        chain.state.block_storing.get(parent.index, ())
                    ),
                )
            )
        report = audit_chain(chain.blocks, range(3), config)
        for node in range(3):
            assert report.balance(node) == pytest.approx(chain.state.tokens(node))


class TestChainSerializationProperty:
    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=5))
    def test_serialised_chain_revalidates(self, miners):
        from repro.core.pos import compute_hit, compute_pos_hash, mining_delay
        from repro.core.block import Block

        config = SystemConfig(expected_block_interval=10.0)
        accounts = {i: Account.for_node(99, i) for i in range(3)}
        address_of = {i: a.address for i, a in accounts.items()}
        chain = Blockchain(list(range(3)), config, address_of)
        for miner in miners:
            parent = chain.tip
            address = accounts[miner].address
            hit = compute_hit(parent.pos_hash, address, config.hit_modulus)
            amendment = chain.state.amendment(parent.timestamp)
            delay = mining_delay(
                hit,
                chain.state.tokens(miner),
                chain.state.stored_items(miner, parent.timestamp),
                amendment,
            )
            chain.append_block(
                Block(
                    index=parent.index + 1,
                    timestamp=parent.timestamp + delay,
                    previous_hash=parent.current_hash,
                    pos_hash=compute_pos_hash(parent.pos_hash, address),
                    miner=miner,
                    miner_address=address,
                    hit=hit,
                    target_b=amendment,
                    storing_nodes=(miner,),
                    previous_storing_nodes=tuple(
                        chain.state.block_storing.get(parent.index, ())
                    ),
                )
            )
        decoded = chain_from_json(chain_to_json(chain.blocks))
        replica = Blockchain(
            list(range(3)), config, address_of, genesis=decoded[0]
        )
        for block in decoded[1:]:
            replica.append_block(block)
        assert replica.tip.current_hash == chain.tip.current_hash
