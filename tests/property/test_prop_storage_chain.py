"""Property-based tests for storage accounting and chain-state invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.account import Account
from repro.core.blockchain import Blockchain
from repro.core.config import SystemConfig
from repro.core.pos import compute_hit, compute_pos_hash, mining_delay
from repro.core.storage import NodeStorage
from repro.core.block import Block
from repro.core.errors import StorageError
from repro.core.metadata import create_metadata

_ACCOUNT = Account.for_node(1234, 0)


@st.composite
def storage_ops(draw):
    """A random sequence of store/drop/evict operations."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("store"), st.integers(0, 20)),
                st.tuples(st.just("drop"), st.integers(0, 20)),
                st.tuples(st.just("evict"), st.floats(0, 10_000)),
            ),
            max_size=40,
        )
    )


class TestStorageInvariants:
    @settings(max_examples=30, deadline=None)
    @given(storage_ops(), st.integers(min_value=1, max_value=10))
    def test_used_slots_never_exceed_capacity(self, ops, capacity):
        storage = NodeStorage(capacity=capacity, recent_cache_capacity=2)
        items = {}
        for op, arg in [(o[0], o[1]) for o in ops]:
            if op == "store":
                if arg not in items:
                    items[arg] = create_metadata(
                        _ACCOUNT, 0, arg, 0.0, valid_time_minutes=1.0 + arg
                    )
                try:
                    storage.store_data(items[arg])
                except StorageError:
                    pass
            elif op == "drop":
                if arg in items:
                    storage.drop_data(items[arg].data_id)
            else:
                storage.evict_expired(arg)
            assert 0 <= storage.used_slots() <= capacity

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0, max_value=1e6))
    def test_evicted_items_are_exactly_the_expired(self, now):
        storage = NodeStorage(capacity=50, recent_cache_capacity=0)
        items = [
            create_metadata(_ACCOUNT, 0, i, 0.0, valid_time_minutes=float(i + 1))
            for i in range(20)
        ]
        for item in items:
            storage.store_data(item)
        evicted = set(storage.evict_expired(now))
        for item in items:
            if item.is_expired(now):
                assert item.data_id in evicted
            else:
                assert storage.has_data(item.data_id)


def _mine(chain, accounts, miner):
    parent = chain.tip
    address = accounts[miner].address
    state = chain.state
    hit = compute_hit(parent.pos_hash, address, chain.config.hit_modulus)
    amendment = state.amendment(parent.timestamp)
    delay = mining_delay(
        hit, state.tokens(miner), state.stored_items(miner, parent.timestamp), amendment
    )
    return Block(
        index=parent.index + 1,
        timestamp=parent.timestamp + delay,
        previous_hash=parent.current_hash,
        pos_hash=compute_pos_hash(parent.pos_hash, address),
        miner=miner,
        miner_address=address,
        hit=hit,
        target_b=amendment,
        storing_nodes=(miner,),
        previous_storing_nodes=tuple(state.block_storing.get(parent.index, ())),
    )


class TestChainStateInvariants:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=12))
    def test_token_conservation(self, miners):
        """Total tokens = initial + per-block incentives (± rescaling)."""
        config = SystemConfig(token_rescale_interval=1000)
        accounts = {i: Account.for_node(5, i) for i in range(4)}
        address_of = {i: a.address for i, a in accounts.items()}
        chain = Blockchain(list(range(4)), config, address_of)
        for miner in miners:
            chain.append_block(_mine(chain, accounts, miner))
        total = sum(chain.state.tokens(i) for i in range(4))
        # Each block: 1 mining incentive + 1 storage incentive (one storer).
        expected = 4 * config.initial_tokens + len(miners) * (
            config.mining_incentive + config.storage_incentive
        )
        assert total == pytest.approx(expected)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=10))
    def test_replay_reproduces_state(self, miners):
        """An independent replay of the same blocks gives identical state —
        the property that makes PoS claims publicly verifiable."""
        config = SystemConfig()
        accounts = {i: Account.for_node(5, i) for i in range(4)}
        address_of = {i: a.address for i, a in accounts.items()}
        chain = Blockchain(list(range(4)), config, address_of)
        for miner in miners:
            chain.append_block(_mine(chain, accounts, miner))
        replica = Blockchain(
            list(range(4)), config, address_of, genesis=chain.blocks[0]
        )
        for block in chain.blocks[1:]:
            replica.append_block(block)
        now = chain.tip.timestamp
        for node in range(4):
            assert replica.state.tokens(node) == chain.state.tokens(node)
            assert replica.state.stored_items(node, now) == chain.state.stored_items(node, now)
        assert replica.state.amendment(now) == chain.state.amendment(now)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=2**31 - 1))
    def test_mining_race_fairness_direction(self, rounds, seed):
        """Nodes that mined before (more tokens) never get slower delays."""
        config = SystemConfig(token_rescale_interval=1000)
        accounts = {i: Account.for_node(seed % 97, i) for i in range(3)}
        address_of = {i: a.address for i, a in accounts.items()}
        chain = Blockchain(list(range(3)), config, address_of)
        for _ in range(rounds):
            chain.append_block(_mine(chain, accounts, miner=0))
        state = chain.state
        now = chain.tip.timestamp
        assert state.tokens(0) > state.tokens(1)
        assert state.stored_items(0, now) >= state.stored_items(1, now)
