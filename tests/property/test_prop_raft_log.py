"""Property-based tests for the Raft log with compaction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raft.log import RaftLog
from repro.raft.messages import LogEntry


@st.composite
def logs_with_compaction(draw):
    """A log built from nondecreasing terms, compacted at a random point."""
    terms = draw(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=20)
    )
    terms = sorted(terms)  # raft terms never decrease along the log
    log = RaftLog()
    for i, term in enumerate(terms):
        log.append(LogEntry(term, f"cmd-{i + 1}"))
    compact_at = draw(st.integers(min_value=0, max_value=len(terms)))
    if compact_at > 0:
        log.compact_to(compact_at)
    return log, terms, compact_at


class TestRaftLogProperties:
    @settings(max_examples=60, deadline=None)
    @given(logs_with_compaction())
    def test_last_index_is_total_length(self, case):
        log, terms, _ = case
        assert log.last_index == len(terms)

    @settings(max_examples=60, deadline=None)
    @given(logs_with_compaction())
    def test_retained_entries_unchanged(self, case):
        log, terms, compact_at = case
        for index in range(compact_at + 1, len(terms) + 1):
            entry = log.entry_at(index)
            assert entry.term == terms[index - 1]
            assert entry.command == f"cmd-{index}"

    @settings(max_examples=60, deadline=None)
    @given(logs_with_compaction())
    def test_terms_at_boundary_consistent(self, case):
        log, terms, compact_at = case
        if compact_at > 0:
            assert log.snapshot_term == terms[compact_at - 1]
            assert log.term_at(compact_at) == terms[compact_at - 1]

    @settings(max_examples=60, deadline=None)
    @given(logs_with_compaction())
    def test_matches_holds_for_retained_prefix_points(self, case):
        log, terms, compact_at = case
        for index in range(compact_at, len(terms) + 1):
            if index == 0:
                assert log.matches(0, 0)
            else:
                assert log.matches(index, terms[index - 1])

    @settings(max_examples=60, deadline=None)
    @given(logs_with_compaction(), st.integers(min_value=1, max_value=5))
    def test_append_after_compaction_extends(self, case, term):
        log, terms, _ = case
        new_index = log.append(LogEntry(max(terms[-1], term), "tail"))
        assert new_index == len(terms) + 1
        assert log.entry_at(new_index).command == "tail"

    @settings(max_examples=60, deadline=None)
    @given(logs_with_compaction())
    def test_install_snapshot_is_monotone(self, case):
        log, terms, _ = case
        before = log.snapshot_index
        log.install_snapshot(before, log.snapshot_term)  # same point: no-op
        assert log.snapshot_index == before
        log.install_snapshot(len(terms) + 7, 9)
        assert log.snapshot_index == len(terms) + 7
        assert log.last_index == len(terms) + 7
        assert len(log) == 0

    @settings(max_examples=40, deadline=None)
    @given(logs_with_compaction())
    def test_commands_cover_retained_suffix(self, case):
        log, terms, compact_at = case
        commands = log.commands()
        expected = [f"cmd-{i}" for i in range(compact_at + 1, len(terms) + 1)]
        assert commands == expected
