"""Property-based tests for the UFL solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facility.greedy import solve_greedy
from repro.facility.local_search import solve_local_search
from repro.facility.lp_rounding import solve_lp_relaxation, solve_lp_rounding
from repro.facility.mip import solve_milp
from repro.facility.problem import UFLProblem


@st.composite
def ufl_instances(draw, max_facilities=6, max_clients=7):
    num_f = draw(st.integers(min_value=1, max_value=max_facilities))
    num_c = draw(st.integers(min_value=1, max_value=max_clients))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return UFLProblem(
        facility_costs=rng.uniform(0.0, 20.0, size=num_f),
        connection_costs=rng.uniform(0.0, 10.0, size=(num_f, num_c)),
    )


class TestSolverProperties:
    @settings(max_examples=30, deadline=None)
    @given(ufl_instances())
    def test_greedy_solution_valid(self, problem):
        solve_greedy(problem).validate(problem)

    @settings(max_examples=20, deadline=None)
    @given(ufl_instances())
    def test_local_search_solution_valid_and_no_worse(self, problem):
        greedy = solve_greedy(problem)
        improved = solve_local_search(problem)
        improved.validate(problem)
        assert improved.total_cost(problem) <= greedy.total_cost(problem) + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(ufl_instances())
    def test_lp_rounding_solution_valid(self, problem):
        solve_lp_rounding(problem).validate(problem)

    @settings(max_examples=15, deadline=None)
    @given(ufl_instances(max_facilities=5, max_clients=5))
    def test_milp_optimal_bounds_heuristics(self, problem):
        optimum = solve_milp(problem).total_cost(problem)
        lp_bound = solve_lp_relaxation(problem).lower_bound
        assert lp_bound <= optimum + 1e-6
        for solver in (solve_greedy, solve_local_search, solve_lp_rounding):
            assert solver(problem).total_cost(problem) >= optimum - 1e-6

    @settings(max_examples=15, deadline=None)
    @given(ufl_instances(max_facilities=5, max_clients=5))
    def test_greedy_within_approximation_bound(self, problem):
        """Greedy is a 1.861-approximation; check a safe 2x bound."""
        optimum = solve_milp(problem).total_cost(problem)
        greedy_cost = solve_greedy(problem).total_cost(problem)
        if optimum > 0:
            assert greedy_cost <= 2.0 * optimum + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(ufl_instances())
    def test_greedy_deterministic(self, problem):
        assert solve_greedy(problem).open_facilities == solve_greedy(problem).open_facilities
