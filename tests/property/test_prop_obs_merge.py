"""Merge property: sharded registry snapshots merge to the single-registry
result.

The contract :func:`repro.obs.metrics.merge_snapshots` documents — merging
per-shard snapshots equals the snapshot one registry would have produced
had it seen every observation — stated as a Hypothesis property over
arbitrary observation streams and arbitrary shardings.  Integer values
keep counter sums, histogram sums, and extrema exact regardless of which
shard saw which observation, so the comparison can be equality, not
approximation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, bucket_index, merge_snapshots

pytestmark = pytest.mark.obs

#: One observation: (instrument kind, metric name, integer value).  Values
#: are capped at 2^45 so ≤60 of them sum below 2^53 — exactly representable
#: in float64, making histogram sums independent of addition order.
observations = st.lists(
    st.tuples(
        st.sampled_from(["counter", "histogram"]),
        st.sampled_from(["alpha", "beta", "gamma"]),
        st.integers(min_value=0, max_value=2**45),
    ),
    max_size=60,
)


def apply(registry: MetricsRegistry, kind: str, name: str, value: int) -> None:
    # One namespace per kind: a name may appear as both a counter and a
    # histogram across draws, which must not collide in one registry.
    if kind == "counter":
        registry.counter(f"c.{name}").inc(value)
    else:
        registry.histogram(f"h.{name}").record(value)


class TestMergeEquivalence:
    @given(observations, st.integers(min_value=1, max_value=5), st.randoms())
    @settings(max_examples=60, deadline=None)
    def test_sharded_merge_equals_single_registry(self, stream, shards, rnd):
        single = MetricsRegistry()
        sharded = [MetricsRegistry() for _ in range(shards)]
        for kind, name, value in stream:
            apply(single, kind, name, value)
            apply(sharded[rnd.randrange(shards)], kind, name, value)
        merged = merge_snapshots([registry.snapshot() for registry in sharded])
        assert merged["instruments"] == single.snapshot()["instruments"]

    @given(observations)
    @settings(max_examples=30, deadline=None)
    def test_merge_with_empty_shard_is_identity(self, stream):
        registry = MetricsRegistry()
        for kind, name, value in stream:
            apply(registry, kind, name, value)
        snapshot = registry.snapshot()
        merged = merge_snapshots([snapshot, MetricsRegistry().snapshot()])
        assert merged["instruments"] == snapshot["instruments"]

    @given(st.integers(min_value=0, max_value=2**70))
    @settings(max_examples=50, deadline=None)
    def test_histogram_bucket_totals_survive_merging(self, value):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").record(value)
        b.histogram("h").record(value)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        buckets = merged["instruments"]["h"]["buckets"]
        assert buckets == {str(bucket_index(value)): 2}
