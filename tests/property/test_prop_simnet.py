"""Property-based tests for the network simulator substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import EventEngine
from repro.simnet.topology import Position, Topology, connected_random_positions

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestEngineProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=40))
    def test_events_execute_in_nondecreasing_time(self, delays):
        engine = EventEngine(seed=0)
        executed = []
        for delay in delays:
            engine.schedule(delay, lambda: executed.append(engine.now))
        engine.run()
        assert executed == sorted(executed)
        assert len(executed) == len(delays)

    @settings(max_examples=25, deadline=None)
    @given(seeds, st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=20))
    def test_identical_seeds_identical_draws(self, seed, delays):
        def trace(engine):
            values = []
            for delay in delays:
                engine.schedule(delay, lambda: values.append(engine.rng.random()))
            engine.run()
            return values

        assert trace(EventEngine(seed)) == trace(EventEngine(seed))


class TestTopologyProperties:
    @settings(max_examples=20, deadline=None)
    @given(seeds, st.integers(min_value=2, max_value=25))
    def test_connected_sampling_always_connected(self, seed, count):
        rng = np.random.default_rng(seed)
        positions = connected_random_positions(count, rng)
        topology = Topology(positions)
        assert topology.is_connected()

    @settings(max_examples=15, deadline=None)
    @given(seeds, st.integers(min_value=2, max_value=20))
    def test_hop_matrix_symmetric_with_zero_diagonal(self, seed, count):
        rng = np.random.default_rng(seed)
        topology = Topology(connected_random_positions(count, rng))
        matrix = topology.hop_matrix()
        assert (matrix == matrix.T).all()
        assert (np.diag(matrix) == 0).all()

    @settings(max_examples=15, deadline=None)
    @given(seeds, st.integers(min_value=3, max_value=15))
    def test_hop_triangle_inequality(self, seed, count):
        rng = np.random.default_rng(seed)
        topology = Topology(connected_random_positions(count, rng))
        matrix = topology.hop_matrix()
        for i in range(count):
            for j in range(count):
                for k in range(count):
                    assert matrix[i, j] <= matrix[i, k] + matrix[k, j]

    @settings(max_examples=15, deadline=None)
    @given(seeds, st.integers(min_value=2, max_value=15))
    def test_neighbors_are_one_hop(self, seed, count):
        rng = np.random.default_rng(seed)
        topology = Topology(connected_random_positions(count, rng))
        for node in range(count):
            for neighbor in topology.neighbors(node):
                assert topology.hop_count(node, neighbor) == 1
                assert (
                    topology.euclidean_distance(node, neighbor)
                    <= topology.comm_range
                )

    @settings(max_examples=15, deadline=None)
    @given(seeds, st.integers(min_value=2, max_value=15))
    def test_shortest_path_length_matches_hop_count(self, seed, count):
        rng = np.random.default_rng(seed)
        topology = Topology(connected_random_positions(count, rng))
        for target in range(1, count):
            path = topology.shortest_path(0, target)
            assert len(path) - 1 == topology.hop_count(0, target)
            # Consecutive path nodes are radio neighbours.
            for a, b in zip(path, path[1:]):
                assert b in topology.neighbors(a)
