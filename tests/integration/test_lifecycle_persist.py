"""Integration tests for the chain lifecycle subsystem: bounded hot
storage on durable runs, compaction into the cold archive, pruned
kill-and-resume determinism, mid-compaction crash recovery, the CLI
verbs, and composition with chaos and federation."""

import dataclasses
import json
from dataclasses import replace

import pytest

from repro.chaos import ChaosSpec, run_chaos
from repro.cli import main
from repro.core.config import PAPER_CONFIG, LifecycleSpec
from repro.core.admission import CHECKPOINT_REWRITE
from repro.core.messages import ChainResponse
from repro.federation import FederationSpec, run_federation
from repro.lifecycle import ARCHIVE_NAME, BlockArchive, hot_bound_blocks
from repro.metrics.export import metrics_to_record
from repro.persist import (
    PersistConfig,
    inspect_run,
    resume_run,
    run_persistent,
)
from repro.persist.chainstore import ChainStore
from repro.persist.resume import CHAIN_SUMMARY_NAME, METRICS_NAME, STORE_NAME
from repro.sim.runner import ExperimentSpec, run_experiment
from tests.helpers import digest_run, make_cluster, make_config

pytestmark = pytest.mark.lifecycle

FAST_PERSIST = PersistConfig(
    journal_every_seconds=20.0, snapshot_every_seconds=120.0
)

#: Lifecycle knobs that prune aggressively at test scale.
LC = dict(
    checkpoint_interval=2,
    checkpoint_lag=2,
    lifecycle=LifecycleSpec(retain_blocks=2),
)


def lifecycle_spec(seed: int = 7, minutes: float = 15.0) -> ExperimentSpec:
    config = replace(
        PAPER_CONFIG,
        simulation_minutes=minutes,
        data_items_per_minute=2.0,
        **LC,
    )
    return ExperimentSpec(node_count=6, config=config, seed=seed)


def record_text(metrics, seed: int) -> str:
    return json.dumps(metrics_to_record(metrics, seed=seed), sort_keys=True)


class TestDigestNeutrality:
    def test_lifecycle_on_equals_lifecycle_off(self):
        """Same seed, same digests: pruning never reads into consensus."""
        base = dict(
            node_count=8,
            seed=5,
            duration_minutes=5.0,
            expected_block_interval=10.0,
        )
        on_chain, on_ledger, _ = digest_run(
            checkpoint_interval=4, checkpoint_lag=4,
            lifecycle=LifecycleSpec(retain_blocks=8), **base,
        )
        off_chain, off_ledger, _ = digest_run(
            checkpoint_interval=4, checkpoint_lag=4, **base,
        )
        assert on_chain == off_chain
        assert on_ledger == off_ledger

    def test_cluster_prunes_within_hot_bound(self):
        config = make_config(expected_block_interval=10.0, **LC)
        cluster = make_cluster(6, seed=3, config=config, run_until=1200.0)
        bound = hot_bound_blocks(config)
        pruned = 0
        for node in cluster.nodes.values():
            chain = node.chain
            assert chain.retained_blocks <= bound
            if chain.first_retained_index > 0:
                pruned += 1
                assert chain.first_retained_index in chain.checkpoints
                assert node.storage.pruned_block_slots >= 0
        assert pruned > 0  # the scenario actually exercised pruning


class TestBoundedDurableRun:
    def test_run_compacts_into_archive(self, tmp_path):
        result = run_persistent(
            lifecycle_spec(), tmp_path / "run", persist=FAST_PERSIST
        )
        assert result.completed
        report = inspect_run(tmp_path / "run")
        assert report.ok, report.problems
        assert report.store_pruned_below > 0
        assert report.archive_blocks == report.store_pruned_below
        assert report.archive_checkpoints > 0
        assert report.archive_bytes > 0
        # Hot store holds only the retained suffix.
        assert report.store_blocks == (
            report.store_height - report.store_pruned_below + 1
        )
        archive = BlockArchive(tmp_path / "run" / ARCHIVE_NAME)
        assert archive.verify_integrity() == []
        # Ranged fetch round-trips against the hot store's lineage.
        store = ChainStore(tmp_path / "run" / STORE_NAME)
        first_hot = store.block_by_index(report.store_pruned_below)
        cold_tip = archive.fetch(report.store_pruned_below - 1)
        assert first_hot.previous_hash == cold_tip.current_hash

    def test_durable_equals_plain_with_lifecycle(self, tmp_path):
        spec = lifecycle_spec()
        plain = run_experiment(spec)
        durable = run_persistent(spec, tmp_path / "run", persist=FAST_PERSIST)
        assert durable.completed
        assert record_text(durable.metrics, 7) == record_text(plain.metrics, 7)


class TestPrunedKillAndResume:
    def test_pruned_resume_matches_uninterrupted(self, tmp_path):
        spec = lifecycle_spec()
        full = run_persistent(spec, tmp_path / "full", persist=FAST_PERSIST)
        paused = run_persistent(
            spec, tmp_path / "part", persist=FAST_PERSIST,
            stop_after_seconds=500.0,
        )
        assert not paused.completed
        # The pause point is beyond the first compaction, so resume must
        # rebuild from a store that no longer holds the genesis prefix.
        mid = inspect_run(tmp_path / "part")
        assert mid.store_pruned_below > 0
        resumed = resume_run(tmp_path / "part")
        assert resumed.completed
        assert record_text(resumed.metrics, spec.seed) == record_text(
            full.metrics, spec.seed
        )
        # Byte-identical durable artifacts.
        assert (tmp_path / "part" / METRICS_NAME).read_bytes() == (
            tmp_path / "full" / METRICS_NAME
        ).read_bytes()
        full_summary = json.loads(
            (tmp_path / "full" / CHAIN_SUMMARY_NAME).read_text()
        )
        part_summary = json.loads(
            (tmp_path / "part" / CHAIN_SUMMARY_NAME).read_text()
        )
        assert full_summary["tip_hash"] == part_summary["tip_hash"]

    def test_kill_mid_compaction_resumes(self, tmp_path):
        """Crash between archive append and store delete: the write-ahead
        archive is ahead of ``pruned_below``; resume and the next
        compaction must absorb the overlap idempotently."""
        spec = lifecycle_spec()
        full = run_persistent(spec, tmp_path / "full", persist=FAST_PERSIST)
        run_persistent(
            spec, tmp_path / "part", persist=FAST_PERSIST,
            stop_after_seconds=500.0,
        )
        store = ChainStore(tmp_path / "part" / STORE_NAME)
        archive = BlockArchive(tmp_path / "part" / ARCHIVE_NAME)
        floor = store.pruned_below()
        assert floor > 0 and archive.archived_below == floor
        # Replay the crash: two more blocks reached the archive but the
        # store deletes (and the pruned_below meta) never landed.
        for index in range(floor, min(floor + 2, store.height())):
            archive.append(store.block_by_index(index))
        assert archive.archived_below > store.pruned_below()
        store.close()
        resumed = resume_run(tmp_path / "part")
        assert resumed.completed
        assert record_text(resumed.metrics, spec.seed) == record_text(
            full.metrics, spec.seed
        )
        report = inspect_run(tmp_path / "part")
        assert report.ok, report.problems
        healed = BlockArchive(tmp_path / "part" / ARCHIVE_NAME)
        assert healed.verify_integrity() == []
        assert healed.archived_below >= report.store_pruned_below


class TestCheckpointRewriteOnPrunedChain:
    def test_anchored_rewrite_is_rejected_and_counted(self):
        config = make_config(expected_block_interval=10.0, **LC)
        cluster = make_cluster(6, seed=3, config=config, run_until=1200.0)
        victim = next(
            node for node in cluster.nodes.values()
            if node.chain.first_retained_index > 0
        )
        floor = victim.chain.first_retained_index
        # Forge a strictly-longer history anchored AT the pruned floor
        # with a different anchor body: one hash comparison against the
        # pinned lineage must refuse it as a checkpoint rewrite.
        real = list(victim.chain.blocks)
        fake_anchor = dataclasses.replace(
            real[0], timestamp=real[0].timestamp + 0.5, current_hash=""
        )
        fake_tip = dataclasses.replace(
            real[-1], index=victim.chain.height + 1, current_hash=""
        )
        forged = [fake_anchor] + real[1:] + [fake_tip]
        rejected_before = victim.admission.rejections.get(CHECKPOINT_REWRITE, 0)
        victim._on_chain_response(99, ChainResponse(blocks=tuple(forged)))
        assert (
            victim.admission.rejections.get(CHECKPOINT_REWRITE, 0)
            > rejected_before
        )
        assert victim.chain.first_retained_index == floor  # chain untouched

    def test_honest_chaos_run_with_lifecycle_stays_clean(self):
        config = make_config(expected_block_interval=10.0, **LC)
        result = run_chaos(
            ChaosSpec(
                node_count=6, config=config, seed=5, duration_minutes=12.0
            )
        )
        safety = result.verdict["safety"]
        assert safety["ok"], result.verdict
        assert safety["checkpoint_violations"] == []
        assert result.status == "ok"

    def test_poisoned_sync_on_pruned_chains_still_detected(self):
        config = make_config(
            expected_block_interval=10.0,
            verify_metadata_signatures=True,
            **LC,
        )
        spec = ChaosSpec(
            node_count=6,
            config=config,
            seed=7,
            duration_minutes=12.0,
            adversaries={"poisoner": (2,)},
        )
        first, second = run_chaos(spec), run_chaos(spec)
        assert first.verdict == second.verdict
        assert first.verdict["safety"]["ok"], first.verdict


class TestFederationCheckpoints:
    def test_per_cluster_snapshot_carries_checkpoints(self):
        config = make_config(expected_block_interval=10.0, **LC)
        result = run_federation(
            FederationSpec(
                cluster_count=2,
                nodes_per_cluster=4,
                config=config,
                seed=7,
                duration_minutes=8.0,
            )
        )
        entries = result.aggregate["per_cluster"]
        assert entries
        for entry in entries:
            assert entry["last_checkpoint"] >= 0
            assert "checkpoint_digest" in entry
            assert entry["first_retained"] >= 0
        assert any(entry["first_retained"] > 0 for entry in entries)
        assert any(entry["checkpoint_digest"] for entry in entries)


class TestLifecycleCLI:
    def run_args(self, directory, extra=()):
        return [
            "run",
            "--nodes", "6",
            "--minutes", "15",
            "--block-interval", "10",
            "--rate", "2",
            "--seed", "3",
            "--checkpoint-every", "2",
            "--retain", "2",
            "--persist", str(directory),
            "--journal-every", "20",
            "--snapshot-every", "120",
            *extra,
        ]

    def test_retain_requires_checkpoint_schedule(self):
        with pytest.raises(SystemExit):
            main(["run", "--nodes", "4", "--minutes", "5", "--retain", "8"])

    def test_lifecycle_run_inspect_and_archive_verbs(self, tmp_path, capsys):
        directory = tmp_path / "run"
        assert main(self.run_args(directory)) == 0
        assert main(["inspect", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "store pruned below" in out
        assert "cold bytes (archive)" in out
        assert main(["archive", "inspect", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "pinned checkpoints" in out
        assert main(["archive", "fetch", str(directory), "0"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["index"] == 0

    def test_prune_verb_compacts_offline(self, tmp_path, capsys):
        # A run WITHOUT lifecycle flags never prunes or compacts; the
        # offline verb retrofits the policy onto its store.
        directory = tmp_path / "run"
        args = self.run_args(directory)
        for flag in ("--checkpoint-every", "--retain"):
            where = args.index(flag)
            del args[where : where + 2]
        assert main(args) == 0
        capsys.readouterr()
        before = inspect_run(directory)
        assert before.store_pruned_below == 0
        # Without a policy (manifest has none, no flags): refused.
        with pytest.raises(SystemExit):
            main(["prune", str(directory)])
        policy = ["--checkpoint-every", "2", "--retain", "2"]
        assert main(["prune", str(directory), *policy]) == 0
        out = capsys.readouterr().out
        assert "pruned to checkpoint" in out
        after = inspect_run(directory)
        assert after.ok, after.problems
        assert after.store_pruned_below > 0
        assert after.archive_blocks == after.store_pruned_below
        archive = BlockArchive(directory / ARCHIVE_NAME)
        assert archive.verify_integrity() == []
        # Second invocation is a no-op.
        assert main(["prune", str(directory), *policy]) == 0
        assert "nothing to prune" in capsys.readouterr().out
