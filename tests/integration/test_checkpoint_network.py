"""Node-level checkpointing: the network runs normally with checkpoints on."""

from dataclasses import replace

import pytest

from repro.core.config import SystemConfig
from repro.sim.cluster import build_cluster


class TestCheckpointedNetwork:
    def test_chain_grows_and_converges_with_checkpoints(self):
        config = SystemConfig(
            expected_block_interval=15.0,
            data_items_per_minute=0.0,
            checkpoint_interval=5,
        )
        cluster = build_cluster(6, config, seed=71)
        cluster.start()
        cluster.engine.run_until(900.0)
        cluster.engine.run_until(cluster.engine.now + 30.0)
        heights = {node.chain.height for node in cluster.nodes.values()}
        tips = {node.chain.tip.current_hash for node in cluster.nodes.values()}
        assert max(heights) >= 10
        assert len(tips) == 1  # normal fork resolution happens within windows
        for node in cluster.nodes.values():
            assert node.chain.last_checkpoint() >= 5

    def test_checkpoint_interacts_with_recovery(self):
        config = SystemConfig(
            expected_block_interval=15.0,
            data_items_per_minute=0.0,
            checkpoint_interval=4,
            recent_cache_capacity=6,
        )
        cluster = build_cluster(6, config, seed=73)
        cluster.start()
        cluster.engine.run_until(300.0)
        # A node disconnects across a checkpoint boundary and returns.
        cluster.network.set_online(4, False)
        cluster.engine.run_until(cluster.engine.now + 300.0)
        cluster.network.set_online(4, True)
        cluster.nodes[4].on_reconnect()
        cluster.engine.run_until(cluster.engine.now + 600.0)
        target = max(
            node.chain.height
            for n, node in cluster.nodes.items()
            if n != 4
        )
        # The returning node catches up: its pre-disconnect prefix agrees
        # with the network's checkpointed history, so sync is permitted.
        assert cluster.nodes[4].chain.height >= target - 1
