"""Integration tests: durable runs, crash recovery, CLI resume determinism."""

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.core.config import PAPER_CONFIG
from repro.core.errors import PersistError
from repro.metrics.export import metrics_to_record
from repro.persist import (
    PersistConfig,
    inspect_run,
    resume_run,
    run_persistent,
    snapshot_paths,
)
from repro.persist.resume import (
    CHAIN_SUMMARY_NAME,
    JOURNAL_NAME,
    MANIFEST_NAME,
    METRICS_NAME,
    STORE_NAME,
)
from repro.sim.runner import ChurnSpec, ExperimentSpec, run_experiment

pytestmark = pytest.mark.persist

#: Snappy intervals so short test runs still journal and snapshot.
FAST_PERSIST = PersistConfig(
    journal_every_seconds=20.0, snapshot_every_seconds=120.0
)


def small_spec(seed: int = 7, churn: bool = False) -> ExperimentSpec:
    config = replace(
        PAPER_CONFIG, simulation_minutes=15.0, data_items_per_minute=2.0
    )
    return ExperimentSpec(
        node_count=6,
        config=config,
        seed=seed,
        churn=ChurnSpec() if churn else None,
    )


def record_text(metrics, seed: int) -> str:
    # json.dumps renders NaN stably, making records comparable even when
    # a metric (e.g. mean recovery with zero recoveries) is NaN.
    return json.dumps(metrics_to_record(metrics, seed=seed), sort_keys=True)


class TestDurableEqualsPlain:
    def test_persisted_run_matches_plain_run(self, tmp_path):
        spec = small_spec()
        plain = run_experiment(spec)
        durable = run_persistent(spec, tmp_path / "run", persist=FAST_PERSIST)
        assert durable.completed
        assert record_text(durable.metrics, 7) == record_text(plain.metrics, 7)

    def test_run_directory_layout(self, tmp_path):
        durable = run_persistent(
            small_spec(), tmp_path / "run", persist=FAST_PERSIST
        )
        names = {p.name for p in durable.directory.iterdir()}
        for required in (
            MANIFEST_NAME,
            JOURNAL_NAME,
            STORE_NAME,
            METRICS_NAME,
            CHAIN_SUMMARY_NAME,
        ):
            assert required in names
        manifest = json.loads((durable.directory / MANIFEST_NAME).read_text())
        assert manifest["status"] == "complete"

    def test_existing_run_directory_refused(self, tmp_path):
        run_persistent(small_spec(), tmp_path / "run", persist=FAST_PERSIST)
        with pytest.raises(PersistError, match="already holds a run"):
            run_persistent(small_spec(), tmp_path / "run", persist=FAST_PERSIST)


class TestKillAndResume:
    def reference_record(self, spec) -> str:
        return record_text(run_experiment(spec).metrics, spec.seed)

    def test_pause_then_resume_is_deterministic(self, tmp_path):
        spec = small_spec()
        reference = self.reference_record(spec)
        paused = run_persistent(
            spec, tmp_path / "run", persist=FAST_PERSIST, stop_after_seconds=400.0
        )
        assert not paused.completed
        resumed = resume_run(tmp_path / "run")
        assert resumed.completed
        assert resumed.resumed_from == pytest.approx(400.0)
        assert record_text(resumed.metrics, spec.seed) == reference

    def test_hard_kill_torn_journal_resumes(self, tmp_path):
        spec = small_spec()
        reference = self.reference_record(spec)
        run_persistent(
            spec, tmp_path / "run", persist=FAST_PERSIST, stop_after_seconds=400.0
        )
        with (tmp_path / "run" / JOURNAL_NAME).open("ab") as handle:
            handle.write(b'{"v": 1, "seq": 9999, "type": "blo')  # torn write
        resumed = resume_run(tmp_path / "run")
        assert resumed.completed
        assert record_text(resumed.metrics, spec.seed) == reference

    def test_resume_without_snapshots_replays_from_genesis(self, tmp_path):
        spec = small_spec()
        reference = self.reference_record(spec)
        run_persistent(
            spec, tmp_path / "run", persist=FAST_PERSIST, stop_after_seconds=400.0
        )
        for path in snapshot_paths(tmp_path / "run"):
            path.unlink()
        resumed = resume_run(tmp_path / "run")
        assert resumed.completed
        assert resumed.resumed_from == 0.0
        # Replayed blocks must hash-match the pre-kill journal.
        assert resumed.blocks_verified > 0
        assert record_text(resumed.metrics, spec.seed) == reference

    def test_resume_with_churn_spec_round_trips(self, tmp_path):
        spec = small_spec(seed=3, churn=True)
        reference = self.reference_record(spec)
        run_persistent(
            spec, tmp_path / "run", persist=FAST_PERSIST, stop_after_seconds=400.0
        )
        resumed = resume_run(tmp_path / "run")
        assert resumed.completed
        assert record_text(resumed.metrics, spec.seed) == reference

    def test_completed_run_refuses_resume(self, tmp_path):
        run_persistent(small_spec(), tmp_path / "run", persist=FAST_PERSIST)
        with pytest.raises(PersistError, match="already completed"):
            resume_run(tmp_path / "run")

    def test_corrupt_journal_refuses_resume(self, tmp_path):
        run_persistent(
            small_spec(),
            tmp_path / "run",
            persist=FAST_PERSIST,
            stop_after_seconds=400.0,
        )
        journal = tmp_path / "run" / JOURNAL_NAME
        lines = journal.read_bytes().splitlines(keepends=True)
        lines[3] = b'{"mangled": true}\n'
        journal.write_bytes(b"".join(lines))
        with pytest.raises(PersistError, match="corrupt"):
            resume_run(tmp_path / "run")


class TestInspect:
    def test_healthy_run_reports_ok(self, tmp_path):
        run_persistent(small_spec(), tmp_path / "run", persist=FAST_PERSIST)
        report = inspect_run(tmp_path / "run")
        assert report.ok
        assert report.status == "complete"
        assert report.journal_height == report.store_height
        assert report.snapshots

    def test_not_a_run_directory(self, tmp_path):
        report = inspect_run(tmp_path)
        assert not report.ok

    def test_mid_file_corruption_reported(self, tmp_path):
        run_persistent(
            small_spec(),
            tmp_path / "run",
            persist=FAST_PERSIST,
            stop_after_seconds=400.0,
        )
        journal = tmp_path / "run" / JOURNAL_NAME
        lines = journal.read_bytes().splitlines(keepends=True)
        lines[2] = b'{"mangled": true}\n'
        journal.write_bytes(b"".join(lines))
        report = inspect_run(tmp_path / "run")
        assert not report.ok
        assert any("corrupt" in problem for problem in report.problems)


class TestCLI:
    def run_args(self, directory, extra=()):
        return [
            "run",
            "--nodes", "6",
            "--minutes", "15",
            "--rate", "2",
            "--seed", "7",
            "--persist", str(directory),
            "--journal-every", "20",
            "--snapshot-every", "120",
            *extra,
        ]

    def test_cli_kill_and_resume_matches_uninterrupted(self, tmp_path, capsys):
        full_dir = tmp_path / "full"
        assert main(self.run_args(full_dir)) == 0
        resumed_dir = tmp_path / "resumed"
        assert main(self.run_args(resumed_dir, ["--stop-after", "400"])) == 0
        assert "paused" in capsys.readouterr().out
        assert main(["resume", str(resumed_dir)]) == 0
        assert "resumed from" in capsys.readouterr().out
        full_metrics = (full_dir / METRICS_NAME).read_text()
        resumed_metrics = (resumed_dir / METRICS_NAME).read_text()
        assert full_metrics == resumed_metrics
        full_summary = json.loads((full_dir / CHAIN_SUMMARY_NAME).read_text())
        resumed_summary = json.loads(
            (resumed_dir / CHAIN_SUMMARY_NAME).read_text()
        )
        assert full_summary["tip_hash"] == resumed_summary["tip_hash"]

    def test_cli_inspect_exit_codes(self, tmp_path, capsys):
        directory = tmp_path / "run"
        assert main(self.run_args(directory, ["--stop-after", "400"])) == 0
        assert main(["inspect", str(directory)]) == 0
        journal = directory / JOURNAL_NAME
        lines = journal.read_bytes().splitlines(keepends=True)
        lines[2] = b'{"mangled": true}\n'
        journal.write_bytes(b"".join(lines))
        assert main(["inspect", str(directory)]) == 1
        assert "PROBLEM" in capsys.readouterr().err
        assert main(["resume", str(directory)]) == 2

    def test_cli_stop_after_requires_persist(self):
        with pytest.raises(SystemExit):
            main(["run", "--stop-after", "60"])
