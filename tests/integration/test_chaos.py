"""Chaos-suite integration tests: adversaries, verdicts, determinism.

The chaos runner must be a *seeded* instrument: the same scenario run
twice produces the identical verdict and honest-chain digest, and an
adversary-free scenario is bit-identical to a plain experiment — the
suite observes the protocol without perturbing it.  On top of that, the
safety/liveness invariants must hold with a quarter of the network
Byzantine.
"""

import dataclasses
from dataclasses import replace

import pytest

from repro.chaos import ChaosSpec, run_chaos
from repro.chaos.scenario import KillPlan, node_classes_for
from repro.core.config import PAPER_CONFIG
from repro.core.messages import BlockRequest, BlockResponse, ChainRequest
from repro.sim.runner import ChurnSpec, ExperimentSpec, build_runtime, run_experiment
from tests.helpers import make_config

pytestmark = pytest.mark.chaos


def chaos_config(**overrides):
    return make_config(verify_metadata_signatures=True, **overrides)


def run_twice(spec):
    return run_chaos(spec), run_chaos(spec)


class TestDeterminism:
    @pytest.mark.parametrize(
        "behavior",
        ["equivocator", "spammer", "poisoner", "tamperer", "flooder"],
    )
    def test_same_seed_same_verdict_and_digest(self, behavior):
        spec = ChaosSpec(
            node_count=6,
            config=chaos_config(),
            seed=7,
            duration_minutes=6.0,
            adversaries={behavior: (2,)},
        )
        first, second = run_twice(spec)
        assert first.verdict == second.verdict
        assert first.honest_digest == second.honest_digest

    def test_mixed_scenario_with_churn_deterministic(self):
        spec = ChaosSpec(
            node_count=8,
            config=chaos_config(),
            seed=11,
            duration_minutes=6.0,
            adversaries={"spammer": (3,), "flooder": (6,)},
            churn=ChurnSpec(node_fraction=0.25),
        )
        first, second = run_twice(spec)
        assert first.verdict == second.verdict


class TestAdversaryFreeNeutrality:
    def test_empty_scenario_matches_plain_experiment(self):
        """No adversaries => the chaos runner is a pure observer."""
        config = make_config()
        chaos = run_chaos(
            ChaosSpec(
                node_count=8, config=config, seed=5, duration_minutes=10.0
            )
        )
        plain = run_experiment(
            ExperimentSpec(
                node_count=8, config=config, seed=5, duration_minutes=10.0
            )
        )
        reference = plain.cluster.longest_chain_node().chain
        assert chaos.verdict["honest_digest"] == reference.chain_digest()
        assert chaos.verdict["honest_height"] == reference.height
        assert chaos.status == "ok"
        assert chaos.verdict["admission"]["total_rejections"] == 0
        assert chaos.verdict["admission"]["quarantined_peers"] == []


class TestSafetyUnderAttack:
    def test_quarter_adversarial_network_holds_invariants(self):
        """8 nodes, 2 Byzantine (spammer + equivocator): safety must hold."""
        spec = ChaosSpec(
            node_count=8,
            config=chaos_config(),
            seed=5,
            duration_minutes=10.0,
            adversaries={"spammer": (3,), "equivocator": (6,)},
        )
        result = run_chaos(spec)
        safety = result.verdict["safety"]
        assert safety["ok"], result.verdict
        assert safety["invalid_chains"] == []
        assert safety["genesis_consistent"]
        assert safety["checkpoint_violations"] == []
        assert safety["honest_quarantined"] == []
        # The spammer acts every block interval, so rejections must exist
        # and it must end up quarantined by the honest network.
        admission = result.verdict["admission"]
        assert admission["rejections"].get("bad_hash", 0) > 0
        assert admission["rejections"].get("bad_pos", 0) > 0
        assert 3 in admission["quarantined_peers"]
        assert result.status != "critical"

    def test_flooder_is_quarantined_without_hurting_liveness(self):
        spec = ChaosSpec(
            node_count=6,
            config=chaos_config(),
            seed=5,
            duration_minutes=10.0,
            adversaries={"flooder": (2,)},
        )
        result = run_chaos(spec)
        assert result.verdict["safety"]["ok"]
        assert result.verdict["liveness"]["ok"], result.verdict["liveness"]
        admission = result.verdict["admission"]
        assert admission["rejections"].get("flood", 0) > 0
        assert 2 in admission["quarantined_peers"]

    def test_tamperer_caught_by_signature_verification(self):
        spec = ChaosSpec(
            node_count=6,
            config=chaos_config(),
            seed=5,
            duration_minutes=10.0,
            adversaries={"tamperer": (2,)},
        )
        result = run_chaos(spec)
        rejections = result.verdict["admission"]["rejections"]
        assert rejections.get("bad_producer", 0) > 0
        assert rejections.get("bad_signature", 0) > 0
        assert result.verdict["safety"]["ok"]


class TestLivenessUnderAttack:
    def test_spammer_with_churn_stays_non_critical(self):
        spec = ChaosSpec(
            node_count=8,
            config=chaos_config(),
            seed=11,
            duration_minutes=10.0,
            adversaries={"spammer": (3,)},
            churn=ChurnSpec(node_fraction=0.25),
        )
        result = run_chaos(spec)
        assert result.status in ("ok", "warning")
        liveness = result.verdict["liveness"]
        assert liveness["common_prefix_height"] > 0
        assert liveness["common_prefix_height"] >= liveness["growth_floor"]


@pytest.mark.net
class TestLiveChaos:
    def test_live_spammer_with_kill_restart(self):
        """Adversary + crash fault over real sockets: the honest cluster
        quarantines the spammer, resyncs the restarted node, and the
        safety invariants hold end to end."""
        # t0=30 keeps the restarted node's re-mined low blocks outside
        # the equivocation window by the time it reconnects.
        config = replace(
            PAPER_CONFIG,
            data_items_per_minute=1.0,
            expected_block_interval=30.0,
        )
        spec = ChaosSpec(
            node_count=8,
            config=config,
            seed=5,
            duration_minutes=6.0,
            adversaries={"spammer": (5,)},
            kill=KillPlan(node_id=3, at_minutes=2.0, down_minutes=1.5),
            fabric="live",
            time_scale=0.02,
        )
        result = run_chaos(spec)
        verdict = result.verdict
        assert verdict["safety"]["ok"], verdict
        assert verdict["live"]["restarted"] == [3]
        assert verdict["live"]["resynced"], verdict["live"]
        assert verdict["live"]["reconnects"] > 0
        assert result.status != "critical", verdict
        # The bad-hash variant dies in the wire codec (decode re-verifies
        # the content hash), so on the live fabric the admission layer
        # sees the forged-PoS and forged-miner variants.
        rejections = verdict["admission"]["rejections"]
        assert rejections.get("bad_pos", 0) > 0
        assert rejections.get("bad_miner", 0) > 0
        assert 5 in verdict["admission"]["quarantined_peers"]


class TestPoisonerPaths:
    """Drive the sync-poisoner's serve paths and the victim-side
    attribution directly — gap recovery only routes through the poisoner
    at some seeds, and these invariants must not be seed-dependent."""

    @pytest.fixture
    def attacked(self):
        spec = ChaosSpec(
            node_count=6,
            config=chaos_config(),
            seed=7,
            duration_minutes=5.0,
            adversaries={"poisoner": (2,)},
        )
        experiment = ExperimentSpec(
            node_count=spec.node_count,
            config=spec.config,
            seed=spec.seed,
            duration_minutes=spec.duration_minutes,
            node_classes=node_classes_for(spec),
        )
        runtime = build_runtime(experiment)
        runtime.engine.run_until(spec.duration_seconds)
        return runtime

    def test_poisoned_gap_response_charged_to_sender(self, attacked):
        victim = attacked.cluster.nodes[0]
        poisoner_id = 2
        base = victim._build_block(victim.chain.tip)
        forged_pos = dataclasses.replace(
            base, pos_hash="ab" * 32, current_hash=""
        )
        tip_before = victim.chain.tip.current_hash
        victim._on_block_response(
            poisoner_id, BlockResponse(blocks=(forged_pos,))
        )
        # Structure and linkage pass, so the block reaches the drain where
        # PoS re-verification fails — charged to the delivering peer.
        assert victim.admission.rejections.get("bad_pos", 0) >= 1
        assert victim.admission.scores.get(poisoner_id, 0.0) > 0
        assert victim.chain.tip.current_hash == tip_before
        assert victim.sync.buffered == {}

    def test_garbage_hash_dropped_at_response_boundary(self, attacked):
        victim = attacked.cluster.nodes[0]
        poisoner_id = 2
        base = victim._build_block(victim.chain.tip)
        garbage = dataclasses.replace(base, current_hash="00" * 32)
        victim._on_block_response(poisoner_id, BlockResponse(blocks=(garbage,)))
        assert victim.admission.rejections.get("bad_hash", 0) >= 1
        # Never buffered: rejected before touching sync state.
        assert victim.sync.buffered == {}

    def test_poisoner_serves_tampered_blocks(self, attacked):
        poisoner = attacked.cluster.nodes[2]
        victim = attacked.cluster.nodes[0]
        actions_before = poisoner.chaos_actions
        held_before = [victim.chain.block_at(i).current_hash for i in (1, 2)]
        poisoner._on_block_request(
            victim.node_id,
            BlockRequest(indices=(1, 2), origin=victim.node_id),
        )
        attacked.engine.run_until(attacked.engine.now + 10.0)
        assert poisoner.chaos_actions > actions_before
        # The victim already holds those heights; the tampered copies
        # must not displace them (honest mining may continue meanwhile).
        held_after = [victim.chain.block_at(i).current_hash for i in (1, 2)]
        assert held_after == held_before

    def test_truncated_chain_response_never_adopted(self, attacked):
        poisoner = attacked.cluster.nodes[2]
        victim = attacked.cluster.nodes[0]
        actions_before = poisoner.chaos_actions
        genesis_before = victim.chain.block_at(0).current_hash
        poisoner._on_chain_request(
            victim.node_id, ChainRequest(origin=victim.node_id)
        )
        attacked.engine.run_until(attacked.engine.now + 10.0)
        assert poisoner.chaos_actions == actions_before + 1
        # The genesis-less chain is one block short, so the longest-chain
        # rule alone discards it; even if the poisoner were ahead, replay
        # validation would refuse a chain with a foreign root.  Either
        # way the victim's root must hold (honest mining may extend the
        # tip meanwhile).
        assert victim.chain.block_at(0).current_hash == genesis_before
        assert victim.chain.block_at(0).is_genesis
