"""Cross-seed invariant sweep.

Runs small full-system simulations across several seeds and checks the
invariants that must hold on *every* execution, whatever the randomness:

* all online nodes converge to one chain,
* physical storage capacity is never breached,
* the audit replay reproduces every token balance,
* every chain revalidates from genesis on an independent replica,
* traffic accounting is symmetric (every byte sent was received),
* Q_i and S_i stay ≥ 1 (the Section V-A floors).
"""

import pytest

from repro.core.audit import audit_chain
from repro.core.blockchain import Blockchain

SEEDS = [0, 1, 2, 3, 4]


@pytest.fixture
def runs(fixed_seed_run):
    return {
        seed: fixed_seed_run(
            node_count=8,
            seed=seed,
            duration_minutes=15,
            storage_capacity=50,
            expected_block_interval=20.0,
            data_items_per_minute=1.5,
            recent_cache_capacity=4,
        )
        for seed in SEEDS
    }


@pytest.mark.parametrize("seed", SEEDS)
class TestPerSeedInvariants:
    def test_convergence(self, runs, seed):
        cluster = runs[seed].cluster
        cluster.engine.run_until(cluster.engine.now + 60.0)
        tips = {
            node.chain.tip.current_hash
            for node in cluster.nodes.values()
            if cluster.network.is_online(node.node_id)
        }
        assert len(tips) == 1

    def test_capacity_never_breached(self, runs, seed):
        for node in runs[seed].cluster.nodes.values():
            assert 0 <= node.storage.used_slots() <= node.storage.capacity

    def test_audit_matches_every_balance(self, runs, seed):
        cluster = runs[seed].cluster
        chain = cluster.longest_chain_node().chain
        report = audit_chain(chain.blocks, cluster.node_ids, cluster.config)
        for node_id in cluster.node_ids:
            assert report.balance(node_id) == pytest.approx(
                chain.state.tokens(node_id)
            )

    def test_chain_revalidates_independently(self, runs, seed):
        cluster = runs[seed].cluster
        chain = cluster.longest_chain_node().chain
        replica = Blockchain(
            cluster.node_ids,
            cluster.config,
            chain.address_of,
            genesis=chain.blocks[0],
        )
        for block in chain.blocks[1:]:
            replica.append_block(block)
        assert replica.tip.current_hash == chain.tip.current_hash

    def test_traffic_symmetry(self, runs, seed):
        trace = runs[seed].cluster.network.trace
        total_tx = sum(trace.node(n).tx_bytes for n in runs[seed].cluster.node_ids)
        total_rx = sum(trace.node(n).rx_bytes for n in runs[seed].cluster.node_ids)
        assert total_tx == total_rx

    def test_stake_and_storage_floors(self, runs, seed):
        cluster = runs[seed].cluster
        chain = cluster.longest_chain_node().chain
        now = cluster.engine.now
        for node_id in cluster.node_ids:
            assert chain.state.tokens(node_id) > 0
            assert chain.state.stored_items(node_id, now) >= 1

    def test_served_plus_failed_accounts_for_requests(self, runs, seed):
        for node in runs[seed].cluster.nodes.values():
            counters = node.counters
            terminated = (
                counters.data_requests_served + counters.data_requests_failed
            )
            # In-flight requests at cut-off are the only legitimate gap
            # (pending entries plus retry-scheduled requests).
            assert terminated <= counters.data_requests_sent
