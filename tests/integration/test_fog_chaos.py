"""Integration tests: fog-tier adversaries against the federated harness.

Each of the four fog adversaries runs solo at a fixed seed and must end
with the PR's containment contract: the offending super-peer quarantined,
its home clusters re-homed to the deterministic sibling, every
non-quarantined replica converged (complete and chain-consistent), the
lookup success rate at or above the floor, and no honest peer charged
into quarantine.  An adversary-free chaos run through the same harness
must stay entirely quiet — zero charges, zero quarantines, fog ok.
"""

import pytest

from repro.federation import (
    FOG_LOOKUP_SUCCESS_FLOOR,
    FederatedChaosSpec,
    FederationSpec,
    run_federated_chaos,
)
from tests.helpers import make_config

pytestmark = pytest.mark.fog

#: One poisoned super-peer (id 0) in a 3-cluster federation: peer 0 homes
#: clusters 0 and 2, so quarantine must fail both over to peer 1.
ADVERSARY_PEER = 0
EXPECTED_REHOMED = {"0": 1, "2": 1}


def chaos_spec(fog_adversaries):
    federation = FederationSpec(
        cluster_count=3,
        nodes_per_cluster=4,
        config=make_config(
            data_items_per_minute=2.0, expected_block_interval=30.0
        ),
        seed=7,
        duration_minutes=8.0,
        super_peer_count=2,
    )
    return FederatedChaosSpec(
        federation=federation,
        fog_adversaries=fog_adversaries,
        start_minutes=1.5,
    )


@pytest.fixture(
    scope="module",
    params=[
        "summary_poisoner",
        "gossip_suppressor",
        "version_inflator",
        "gateway_tamperer",
    ],
)
def solo_run(request):
    behavior = request.param
    spec = chaos_spec({behavior: (ADVERSARY_PEER,)})
    return behavior, run_federated_chaos(spec)


class TestSoloAdversaries:
    def test_offender_quarantined_and_clusters_rehomed(self, solo_run):
        _behavior, result = solo_run
        fog = result.verdict["fog"]
        assert fog["quarantined_peers"] == [ADVERSARY_PEER]
        assert fog["honest_peers_quarantined"] == []
        assert fog["rehomed_clusters"] == EXPECTED_REHOMED
        # Detection happened inside the run, after the window opened.
        quarantined_at = fog["quarantined_at"][str(ADVERSARY_PEER)]
        assert quarantined_at >= 1.5 * 60.0

    def test_containment_verdict_ok(self, solo_run):
        behavior, result = solo_run
        fog = result.verdict["fog"]
        assert fog["ok"], f"{behavior}: fog containment violated: {fog}"
        assert fog["replicas_converged"]
        assert fog["divergent_entries"] == 0
        assert result.verdict["status"] == "ok"
        assert result.verdict["blast_radius"]["ok"]

    def test_lookup_success_floor(self, solo_run):
        _behavior, result = solo_run
        fog = result.verdict["fog"]
        assert fog["success_floor_applies"]
        assert fog["lookup_success_rate"] >= FOG_LOOKUP_SUCCESS_FLOOR
        assert fog["lookup_success_floor"] == FOG_LOOKUP_SUCCESS_FLOOR

    def test_adversary_left_its_signature(self, solo_run):
        """Each behavior is detected through the defense built for it."""
        behavior, result = solo_run
        fog = result.verdict["fog"]
        scores = fog["scores"]
        assert scores.get(str(ADVERSARY_PEER), 0.0) >= 8.0
        if behavior in ("summary_poisoner", "version_inflator"):
            assert fog["attestation_rejected"] > 0
        if behavior == "gateway_tamperer":
            assert fog["migrations_rejected"] > 0
        aggregate = result.run.aggregate
        assert aggregate["fog_quarantined"] == [ADVERSARY_PEER]
        assert aggregate["rehomed_clusters"] == EXPECTED_REHOMED


class TestHonestBaseline:
    @pytest.fixture(scope="class")
    def honest_run(self):
        return run_federated_chaos(chaos_spec({}))

    def test_no_defense_ever_fires(self, honest_run):
        fog = honest_run.verdict["fog"]
        assert fog["quarantined_peers"] == []
        assert fog["attestation_rejected"] == 0
        assert fog["verify_rejected"] == 0
        assert fog["migrations_rejected"] == 0
        assert fog["lookup_fallbacks"] == 0
        assert fog["divergent_entries"] == 0
        assert fog["scores"] == {}
        assert fog["rehomed_clusters"] == {}

    def test_honest_verdict_ok(self, honest_run):
        assert honest_run.verdict["status"] == "ok"
        assert honest_run.verdict["fog"]["ok"]
        assert honest_run.verdict["fog"]["replicas_converged"]
