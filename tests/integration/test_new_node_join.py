"""Fig. 3's Node K scenario: a node joins and fetches the whole chain.

"For a node that needs the whole blockchain (e.g., new node coming into
the network, as Node K in the example), it first requests for blocks and
then organizes the received blocks and finds out the missing blocks ...
Since a block stores the information about storing nodes for the previous
block, a node can recursively request the missing blocks."

In the simulation, "new" means the node was registered at genesis (the
paper's membership set is fixed) but has been offline since t=0; on its
first connection it holds nothing beyond genesis and must acquire the
entire chain history before it can validate new blocks and mine.
"""

import pytest


@pytest.fixture
def world(make_cluster):
    cluster = make_cluster(
        8,
        seed=41,
        start=False,
        storage_capacity=80,
        expected_block_interval=15.0,
        data_items_per_minute=1.0,
    )
    # Node 7 is "Node K": never seen the network (offline before start).
    cluster.network.set_online(7, False)
    cluster.start()
    # Drive a small publication workload from the online nodes.
    for minute in range(1, 9):
        producer = minute % 7
        cluster.engine.call_at(
            minute * 60.0,
            lambda p=producer: cluster.nodes[p].produce_data(
                data_type="AirQuality/PM2.5"
            ),
        )
    return cluster


class TestNodeKJoins:
    def test_joins_and_acquires_full_chain(self, world):
        # The network runs for a while without node 7.
        world.engine.run_until(600.0)
        established = world.longest_chain_node().chain.height
        assert established >= 10
        assert world.nodes[7].chain.height == 0

        # Node K connects.
        world.network.set_online(7, True)
        world.nodes[7].on_reconnect()
        world.engine.run_until(world.engine.now + 300.0)

        node_k = world.nodes[7]
        target = world.longest_chain_node().chain.height
        assert node_k.chain.height >= established
        assert node_k.chain.height >= target - 1

    def test_acquired_chain_carries_usable_metadata(self, world):
        world.engine.run_until(600.0)
        world.network.set_online(7, True)
        world.nodes[7].on_reconnect()
        world.engine.run_until(world.engine.now + 300.0)
        node_k = world.nodes[7]
        catalogue = node_k.chain.search_metadata()
        assert catalogue  # the workload produced items node K can now see
        # And node K can actually fetch one.
        item = catalogue[0]
        node_k.request_data(item.data_id)
        world.engine.run_until(world.engine.now + 60.0)
        assert node_k.counters.data_requests_served >= 1

    def test_node_k_becomes_a_miner(self, world):
        world.engine.run_until(600.0)
        world.network.set_online(7, True)
        world.nodes[7].on_reconnect()
        # Give it time to sync and win a few lotteries.
        world.engine.run_until(world.engine.now + 1500.0)
        assert world.nodes[7].counters.blocks_mined >= 1

    def test_join_traffic_is_bounded(self, world):
        world.engine.run_until(600.0)
        sync_before = world.network.trace.category_bytes("chain_sync")
        world.network.set_online(7, True)
        world.nodes[7].on_reconnect()
        world.engine.run_until(world.engine.now + 300.0)
        sync_after = world.network.trace.category_bytes("chain_sync")
        # A whole-chain transfer happened, but not dozens of them.
        chain_bytes = sum(
            b.wire_size() for b in world.longest_chain_node().chain.blocks
        )
        assert sync_after - sync_before <= 20 * chain_bytes
