"""SWIM integration tests on the simulated network."""

import pytest

from repro.membership import MemberStatus, SwimCluster
from repro.membership.messages import SWIM_CATEGORY
from repro.raft import RAFT_CATEGORY, RaftCluster
from repro.simnet.channel import ChannelModel
from repro.simnet.engine import EventEngine
from repro.simnet.topology import Position, Topology, connected_random_positions
from repro.simnet.transport import Network


def swim_world(size=8, seed=1, **kwargs):
    engine = EventEngine(seed=seed)
    positions = connected_random_positions(size, engine.np_rng)
    topology = Topology(positions)
    network = Network(engine, topology, ChannelModel(bandwidth=None))
    cluster = SwimCluster(list(range(size)), network, engine, **kwargs)
    return engine, network, cluster


class TestStableCluster:
    def test_no_false_positives(self):
        engine, _, cluster = swim_world()
        cluster.start()
        engine.run_until(60.0)
        for observer in cluster.nodes:
            view = cluster.view_of(observer)
            assert all(status is MemberStatus.ALIVE for status in view.values())

    def test_bounded_per_node_traffic(self):
        engine, network, cluster = swim_world()
        cluster.start()
        engine.run_until(30.0)
        bytes_30s = network.trace.category_bytes(SWIM_CATEGORY)
        engine.run_until(60.0)
        bytes_60s = network.trace.category_bytes(SWIM_CATEGORY)
        # Steady state: traffic grows linearly in time, not faster.
        assert bytes_60s - bytes_30s == pytest.approx(bytes_30s, rel=0.5)


class TestFailureDetection:
    def test_crashed_member_detected_by_everyone(self):
        engine, _, cluster = swim_world(seed=2)
        cluster.start()
        engine.run_until(5.0)
        cluster.crash(3)
        elapsed = cluster.wait_for_detection(3, timeout=60.0)
        # Probe period 1 s + suspicion timeout 5 s → detection well under a
        # minute even with dissemination latency.
        assert elapsed < 40.0

    def test_two_concurrent_failures(self):
        engine, network, cluster = swim_world(size=10, seed=3)
        cluster.start()
        engine.run_until(5.0)
        # Crash two nodes whose removal keeps the survivors connected —
        # otherwise partitioned survivors correctly declare each other dead.
        victims = []
        for candidate in range(10):
            rest = [n for n in range(10) if n != candidate and n not in victims]
            if network.topology.is_connected_subset(rest):
                victims.append(candidate)
            if len(victims) == 2:
                break
        assert len(victims) == 2, "topology has no two safely removable nodes"
        first, second = victims
        cluster.crash(first)
        cluster.crash(second)
        cluster.wait_for_detection(first, timeout=90.0)
        cluster.wait_for_detection(second, timeout=90.0)
        observers = [n for n in cluster.nodes if n not in victims]
        for observer in observers:
            view = cluster.view_of(observer)
            assert view[first] is MemberStatus.DEAD
            assert view[second] is MemberStatus.DEAD
            for other in observers:
                assert view[other] is MemberStatus.ALIVE

    def test_temporarily_slow_member_refutes_suspicion(self):
        engine, network, cluster = swim_world(seed=4)
        cluster.start()
        engine.run_until(5.0)
        # Take node 5 offline briefly — shorter than the suspicion timeout.
        network.set_online(5, False)
        engine.run_until(engine.now + 2.0)
        network.set_online(5, True)
        engine.run_until(engine.now + 30.0)
        for observer in cluster.nodes:
            assert cluster.view_of(observer)[5] is MemberStatus.ALIVE


class TestOverheadVsRaft:
    def test_swim_idle_overhead_below_raft(self):
        """The paper's future-work claim, quantified end-to-end.

        Same topology, same duration, both protocols idle (no writes):
        SWIM's per-node probe traffic must undercut Raft's per-follower
        heartbeat traffic.
        """
        size, seed, duration = 10, 5, 30.0

        engine_r = EventEngine(seed=seed)
        positions = connected_random_positions(size, engine_r.np_rng)
        topo_r = Topology(positions)
        net_r = Network(engine_r, topo_r, ChannelModel(bandwidth=None))
        raft = RaftCluster(list(range(size)), net_r, engine_r)
        raft.start()
        raft.wait_for_leader(timeout=30.0)
        start_bytes = net_r.trace.category_bytes(RAFT_CATEGORY)
        start_time = engine_r.now
        engine_r.run_until(start_time + duration)
        raft_bytes = net_r.trace.category_bytes(RAFT_CATEGORY) - start_bytes

        engine_s = EventEngine(seed=seed)
        topo_s = Topology(positions)
        net_s = Network(engine_s, topo_s, ChannelModel(bandwidth=None))
        swim = SwimCluster(list(range(size)), net_s, engine_s)
        swim.start()
        engine_s.run_until(5.0)
        start_bytes = net_s.trace.category_bytes(SWIM_CATEGORY)
        start_time = engine_s.now
        engine_s.run_until(start_time + duration)
        swim_bytes = net_s.trace.category_bytes(SWIM_CATEGORY) - start_bytes

        assert swim_bytes < raft_bytes
