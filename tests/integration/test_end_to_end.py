"""End-to-end integration tests of the full edge blockchain system."""

import pytest

from repro.core.blockchain import Blockchain
from repro.core.config import SystemConfig
from repro.sim.runner import ChurnSpec, ExperimentSpec, run_experiment


@pytest.fixture
def small_run(fixed_seed_run):
    """One shared 10-node 20-minute run (cached per module: runs take seconds)."""
    return fixed_seed_run(
        node_count=10, seed=21, duration_minutes=20, mobility_epoch_minutes=5.0
    )


class TestChainGrowth:
    def test_chain_grows_near_expected_rate(self, small_run):
        metrics = small_run.metrics
        # 20 min at 30 s/block → ~40 blocks; accept a generous band.
        assert 20 <= metrics.chain_height() <= 60

    def test_mean_interval_near_t0(self, small_run):
        interval = small_run.metrics.mean_block_interval()
        assert 0.5 * 30.0 <= interval <= 2.0 * 30.0

    def test_multiple_miners_win(self, small_run):
        distribution = small_run.metrics.mining_distribution()
        assert sum(1 for count in distribution if count > 0) >= 3


class TestConvergence:
    def test_all_nodes_on_same_chain(self, small_run):
        cluster = small_run.cluster
        cluster.engine.run_until(cluster.engine.now + 60.0)
        tips = {node.chain.tip.current_hash for node in cluster.nodes.values()}
        assert len(tips) == 1

    def test_chain_revalidates_independently(self, small_run):
        chain = small_run.cluster.longest_chain_node().chain
        replica = Blockchain(
            list(small_run.cluster.nodes.keys()),
            small_run.spec.config,
            chain.address_of,
            genesis=chain.blocks[0],
        )
        for block in chain.blocks[1:]:
            replica.append_block(block)
        assert replica.tip.current_hash == chain.tip.current_hash

    def test_packed_metadata_signatures_all_valid(self, small_run):
        chain = small_run.cluster.longest_chain_node().chain
        items = [
            item for block in chain.blocks for item in block.metadata_items
        ]
        assert items, "the workload should have produced packed items"
        assert all(item.verify_signature() for item in items)


class TestDataService:
    def test_most_requests_served(self, small_run):
        metrics = small_run.metrics
        served = len(metrics.delivery_times)
        assert served > 0
        assert metrics.failed_requests <= 0.1 * (served + metrics.failed_requests)

    def test_delivery_times_reasonable(self, small_run):
        metrics = small_run.metrics
        # Paper reports ≤ ~4 s; allow slack for retries.
        assert 0.0 <= metrics.average_delivery_time() < 10.0

    def test_every_packed_item_has_replicas(self, small_run):
        chain = small_run.cluster.longest_chain_node().chain
        for block in chain.blocks:
            for item in block.metadata_items:
                assert len(item.storing_nodes) >= 1


class TestFairness:
    def test_storage_gini_below_paper_bound(self, small_run):
        # Fig. 4(b): Gini below 0.15 across all settings.
        assert small_run.metrics.storage_gini() < 0.15

    def test_storage_capacity_respected(self, small_run):
        for node in small_run.cluster.nodes.values():
            assert node.storage.used_slots() <= node.storage.capacity


class TestTransmission:
    def test_traffic_is_accounted(self, small_run):
        metrics = small_run.metrics
        assert metrics.average_node_megabytes() > 0
        categories = metrics.category_bytes
        assert "block_broadcast" in categories
        assert "metadata_announce" in categories
        assert "data_dissemination" in categories

    def test_dissemination_dominates_broadcast(self, small_run):
        # 1 MB payloads dwarf <10 KB blocks.
        categories = small_run.metrics.category_bytes
        assert categories["data_dissemination"] > categories["block_broadcast"]


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        config = SystemConfig(
            storage_capacity=40, expected_block_interval=20.0,
            data_items_per_minute=1.0,
        )
        spec = ExperimentSpec(node_count=6, config=config, seed=77, duration_minutes=8)
        a = run_experiment(spec)
        b = run_experiment(spec)
        assert a.metrics.chain_height() == b.metrics.chain_height()
        assert a.metrics.per_node_bytes == b.metrics.per_node_bytes
        assert a.metrics.delivery_times == b.metrics.delivery_times
        chain_a = a.cluster.longest_chain_node().chain
        chain_b = b.cluster.longest_chain_node().chain
        assert chain_a.tip.current_hash == chain_b.tip.current_hash

    def test_different_seeds_differ(self):
        config = SystemConfig(expected_block_interval=20.0)
        a = run_experiment(ExperimentSpec(6, config, seed=1, duration_minutes=8))
        b = run_experiment(ExperimentSpec(6, config, seed=2, duration_minutes=8))
        chain_a = a.cluster.longest_chain_node().chain
        chain_b = b.cluster.longest_chain_node().chain
        assert chain_a.tip.current_hash != chain_b.tip.current_hash


class TestChurnRecovery:
    def test_churned_run_completes_and_recovers(self):
        config = SystemConfig(
            storage_capacity=60, expected_block_interval=20.0,
            data_items_per_minute=1.0, recent_cache_capacity=5,
        )
        spec = ExperimentSpec(
            node_count=10, config=config, seed=31, duration_minutes=15,
            churn=ChurnSpec(node_fraction=0.3, events_per_node=2.0,
                            mean_downtime_seconds=60.0),
        )
        result = run_experiment(spec)
        # Recoveries happened and finished.
        assert result.metrics.recovery_durations
        # After the run, bring-everyone-online convergence:
        cluster = result.cluster
        for node_id in cluster.node_ids:
            if not cluster.network.is_online(node_id):
                cluster.network.set_online(node_id, True)
                cluster.nodes[node_id].on_reconnect()
        cluster.engine.run_until(cluster.engine.now + 300.0)
        heights = {node.chain.height for node in cluster.nodes.values()}
        assert max(heights) - min(heights) <= 1
