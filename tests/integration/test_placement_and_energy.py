"""Integration tests for the paper's two comparative claims:

* Fig. 5 — optimal placement delivers data faster than replica-matched
  random placement at similar message overhead.
* Fig. 6 — PoS drains far less battery than PoW at the same block rate.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.pos import compute_amendment, compute_hit, mining_delay
from repro.core.pow import PowMiner
from repro.energy.meter import EnergyMeter
from repro.sim.runner import ExperimentSpec, run_experiment
from repro.sim.scenarios import placement_scenario


@pytest.fixture(scope="module")
def placement_pair():
    """Matched (greedy, random) runs over two seeds at 20 nodes."""
    results = {}
    for solver in ("greedy", "random"):
        results[solver] = [
            run_experiment(placement_scenario(20, solver, seed=seed)).metrics
            for seed in (3, 4)
        ]
    return results


class TestPlacementComparison:
    def test_optimal_faster_on_average(self, placement_pair):
        greedy = np.mean([m.average_delivery_time() for m in placement_pair["greedy"]])
        random_ = np.mean([m.average_delivery_time() for m in placement_pair["random"]])
        assert greedy < random_

    def test_overhead_similar(self, placement_pair):
        # Fig. 5(b): "the message overhead is almost the same".
        greedy = np.mean([m.average_node_megabytes() for m in placement_pair["greedy"]])
        random_ = np.mean([m.average_node_megabytes() for m in placement_pair["random"]])
        assert greedy == pytest.approx(random_, rel=0.35)

    def test_no_failed_requests_either_arm(self, placement_pair):
        for arm in placement_pair.values():
            for metrics in arm:
                assert metrics.failed_requests == 0


class TestEnergyComparison:
    def test_pos_cheaper_per_block_by_papers_factor(self):
        """PoS uses ~64 % less energy per block at the paper's settings."""
        rng = np.random.default_rng(0)
        pow_meter = EnergyMeter()
        miner = PowMiner(pow_meter, difficulty=4)
        for _ in range(50):
            miner.mine_block(rng)
        pow_per_block = pow_meter.total_consumed() / 50

        pos_meter = EnergyMeter()
        # PoS at the same 25 s average block time: bill the polling seconds.
        t0 = 25.0
        b = compute_amendment(2**64, 1, t0, 1.0)
        total_seconds = 0.0
        for i in range(50):
            delay = mining_delay(compute_hit(f"h{i}", "acct", 2**64), 1.0, 1.0, b)
            total_seconds += delay
        pos_meter.charge_pos_ticks(total_seconds)
        pos_per_block = pos_meter.total_consumed() / 50

        saving = 1.0 - pos_per_block / pow_per_block
        assert saving == pytest.approx(0.64, abs=0.12)

    def test_pow_exponential_in_difficulty(self):
        rng = np.random.default_rng(1)
        means = []
        for difficulty in (2, 3, 4):
            meter = EnergyMeter()
            miner = PowMiner(meter, difficulty=difficulty)
            for _ in range(200):
                miner.mine_block(rng)
            means.append(meter.total_consumed() / 200)
        # Each extra hex digit multiplies the work ≈16×.
        assert means[1] / means[0] == pytest.approx(16.0, rel=0.5)
        assert means[2] / means[1] == pytest.approx(16.0, rel=0.5)

    def test_full_network_pos_energy_accounted(self):
        config = SystemConfig(expected_block_interval=20.0, data_items_per_minute=0.0)
        from repro.sim.cluster import build_cluster

        cluster = build_cluster(6, config, seed=5, with_energy_meters=True)
        cluster.start()
        cluster.engine.run_until(600.0)
        drained = [
            node.meter.consumed_by("pos_mining") for node in cluster.nodes.values()
        ]
        assert all(d > 0 for d in drained)
        # Ten minutes of 1.5 W polling ≈ 900 J ± scheduling slack.
        assert max(drained) <= 1.5 * 700
