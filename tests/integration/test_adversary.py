"""Byzantine tests: malicious storers and the invalidity-claim protocol."""

import pytest

from repro.core.adversary import DenyingNode, SilentNode
from repro.core.config import SystemConfig
from repro.sim.cluster import build_cluster


@pytest.fixture
def config():
    return SystemConfig(
        storage_capacity=60,
        expected_block_interval=20.0,
        data_items_per_minute=0.0,
        recent_cache_capacity=5,
    )


def run_blocks(cluster, count):
    deadline = cluster.engine.now + count * cluster.config.expected_block_interval * 20
    while cluster.engine.now < deadline:
        cluster.engine.run_until(
            cluster.engine.now + cluster.config.expected_block_interval
        )
        if cluster.longest_chain_node().chain.height >= count:
            return
    raise AssertionError("chain stalled")


def publish_and_settle(cluster, producer_id):
    item = cluster.nodes[producer_id].produce_data()
    tip = cluster.longest_chain_node().chain.height
    run_blocks(cluster, tip + 2)
    cluster.engine.run_until(cluster.engine.now + 15.0)
    return item


class TestDenyingStorer:
    def test_data_still_served_via_replicas_or_producer(self, config):
        cluster = build_cluster(
            8, config, seed=17, node_classes={2: DenyingNode, 5: DenyingNode}
        )
        cluster.start()
        item = publish_and_settle(cluster, producer_id=0)
        requester = cluster.nodes[7]
        requester.request_data(item.data_id)
        cluster.engine.run_until(cluster.engine.now + 20.0)
        assert requester.counters.data_requests_served == 1
        assert requester.counters.data_requests_failed == 0

    def test_denial_triggers_claim_broadcast(self, config):
        cluster = build_cluster(8, config, seed=17, node_classes={2: DenyingNode})
        cluster.start()
        item = publish_and_settle(cluster, producer_id=0)
        packed = cluster.longest_chain_node().chain.metadata_of(item.data_id)
        if 2 not in packed.storing_nodes:
            pytest.skip("the adversary was not chosen as a storer this seed")
        # Ask every non-storing honest node; whoever hits node 2 claims.
        for node_id, node in cluster.nodes.items():
            if node_id not in packed.storing_nodes and node_id != item.producer:
                node.request_data(item.data_id)
        cluster.engine.run_until(cluster.engine.now + 30.0)
        claims = sum(n.counters.claims_broadcast for n in cluster.nodes.values())
        if claims:
            # Claims propagate: every honest node marks the pair invalid.
            for node_id, node in cluster.nodes.items():
                if not isinstance(node, DenyingNode):
                    assert (item.data_id, 2) in node.invalid_storage

    def test_claimed_replica_skipped_on_later_requests(self, config):
        cluster = build_cluster(8, config, seed=17, node_classes={2: DenyingNode})
        cluster.start()
        item = publish_and_settle(cluster, producer_id=0)
        requester = cluster.nodes[6]
        # Pre-plant the claim (as if learned from an earlier victim).
        requester.invalid_storage.add((item.data_id, 2))
        metadata = cluster.longest_chain_node().chain.metadata_of(item.data_id)
        candidates = requester._candidates_for(metadata)
        assert 2 not in candidates

    def test_free_rider_still_accrues_chain_credit(self, config):
        """The chain credits assignments it cannot verify were honoured —
        the economic gap the claim protocol (and the paper's future work)
        is meant to close."""
        cluster = build_cluster(6, config, seed=19, node_classes={3: DenyingNode})
        cluster.start()
        run_blocks(cluster, 5)
        chain = cluster.longest_chain_node().chain
        assert chain.state.tokens(3) >= config.initial_tokens


class TestSilentStorer:
    def test_requests_survive_silent_adversary(self, config):
        cluster = build_cluster(8, config, seed=23, node_classes={1: SilentNode})
        cluster.start()
        item = publish_and_settle(cluster, producer_id=0)
        requester = cluster.nodes[6]
        requester.request_data(item.data_id)
        # Silence means no NACK: the retry path (30 s × 3) must kick in.
        cluster.engine.run_until(cluster.engine.now + 150.0)
        served = requester.counters.data_requests_served
        failed = requester.counters.data_requests_failed
        assert served + failed == 1
        # With replicas + producer fallback the request normally survives;
        # at minimum it must terminate (no stuck pending entry).
        assert not requester._pending
