"""Perf-regression guard for the incremental UFL fast path.

The equivalence suite (``tests/property/test_fastpath_equivalence.py``)
proves the incremental solver returns bit-identical solutions; this
module proves it is actually *fast* — the whole point of the fast path.
A 200-item replay (fixed connection matrix, one facility-cost bump per
step — the exact access pattern the simulation produces between mobility
epochs) must run at least 5× faster through
:class:`~repro.facility.incremental.IncrementalUFLSolver` than through
200 from-scratch :func:`~repro.facility.greedy.solve_greedy` calls.

The assertion is a *ratio* of wall-clock times on the same machine in
the same process, so it is robust to absolute machine speed; set
``REPRO_SKIP_PERF=1`` to skip it outright on noisy shared runners.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.facility.greedy import solve_greedy
from repro.facility.incremental import IncrementalUFLSolver
from repro.facility.problem import UFLProblem

pytestmark = pytest.mark.fastpath

#: Replay length and problem size: 200 placements over a 30-node cluster,
#: matching the dominant shape of a long steady-state simulation window.
REPLAY_STEPS = 200
SIZE = 30

#: Required speedup.  Calibrated headroom: the vectorised incremental
#: path measures ~8× on this replay; 5× is the regression floor.
MIN_SPEEDUP = 5.0


def _replay_problems():
    """The 200-instance replay: fixed RDC matrix, drifting FDC vector."""
    rng = np.random.default_rng(7)
    conn = rng.uniform(1.0, 50.0, size=(SIZE, SIZE))
    base_costs = rng.uniform(10.0, 200.0, size=SIZE)
    costs = base_costs.copy()
    problems = []
    for step in range(REPLAY_STEPS):
        problems.append(
            UFLProblem(facility_costs=costs.copy(), connection_costs=conn)
        )
        bump = step % SIZE
        costs[bump] = base_costs[bump] * (1.0 + 0.01 * ((step % 7) + 1))
    return problems


def _timed(solver, problems):
    start = time.perf_counter()
    solutions = [solver(problem) for problem in problems]
    return time.perf_counter() - start, solutions


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF") == "1",
    reason="REPRO_SKIP_PERF=1: perf-regression guards disabled",
)
def test_incremental_replay_is_5x_faster_than_greedy():
    problems = _replay_problems()
    # Warm-up pass keeps import/JIT-ish one-time numpy costs out of the
    # measured region for both contenders.
    solve_greedy(problems[0])
    greedy_time, greedy_solutions = _timed(solve_greedy, problems)

    incremental = IncrementalUFLSolver(base="greedy")
    incremental.solve(problems[0])  # warm the epoch caches once
    fast_time, fast_solutions = _timed(incremental.solve, problems)

    # Equivalence first: a fast wrong answer is not a fast path.
    for slow, fast in zip(greedy_solutions, fast_solutions):
        assert slow.open_facilities == fast.open_facilities
        assert slow.assignment == fast.assignment

    speedup = greedy_time / fast_time
    assert speedup >= MIN_SPEEDUP, (
        f"incremental replay only {speedup:.1f}x faster than greedy "
        f"({fast_time * 1000:.0f} ms vs {greedy_time * 1000:.0f} ms); "
        f"regression floor is {MIN_SPEEDUP}x"
    )
    # The replay must actually have exercised the warm path, not the
    # structural-change fallback.
    assert incremental.fallbacks <= 1
    assert incremental.fast_solves >= REPLAY_STEPS - incremental.fallbacks - 1
