"""Integration tests for the network-level PoW consensus baseline."""

from dataclasses import replace

import pytest

from repro.core.config import PAPER_CONFIG, SystemConfig
from repro.core.pow import pow_difficulty_for
from repro.sim.cluster import build_cluster


def pow_config(node_count, t0=20.0):
    hash_rate = 16**4 / 25.0
    return replace(
        PAPER_CONFIG,
        consensus="pow",
        data_items_per_minute=0.0,
        expected_block_interval=t0,
        pow_hash_rate=hash_rate,
        pow_difficulty=pow_difficulty_for(t0, node_count, hash_rate),
    )


class TestPowNetwork:
    def test_chain_grows_at_tuned_rate(self):
        config = pow_config(6, t0=20.0)
        cluster = build_cluster(6, config, seed=9)
        cluster.start()
        cluster.engine.run_until(600.0)  # 10 minutes → ~30 blocks expected
        height = cluster.longest_chain_node().chain.height
        assert 10 <= height <= 70

    def test_all_nodes_converge(self):
        config = pow_config(6)
        cluster = build_cluster(6, config, seed=9)
        cluster.start()
        cluster.engine.run_until(400.0)
        cluster.engine.run_until(cluster.engine.now + 30.0)
        tips = {node.chain.tip.current_hash for node in cluster.nodes.values()}
        assert len(tips) == 1

    def test_multiple_winners(self):
        config = pow_config(6)
        cluster = build_cluster(6, config, seed=9)
        cluster.start()
        cluster.engine.run_until(600.0)
        winners = {
            block.miner
            for block in cluster.longest_chain_node().chain.blocks[1:]
        }
        assert len(winners) >= 3

    def test_pow_burns_more_energy_than_pos(self):
        results = {}
        for consensus in ("pos", "pow"):
            config = replace(pow_config(6), consensus=consensus)
            cluster = build_cluster(6, config, seed=9, with_energy_meters=True)
            cluster.start()
            cluster.engine.run_until(600.0)
            results[consensus] = sum(
                node.meter.total_consumed() for node in cluster.nodes.values()
            )
        assert results["pos"] < 0.5 * results["pow"]

    def test_data_workload_runs_under_pow(self):
        config = replace(pow_config(8), data_items_per_minute=1.0)
        cluster = build_cluster(8, config, seed=10)
        cluster.start()
        item = cluster.nodes[0].produce_data()
        cluster.engine.run_until(300.0)
        chain = cluster.longest_chain_node().chain
        assert chain.metadata_of(item.data_id) is not None

    def test_invalid_consensus_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(consensus="proof-of-vibes")
        with pytest.raises(ValueError):
            SystemConfig(pow_hash_rate=0.0)
        with pytest.raises(ValueError):
            SystemConfig(pow_difficulty=-1.0)


class TestDifficultyTuning:
    def test_difficulty_for_matches_interval(self):
        rate = 1000.0
        difficulty = pow_difficulty_for(30.0, 10, rate)
        assert 16.0**difficulty / (10 * rate) == pytest.approx(30.0)

    def test_more_miners_need_more_difficulty(self):
        rate = 1000.0
        assert pow_difficulty_for(30.0, 20, rate) > pow_difficulty_for(30.0, 5, rate)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pow_difficulty_for(0.0, 10, 100.0)
        with pytest.raises(ValueError):
            pow_difficulty_for(10.0, 0, 100.0)
