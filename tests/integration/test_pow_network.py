"""Integration tests for the network-level PoW consensus baseline."""

from dataclasses import replace

import pytest

from repro.core.config import SystemConfig
from repro.core.pow import pow_difficulty_for
from tests.helpers import make_cluster, make_pow_config


class TestPowNetwork:
    def test_chain_grows_at_tuned_rate(self):
        cluster = make_cluster(6, seed=9, consensus="pow", t0=20.0, run_until=600.0)
        # 10 minutes at t0=20 s → ~30 blocks expected.
        height = cluster.longest_chain_node().chain.height
        assert 10 <= height <= 70

    def test_all_nodes_converge(self):
        cluster = make_cluster(6, seed=9, consensus="pow", run_until=400.0)
        cluster.engine.run_until(cluster.engine.now + 30.0)
        tips = {node.chain.tip.current_hash for node in cluster.nodes.values()}
        assert len(tips) == 1

    def test_multiple_winners(self):
        cluster = make_cluster(6, seed=9, consensus="pow", run_until=600.0)
        winners = {
            block.miner
            for block in cluster.longest_chain_node().chain.blocks[1:]
        }
        assert len(winners) >= 3

    def test_pow_burns_more_energy_than_pos(self):
        results = {}
        for consensus in ("pos", "pow"):
            config = replace(make_pow_config(6), consensus=consensus)
            cluster = make_cluster(
                6, seed=9, config=config, with_energy_meters=True, run_until=600.0
            )
            results[consensus] = sum(
                node.meter.total_consumed() for node in cluster.nodes.values()
            )
        assert results["pos"] < 0.5 * results["pow"]

    def test_data_workload_runs_under_pow(self):
        cluster = make_cluster(
            8, seed=10, consensus="pow", data_items_per_minute=1.0
        )
        item = cluster.nodes[0].produce_data()
        cluster.engine.run_until(300.0)
        chain = cluster.longest_chain_node().chain
        assert chain.metadata_of(item.data_id) is not None

    def test_invalid_consensus_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(consensus="proof-of-vibes")
        with pytest.raises(ValueError):
            SystemConfig(pow_hash_rate=0.0)
        with pytest.raises(ValueError):
            SystemConfig(pow_difficulty=-1.0)


class TestDifficultyTuning:
    def test_difficulty_for_matches_interval(self):
        rate = 1000.0
        difficulty = pow_difficulty_for(30.0, 10, rate)
        assert 16.0**difficulty / (10 * rate) == pytest.approx(30.0)

    def test_more_miners_need_more_difficulty(self):
        rate = 1000.0
        assert pow_difficulty_for(30.0, 20, rate) > pow_difficulty_for(30.0, 5, rate)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pow_difficulty_for(0.0, 10, 100.0)
        with pytest.raises(ValueError):
            pow_difficulty_for(10.0, 0, 100.0)
