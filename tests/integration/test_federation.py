"""Federation integration tests: determinism, lookups, migration, chaos.

The acceptance bar for the federated subsystem:

* a seeded multi-cluster run is **deterministic** — two same-seed runs
  produce identical per-cluster chain digests and directory state;
* cross-cluster lookups resolve through the fog super-peers, and
  migrated items land on the target cluster's chain with their identity
  (data_id) intact;
* a killed durable run resumes from its snapshot to exactly the digests
  of an uninterrupted run;
* a fully-Byzantine cluster stays contained: sibling clusters' safety
  verdicts come back clean (the blast-radius invariant).
"""

import json

import pytest

from repro.chaos import ChaosSpec, run_chaos
from repro.federation import (
    FederatedChaosSpec,
    FederationSpec,
    resume_federation,
    run_federated_chaos,
    run_federation,
)
from repro.version import package_version
from tests.helpers import make_config

pytestmark = pytest.mark.fed


def fed_spec(clusters=2, nodes=4, seed=7, minutes=6.0, **overrides):
    return FederationSpec(
        cluster_count=clusters,
        nodes_per_cluster=nodes,
        config=make_config(),
        seed=seed,
        duration_minutes=minutes,
        **overrides,
    )


def cluster_item_ids(domain):
    """Every data_id the cluster knows: on-chain plus still in mempools."""
    chain = domain.cluster.longest_chain_node().chain
    ids = {
        item.data_id
        for block in chain.blocks
        for item in block.metadata_items
    }
    for node in domain.cluster.nodes.values():
        ids.update(node.mempool)
    return ids


@pytest.fixture(scope="module")
def small_run():
    return run_federation(fed_spec())


class TestDeterminism:
    def test_acceptance_4x8_same_seed_same_state(self):
        spec = fed_spec(clusters=4, nodes=8, seed=11, minutes=8.0)
        first = run_federation(spec)
        second = run_federation(spec)
        assert first.aggregate["chain_digests"] == second.aggregate["chain_digests"]
        assert (
            first.aggregate["directory_digest"]
            == second.aggregate["directory_digest"]
        )
        assert first.aggregate["per_cluster"] == second.aggregate["per_cluster"]
        assert all(
            entry["formation_converged"]
            for entry in first.aggregate["per_cluster"]
        )
        # Every cluster made progress on its own shard.
        assert all(entry["height"] > 0 for entry in first.aggregate["per_cluster"])
        assert len(set(first.aggregate["chain_digests"])) == spec.cluster_count

    def test_different_seeds_diverge(self, small_run):
        other = run_federation(fed_spec(seed=8))
        assert (
            small_run.aggregate["chain_digests"]
            != other.aggregate["chain_digests"]
        )


class TestCrossClusterTraffic:
    def test_lookups_resolve_through_super_peers(self, small_run):
        aggregate = small_run.aggregate
        assert aggregate["lookups_ok"] > 0
        assert aggregate["lookups_failed"] == 0
        assert aggregate["gossip_rounds"] > 0
        # Gossip kept every replica within a few refresh periods.
        assert (
            aggregate["directory_staleness"]
            < 3 * small_run.spec.directory_refresh_seconds
        )

    def test_migrated_items_keep_their_identity(self, small_run):
        runtime = small_run.runtime
        migrations = runtime.fog.counters.migrations
        assert migrations > 0
        adopted = sum(
            node.counters.data_adopted
            for domain in runtime.domains
            for node in domain.cluster.nodes.values()
        )
        assert adopted == migrations
        # A migrated item exists under the same data_id in two clusters.
        id_sets = [cluster_item_ids(domain) for domain in runtime.domains]
        shared = set.intersection(*id_sets)
        assert shared


class TestDurability:
    def test_kill_and_resume_matches_uninterrupted_run(self, tmp_path, small_run):
        spec = small_run.spec
        partial = run_federation(
            spec,
            persist_dir=tmp_path,
            snapshot_every_seconds=60.0,
            stop_after_seconds=200.0,
        )
        assert not partial.aggregate["finished"]
        # The paused runtime is discarded here — resume must rebuild it
        # from the snapshot alone, exactly as after a process kill.
        resumed = resume_federation(tmp_path, snapshot_every_seconds=60.0)
        assert resumed.aggregate["finished"]
        assert (
            resumed.aggregate["chain_digests"]
            == small_run.aggregate["chain_digests"]
        )
        assert (
            resumed.aggregate["directory_digest"]
            == small_run.aggregate["directory_digest"]
        )
        assert (
            resumed.aggregate["migrations"] == small_run.aggregate["migrations"]
        )


class TestBlastRadius:
    @pytest.fixture(scope="class")
    def chaos_result(self):
        spec = FederatedChaosSpec(
            federation=fed_spec(clusters=3, nodes=4, seed=13, minutes=8.0),
            byzantine_clusters=(1,),
            behavior="equivocator",
            start_minutes=2.0,
        )
        return run_federated_chaos(spec)

    def test_byzantine_cluster_is_contained(self, chaos_result):
        verdict = chaos_result.verdict
        blast = verdict["blast_radius"]
        assert blast["ok"]
        assert blast["byzantine_clusters"] == [1]
        assert all(blast["sibling_safety"].values())
        assert verdict["status"] != "critical"
        assert verdict["clusters"]["1"]["status"] == "sacrificed"

    def test_verdict_artifact_is_version_stamped(self, chaos_result, tmp_path):
        target = chaos_result.write_verdict(tmp_path / "chaos_verdict.json")
        document = json.loads(target.read_text(encoding="utf-8"))
        assert document["version"] == package_version()
        # Sibling entries are full single-cluster verdicts, stamped too.
        for key in ("0", "2"):
            assert document["clusters"][key]["version"] == package_version()


class TestChaosVerdictVersionStamp:
    def test_single_cluster_chaos_verdict_carries_version(self, tmp_path):
        """Regression: chaos_verdict.json is stamped like verdict.json."""
        spec = ChaosSpec(
            node_count=4,
            config=make_config(),
            seed=3,
            duration_minutes=4.0,
            adversaries={},
        )
        result = run_chaos(spec)
        target = result.write_verdict(tmp_path / "chaos_verdict.json")
        document = json.loads(target.read_text(encoding="utf-8"))
        assert document["version"] == package_version()
