"""`repro compare` acceptance: clean on identical seeds, loud on faults.

Two observed runs with the same seed must compare with zero regressions
(determinism means their timelines are byte-equal); a run with an
injected outage must trip at least one monitor and make the comparison
exit non-zero.
"""

import pytest

from repro.cli import main
from repro.obs import runtime as obs
from repro.obs.diff import compare_runs
from repro.obs.monitors import EVENTS_NAME, VERDICT_NAME, read_events, read_verdict
from repro.obs.timeline import TIMELINE_NAME, read_timeline
from repro.sim.runner import ExperimentSpec, build_runtime
from repro.simnet.faults import ChurnEvent, ChurnInjector
from tests.helpers import make_config

pytestmark = pytest.mark.obs

SPEC = ExperimentSpec(
    node_count=6,
    config=make_config(expected_block_interval=20.0, data_items_per_minute=1.0),
    seed=13,
    duration_minutes=6.0,
)

#: Outage window for the fault run: every node offline for 230 s, far past
#: the chain-stall threshold of 5·t0 = 100 s.
OUTAGE = (100.0, 330.0)


@pytest.fixture(autouse=True)
def obs_disabled_afterwards():
    yield
    obs.disable()


def observed_run(directory, fault: bool = False):
    """One observed seeded run exported to ``directory``."""
    session = obs.enable(timeline_interval=10.0)
    try:
        runtime = build_runtime(SPEC)
        if fault:
            injector = ChurnInjector(runtime.engine, runtime.cluster.network)
            down_at, up_at = OUTAGE
            for node in runtime.cluster.node_ids:
                injector.plan(ChurnEvent(node=node, down_at=down_at, up_at=up_at))
        runtime.engine.run_until(SPEC.duration_seconds)
        session.export(directory)
    finally:
        obs.disable()
    return directory


class TestIdenticalSeeds:
    def test_zero_regressions_and_exit_zero(self, tmp_path):
        a = observed_run(tmp_path / "a")
        b = observed_run(tmp_path / "b")

        # Determinism makes the two timelines byte-equal.
        assert read_timeline(a / TIMELINE_NAME) == read_timeline(b / TIMELINE_NAME)

        result = compare_runs(a, b)
        assert not result.regressed
        assert result.regressions == []
        assert main(["compare", str(a), str(b)]) == 0


class TestFaultInjection:
    def test_outage_trips_monitor_and_compare_exits_nonzero(self, tmp_path):
        baseline = observed_run(tmp_path / "baseline")
        faulted = observed_run(tmp_path / "faulted", fault=True)

        verdict = read_verdict(faulted / VERDICT_NAME)
        assert verdict["status"] == "critical"
        events = read_events(faulted / EVENTS_NAME)
        assert any(
            e["monitor"] == "chain-stall" and e["severity"] == "critical"
            for e in events
        )

        result = compare_runs(baseline, faulted)
        assert result.regressed
        regressed_metrics = {c.metric for c in result.regressions}
        assert "verdict" in regressed_metrics
        assert main(["compare", str(baseline), str(faulted)]) == 1

    def test_compare_is_direction_aware(self, tmp_path):
        """The *fault* run as baseline: the healthy run's higher chain and
        healthier verdict are improvements, not regressions.  (The alert-mix
        check may still flag a differently-alerting monitor — here the
        healthy run's own coverage warning — but no metric rule and not the
        verdict itself may regress.)"""
        baseline = observed_run(tmp_path / "faulted", fault=True)
        candidate = observed_run(tmp_path / "healthy")
        result = compare_runs(baseline, candidate)
        by_metric = {c.metric: c for c in result.comparisons}
        assert by_metric["height"].candidate > by_metric["height"].baseline
        assert not by_metric["height"].regressed
        assert not by_metric["verdict"].regressed


class TestCompareCli:
    def test_missing_directory_exits_two(self, tmp_path, capsys):
        assert main(["compare", str(tmp_path / "nope"), str(tmp_path / "nada")]) == 2
        assert "not found" in capsys.readouterr().err
