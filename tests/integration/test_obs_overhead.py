"""The observability determinism contract, end to end.

Two guarantees, both load-bearing:

1. **Zero perturbation** — hooks only *read* simulation state (the clock,
   queue depths); they never touch RNGs or protocol state.  A seeded run
   must therefore produce bit-identical chain and ledger digests with
   observability on, off, or toggled mid-suite.
2. **Full coverage** — one enabled session watching a simulation run, a
   Raft scenario, and a durable (journal + SQLite) run sees spans and
   counters from every instrumented subsystem: engine, facility, pos,
   raft, and persist.
"""

import urllib.request

import pytest

from repro.obs import runtime as obs
from repro.obs.export import read_trace_events
from repro.obs.live.profiler import PROFILE_NAME
from repro.obs.live.stream import read_stream
from repro.obs.runtime import METRICS_NAME, TRACE_NAME
from repro.persist.resume import PersistConfig, run_persistent
from repro.sim.runner import ExperimentSpec, run_experiment
from tests.helpers import make_config, make_raft_cluster

pytestmark = pytest.mark.obs

#: The shared small scenario: big enough to mine, place, and serve data.
SPEC = ExperimentSpec(
    node_count=6,
    config=make_config(expected_block_interval=20.0, data_items_per_minute=1.0),
    seed=13,
    duration_minutes=6.0,
)


@pytest.fixture(autouse=True)
def obs_disabled_afterwards():
    yield
    obs.disable()


def run_digests(spec=SPEC):
    result = run_experiment(spec)
    chain = result.cluster.longest_chain_node().chain
    return chain.chain_digest(), chain.state.ledger_digest()


class TestOverheadGuard:
    def test_digests_identical_with_obs_on_and_off(self):
        baseline = run_digests()
        obs.enable()
        traced = run_digests()
        session = obs.active_session()
        obs.disable()
        again = run_digests()

        assert traced == baseline
        assert again == baseline
        # And the traced run actually traced: this guard must never pass
        # vacuously because instrumentation silently stopped firing.
        assert len(session.tracer.finished) > 100
        assert session.metrics.counter("engine.events").value > 0

    def test_digests_identical_with_timeline_and_monitors_on(self):
        """The PR-3 semantic layer is as non-perturbing as the raw hooks."""
        baseline = run_digests()
        session = obs.enable(timeline_interval=10.0)
        traced = run_digests()
        obs.disable()

        assert traced == baseline
        # The timeline really sampled and the monitors really watched.
        assert len(session.timeline.samples) > 10
        assert session.monitors is not None
        verdict = session.monitors.verdict()
        assert verdict["status"] in ("healthy", "warning", "critical")

    def test_digests_identical_with_full_telemetry_plane_on(self, tmp_path):
        """PR-8 live plane: streaming ring + Prometheus endpoint + sampling
        profiler all armed, digests still bit-identical to the dark run."""
        baseline = run_digests()
        session = obs.enable(timeline_interval=10.0)
        session.start_stream(tmp_path)
        port = session.start_telemetry()
        session.start_profiler(hz=199.0)
        traced = run_digests()
        # Scrape mid-flight state before export tears the server down.
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ) as response:
            exposition = response.read().decode("utf-8")
        profiler = session.profiler  # export() nulls the handle
        session.export(tmp_path / "out")
        obs.disable()
        dark_again = run_digests()

        assert traced == baseline
        assert dark_again == baseline
        # Each leg of the plane demonstrably ran — no vacuous pass.
        assert "repro_engine_events" in exposition
        stream_samples = [
            r for r in read_stream(tmp_path) if r["kind"] == "sample"
        ]
        assert len(stream_samples) > 10
        assert profiler.samples > 0
        assert (tmp_path / "out" / PROFILE_NAME).exists()

    def test_repeated_enable_disable_cycles_stay_deterministic(self):
        baseline = run_digests()
        for _ in range(2):
            obs.enable()
            assert run_digests() == baseline
            obs.disable()
            assert run_digests() == baseline


class TestFiveSubsystemCoverage:
    def test_one_session_sees_all_instrumented_subsystems(self, tmp_path):
        session = obs.enable()

        # Simulation run: engine, facility, pos (and the run phases).
        run_experiment(SPEC)

        # Raft scenario: elections + replication.
        engine, _, cluster = make_raft_cluster(size=5, seed=2)
        cluster.start()
        assert cluster.wait_for_leader(timeout=30) is not None
        index = cluster.submit_via_leader({"announce": "range"})
        cluster.wait_for_commit(index, timeout=30)

        # Durable run: WAL journal fsyncs + SQLite block commits.
        run_persistent(
            ExperimentSpec(
                node_count=5,
                config=make_config(expected_block_interval=20.0),
                seed=3,
                duration_minutes=3.0,
            ),
            tmp_path / "durable",
            persist=PersistConfig(journal_every_seconds=20.0),
        )

        target = session.export(tmp_path / "obs")
        obs.disable()

        # Spans: pos is counters/histograms-only (hit computation has no
        # meaningful extent), every other subsystem contributes spans too.
        events = read_trace_events(target / TRACE_NAME)
        categories = {e["cat"] for e in events if e.get("ph") == "X"}
        assert {"engine", "facility", "raft", "persist", "run"} <= categories

        # Counters/histograms: all five instrumented subsystems.
        names = session.metrics.names()
        for prefix in ("engine.", "facility.", "pos.", "raft.", "persist."):
            assert any(n.startswith(prefix) for n in names), f"no {prefix} metrics"
        assert (target / METRICS_NAME).exists()
