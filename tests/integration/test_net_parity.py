"""Live-network integration tests: sim/live parity and fault survival.

Marked ``net``: these open real localhost sockets and run compressed
wall-clock experiments (a few seconds each at the default time scale),
so CI runs them in a dedicated job with a hard timeout.
"""

import asyncio
from dataclasses import replace

import pytest

from repro.core import messages as m
from repro.core.account import Account
from repro.core.blockchain import Blockchain
from repro.core.config import PAPER_CONFIG
from repro.net.harness import (
    KillSpec,
    LiveSpec,
    parity_report,
    run_live_experiment,
)
from repro.net.peer import PeerManager
from repro.net.router import SocketNetwork
from repro.simnet.engine import EventEngine
from repro.simnet.topology import Position, Topology
from repro.simnet.transport import Network

pytestmark = pytest.mark.net


def _config(block_interval=60.0):
    return replace(
        PAPER_CONFIG,
        data_items_per_minute=1.0,
        expected_block_interval=block_interval,
    )


class TestChainDigestParity:
    def test_live_cluster_matches_simnet_digest(self):
        # The parity oracle: the same seeded workload, run once on the
        # simulated transport and once over real sockets, must converge
        # to the identical chain digest on every node.
        spec = LiveSpec(
            node_count=4,
            config=_config(),
            seed=7,
            duration_minutes=5.0,
            time_scale=0.02,
        )
        report = parity_report(spec)
        assert report["live_digests_agree"], report
        assert report["workload_mismatches"] == 0, report
        assert report["match"], (
            f"sim digest {report['sim_digest']} != live {report['live_digest']}"
        )
        assert report["sim_height"] == report["live_height"] > 0

    def test_parity_report_rejects_kill_spec(self):
        spec = LiveSpec(
            node_count=4,
            config=_config(),
            kill=KillSpec(node_id=1, at_minutes=1.0, down_minutes=1.0),
        )
        with pytest.raises(ValueError):
            parity_report(spec)


class TestBroadcastParity:
    """Simnet spanning-tree and live fan-out deliver the same handler set."""

    @staticmethod
    def _sim_delivered(payload):
        engine = EventEngine(seed=1)
        # A 4-node line: broadcast must relay beyond direct neighbours.
        topology = Topology(
            [Position(50.0 * i, 0.0) for i in range(4)], comm_range=70.0
        )
        network = Network(engine, topology)
        delivered = []
        for node in range(4):
            network.register(
                node,
                lambda source, msg, category, node=node: delivered.append(
                    (node, source, msg.origin, category)
                ),
            )
        reached = network.broadcast(
            0, payload, payload.wire_size(), m.CATEGORY_CHAIN_SYNC
        )
        engine.run_until(60.0)
        return reached, sorted(delivered)

    @staticmethod
    def _live_delivered(payload):
        async def run():
            accounts = {i: Account.for_node(1, i) for i in range(4)}
            address_of = {i: a.address for i, a in accounts.items()}
            genesis = Blockchain(list(range(4)), _config(), address_of).block_at(0)
            delivered = []
            managers = []
            networks = []
            for node in range(4):
                def on_message(peer_id, frame, node=node):
                    networks[node].deliver_frame(peer_id, frame)

                manager = PeerManager(node, genesis.current_hash, on_message)
                managers.append(manager)
                network = SocketNetwork(node, 4, manager)
                network.register(
                    node,
                    lambda source, msg, category, node=node: delivered.append(
                        (node, source, msg.origin, category)
                    ),
                )
                networks.append(network)
            try:
                for manager in managers:
                    await manager.start()
                for low in range(4):
                    for high in range(low + 1, 4):
                        managers[low].dial(
                            high, managers[high].host, managers[high].port
                        )
                for low in range(4):
                    await managers[low].wait_connected(
                        list(range(low + 1, 4)), timeout=10.0
                    )
                reached = networks[0].broadcast(
                    0, payload, payload.wire_size(), m.CATEGORY_CHAIN_SYNC
                )
                deadline = asyncio.get_running_loop().time() + 5.0
                while len(delivered) < 3:
                    if asyncio.get_running_loop().time() > deadline:
                        break
                    await asyncio.sleep(0.01)
                return reached, sorted(delivered)
            finally:
                for manager in managers:
                    await manager.close()

        return asyncio.run(run())

    def test_same_delivered_set(self):
        payload = m.ChainRequest(origin=0)
        sim_reached, sim_delivered = self._sim_delivered(payload)
        live_reached, live_delivered = self._live_delivered(payload)
        # Every node except the source hears the message exactly once,
        # with an identical (receiver, source, body, category) tuple —
        # whether it travelled a BFS spanning tree or a socket mesh.
        assert sim_reached == live_reached == 3
        assert sim_delivered == live_delivered
        assert sim_delivered == [
            (node, 0, 0, m.CATEGORY_CHAIN_SYNC) for node in (1, 2, 3)
        ]


class TestKillRestartSurvival:
    def test_eight_node_cluster_survives_kill_and_resyncs(self):
        # The acceptance scenario: one node is killed mid-run and
        # restarted with an empty chain; the cluster must reconnect,
        # chain-sync it back, and end prefix-consistent.
        spec = LiveSpec(
            node_count=8,
            config=_config(),
            seed=5,
            duration_minutes=6.0,
            time_scale=0.02,
            kill=KillSpec(node_id=3, at_minutes=2.0, down_minutes=1.5),
        )
        result = run_live_experiment(spec)
        assert result.restarted == (3,)
        assert result.resynced, result.summary()
        assert result.reconnects > 0
        assert result.prefix_consistent, result.summary()
        assert result.max_lag <= 1, result.summary()
        assert result.workload_mismatches == 0
        assert result.healthy, result.summary()
        assert result.chain_height > 0
