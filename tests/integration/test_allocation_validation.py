"""Tests for validator-side allocation re-derivation (crony-miner defence)."""

from dataclasses import replace

import pytest

from repro.core.adversary import CronyMiner
from repro.core.config import SystemConfig
from repro.core.validation import allocations_verifiable, verify_block_allocations
from repro.sim.cluster import build_cluster


@pytest.fixture
def config():
    return SystemConfig(
        storage_capacity=60,
        expected_block_interval=15.0,
        data_items_per_minute=0.0,
        recent_cache_capacity=4,
        validate_allocations=True,
    )


def run_minutes(cluster, minutes):
    cluster.engine.run_until(cluster.engine.now + minutes * 60.0)


class TestVerifiability:
    def test_deterministic_solvers_verifiable(self):
        assert allocations_verifiable("greedy")
        assert allocations_verifiable("local_search")
        assert not allocations_verifiable("random")

    def test_honest_blocks_pass_verification(self, config):
        cluster = build_cluster(6, config, seed=61)
        cluster.start()
        cluster.nodes[0].produce_data()
        run_minutes(cluster, 10)
        # The chain grew: no honest block was rejected for its allocations.
        assert cluster.longest_chain_node().chain.height >= 3
        for node in cluster.nodes.values():
            assert node.counters.blocks_rejected == 0

    def test_verifier_rejects_manipulated_placement(self, config):
        import dataclasses

        cluster = build_cluster(6, config, seed=61)
        cluster.start()
        cluster.nodes[0].produce_data()
        run_minutes(cluster, 10)
        node = cluster.nodes[1]
        chain = node.chain
        # Take a real block with contents and forge its placements.
        target = next(
            (b for b in chain.blocks[1:] if b.metadata_items), chain.blocks[1]
        )
        forged = dataclasses.replace(
            target,
            storing_nodes=(target.miner,),
            metadata_items=tuple(
                item.with_storing_nodes((target.miner,))
                for item in target.metadata_items
            ),
            current_hash="",
        )
        # Rebuild pre-block state for verification.
        from repro.core.blockchain import Blockchain

        replica = Blockchain(
            list(cluster.nodes), config, chain.address_of, genesis=chain.blocks[0]
        )
        for block in chain.blocks[1 : target.index]:
            replica.append_block(block)
        violations = verify_block_allocations(
            forged,
            replica.state,
            cluster.allocator,
            cluster.topology.hop_matrix(),
            [config.mobility_range] * 6,
            config.storage_capacity,
        )
        assert violations

    def test_random_solver_raises(self, config):
        cluster = build_cluster(4, replace(config, placement_solver="random"), seed=3)
        with pytest.raises(ValueError):
            verify_block_allocations(
                cluster.nodes[0].chain.blocks[0],
                cluster.nodes[0].chain.state,
                cluster.allocator,
                cluster.topology.hop_matrix(),
                [30.0] * 4,
                config.storage_capacity,
            )


class TestCronyMinerDefence:
    def test_crony_blocks_rejected_when_validation_on(self, config):
        cluster = build_cluster(
            6, config, seed=67, node_classes={2: CronyMiner}
        )
        cluster.start()
        cluster.nodes[0].produce_data()
        run_minutes(cluster, 20)
        # The crony self-deals on a private chain (it may well be the
        # longest!); what matters is that no honest node adopts any of it.
        honest = [cluster.nodes[n] for n in cluster.nodes if n != 2]
        for node in honest:
            crony_blocks = [b for b in node.chain.blocks[1:] if b.miner == 2]
            assert crony_blocks == []
        # Honest nodes converge among themselves and made progress.
        honest_tips = {node.chain.tip.current_hash for node in honest}
        assert len(honest_tips) == 1
        assert honest[0].chain.height >= 10
        rejected = sum(node.counters.blocks_rejected for node in honest)
        assert rejected > 0  # they saw and refused crony blocks

    def test_crony_prospers_when_validation_off(self, config):
        lax = replace(config, validate_allocations=False)
        cluster = build_cluster(6, lax, seed=67, node_classes={2: CronyMiner})
        cluster.start()
        cluster.nodes[0].produce_data()
        run_minutes(cluster, 20)
        chain = cluster.longest_chain_node().chain
        crony_blocks = [b for b in chain.blocks[1:] if b.miner == 2]
        if not crony_blocks:
            pytest.skip("the crony never won a lottery at this seed")
        # Unvalidated, the manipulation sticks on-chain.
        assert any(b.storing_nodes == (2,) for b in crony_blocks)