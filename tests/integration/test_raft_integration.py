"""Raft integration: partitions, log convergence, and the edge use-case
(replicating membership/range announcements over the geometric network)."""

import pytest

from repro.raft.messages import RAFT_CATEGORY
from repro.simnet.faults import PartitionInjector
from tests.helpers import make_raft_cluster as geometric_cluster


class TestRaftOverGeometricNetwork:
    def test_leader_election_over_multi_hop(self):
        engine, _, cluster = geometric_cluster(seed=2)
        cluster.start()
        leader = cluster.wait_for_leader(timeout=30)
        assert leader is not None

    def test_range_announcements_replicate(self):
        engine, _, cluster = geometric_cluster(seed=2)
        cluster.start()
        announcements = [
            {"node": i, "range": 30.0, "position": (10.0 * i, 5.0)} for i in range(3)
        ]
        for announcement in announcements:
            index = cluster.submit_via_leader(announcement)
        cluster.wait_for_commit(index, timeout=30)
        engine.run_until(engine.now + 2.0)
        for node_id in cluster.nodes:
            assert cluster.applied_commands(node_id) == announcements


class TestRaftUnderPartition:
    def test_majority_side_keeps_committing(self):
        engine, network, cluster = geometric_cluster(size=5, seed=4)
        cluster.start()
        cluster.wait_for_leader(timeout=30)
        index = cluster.submit_via_leader("pre-partition")
        cluster.wait_for_commit(index, timeout=30)

        injector = PartitionInjector(network)
        minority, majority = [0, 1], [2, 3, 4]
        injector.partition(minority, majority)
        engine.run_until(engine.now + 10.0)

        majority_leaders = [
            cluster.nodes[n] for n in majority if cluster.nodes[n].is_leader
        ]
        if not majority_leaders:
            # Give elections more time (multi-hop timeouts).
            engine.run_until(engine.now + 20.0)
            majority_leaders = [
                cluster.nodes[n] for n in majority if cluster.nodes[n].is_leader
            ]
        assert majority_leaders
        leader = max(majority_leaders, key=lambda n: n.current_term)
        submitted = leader.submit("during-partition")
        assert submitted is not None
        engine.run_until(engine.now + 10.0)
        committed = sum(
            1 for n in majority if cluster.nodes[n].commit_index >= submitted
        )
        assert committed >= 2

    def test_heal_converges_all_logs(self):
        engine, network, cluster = geometric_cluster(size=5, seed=4)
        cluster.start()
        cluster.wait_for_leader(timeout=30)
        injector = PartitionInjector(network)
        injector.partition([0, 1], [2, 3, 4])
        engine.run_until(engine.now + 15.0)
        majority_leader = next(
            (cluster.nodes[n] for n in (2, 3, 4) if cluster.nodes[n].is_leader), None
        )
        if majority_leader is not None:
            majority_leader.submit("partitioned-write")
        injector.heal()
        engine.run_until(engine.now + 20.0)
        assert cluster.logs_consistent()


class TestHeartbeatOverheadMeasurement:
    def test_idle_heartbeat_traffic_grows_linearly(self):
        """The paper's future-work complaint, quantified: idle Raft still
        transmits heartbeats at a steady rate."""
        engine, network, cluster = geometric_cluster(size=4, seed=6)
        cluster.start()
        cluster.wait_for_leader(timeout=30)
        start = network.trace.category_bytes(RAFT_CATEGORY)
        engine.run_until(engine.now + 10.0)
        mid = network.trace.category_bytes(RAFT_CATEGORY)
        engine.run_until(engine.now + 10.0)
        end = network.trace.category_bytes(RAFT_CATEGORY)
        first_window = mid - start
        second_window = end - mid
        assert first_window > 0
        assert second_window == pytest.approx(first_window, rel=0.5)
