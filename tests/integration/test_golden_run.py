"""Golden-run regression: one seeded experiment pinned bit-for-bit.

The simulator is deterministic end to end, so a fixed-seed run's chain
digest, ledger digest, and headline metrics are a fingerprint of the whole
stack — consensus, placement, transport, workload scheduling.  Any change
that shifts an RNG draw or reorders events shows up here first, with a
diff of exactly which figures moved.

To refresh after an *intentional* behaviour change:

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/integration/test_golden_run.py

then commit the rewritten ``tests/data/golden_run.json`` alongside the
change that motivated it.
"""

import json
import os
from pathlib import Path

import pytest

from repro import obs
from tests.helpers import fixed_seed_run

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_run.json"

#: The pinned scenario — small enough to run in a few seconds.
GOLDEN_SPEC = dict(node_count=8, seed=5, duration_minutes=10.0)

#: Timeline cadence for the pinned monitor verdict (= make_config's t0).
GOLDEN_SAMPLE_SECONDS = 30.0


def observed_golden() -> dict:
    # Observability is non-perturbing (the overhead guard proves digests
    # are identical on/off), so the golden run doubles as the pinned
    # end-of-run monitor verdict.
    session = obs.enable(timeline_interval=GOLDEN_SAMPLE_SECONDS)
    try:
        result = fixed_seed_run(**GOLDEN_SPEC)
        verdict = (
            session.monitors.verdict() if session.monitors is not None else None
        )
    finally:
        obs.disable()
    chain = result.cluster.longest_chain_node().chain
    metrics = result.metrics
    return {
        "schema": "repro.golden_run/v1",
        "spec": GOLDEN_SPEC,
        "monitor_verdict": verdict,
        "chain_digest": chain.chain_digest(),
        "ledger_digest": chain.state.ledger_digest(),
        "chain_height": metrics.chain_height(),
        "blocks_mined": {str(k): v for k, v in sorted(metrics.blocks_mined.items())},
        "per_node_bytes": list(metrics.per_node_bytes),
        "category_bytes": dict(sorted(metrics.category_bytes.items())),
        "storage_used": list(metrics.storage_used),
        "served_requests": len(metrics.delivery_times),
        "failed_requests": metrics.failed_requests,
        "data_items_produced": metrics.data_items_produced,
        "average_delivery_time": metrics.average_delivery_time(),
        "mean_block_interval": metrics.mean_block_interval(),
    }


class TestGoldenRun:
    def test_matches_checked_in_golden(self):
        observed = observed_golden()
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(json.dumps(observed, indent=2) + "\n")
            pytest.skip(f"golden file refreshed at {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"missing {GOLDEN_PATH}; generate it with REPRO_UPDATE_GOLDEN=1"
        )
        expected = json.loads(GOLDEN_PATH.read_text())
        # Digests first: the strongest signal, and the clearest failure.
        assert observed["chain_digest"] == expected["chain_digest"]
        assert observed["ledger_digest"] == expected["ledger_digest"]
        assert observed == expected
