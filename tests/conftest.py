"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

import tests.helpers as _helpers
from repro.core.account import Account
from repro.core.config import SystemConfig
from repro.simnet.engine import EventEngine
from repro.simnet.topology import Position, Topology, connected_random_positions


@pytest.fixture
def rng():
    """A fixed-seed numpy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def engine():
    """A fresh deterministic event engine."""
    return EventEngine(seed=42)


@pytest.fixture
def small_topology(engine):
    """A connected 8-node topology in the paper's field geometry."""
    positions = connected_random_positions(8, engine.np_rng)
    return Topology(positions)


@pytest.fixture
def line_topology():
    """Five nodes in a line, 50 m apart (range 70 m → chain graph)."""
    positions = [Position(50.0 * i, 0.0) for i in range(5)]
    return Topology(positions, comm_range=70.0)


@pytest.fixture
def account():
    """A deterministic test account."""
    return Account.for_node(simulation_seed=99, node_id=0)


@pytest.fixture
def fast_config():
    """A small-scale config for quick protocol tests."""
    return SystemConfig(
        storage_capacity=40,
        expected_block_interval=10.0,
        data_items_per_minute=2.0,
        simulation_minutes=5.0,
        recent_cache_capacity=4,
    )


@pytest.fixture
def make_cluster():
    """Factory fixture: build (and start) a wired simulation cluster.

    Thin injection wrapper over :func:`tests.helpers.make_cluster` — see
    there for the knobs (``consensus="pow"``, config overrides,
    ``run_until=...``).
    """
    return _helpers.make_cluster


@pytest.fixture
def fixed_seed_run(request):
    """Factory fixture: a seeded end-to-end run, cached per test module.

    Calls with identical parameters from tests in the same module share
    one :class:`ExperimentResult` — the replacement for copy-pasted
    module-scoped run fixtures.  Mutating the shared cluster (advancing
    its engine) is visible to the module's other tests, exactly like the
    fixtures it replaces.
    """

    def _run(*args, **kwargs):
        kwargs.setdefault("cache_scope", request.module.__name__)
        return _helpers.fixed_seed_run(*args, **kwargs)

    return _run
